"""Figure 10 — frequency-oracle baselines (OLH, HCMS) vs InpHT."""

from __future__ import annotations

from repro.experiments import fig10_freq_oracles


def test_fig10_freq_oracles(run_once):
    config = fig10_freq_oracles.default_config(quick=True)
    result = run_once(fig10_freq_oracles.run, config)
    print()
    print(fig10_freq_oracles.render(result))

    population = config.population_sizes[0]
    for dimension in config.dimensions:
        errors = {
            name: result.filter(
                protocol=name, dimension=dimension, population=population
            )[0].mean_error
            for name in config.protocols
        }
        # The paper's shape: InpHT and InpOLH are comparable at small d while
        # the heavy-hitter-tuned sketch is noticeably less accurate.
        assert errors["InpHT"] <= errors["InpHTCMS"]
        assert errors["InpOLH"] <= errors["InpHTCMS"] * 1.5
        assert errors["InpHT"] <= errors["InpOLH"] * 2.0
