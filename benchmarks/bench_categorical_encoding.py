"""Corollary 6.1 — categorical marginals via compact binary encoding."""

from __future__ import annotations

from repro.experiments import categorical


def test_categorical_encoding(run_once):
    config = categorical.default_config(quick=True)
    result = run_once(categorical.run, config)
    print()
    print(categorical.render(result))

    # d2 = 2 + 2 + 2 + 1 for cardinalities (4, 4, 3, 2).
    assert result.binary_dimension == 7
    assert len(result.errors) == 6
    # Every reconstructed categorical marginal is within a usable error and
    # pairs of low-cardinality attributes are no worse than the widest pair.
    assert all(error < 0.6 for error in result.errors.values())
    assert result.errors[("cat2", "cat3")] <= max(result.errors.values()) + 1e-9
