"""Client-side encoding throughput: batched vs per-user, across protocols.

The streaming refactor's perf claim is that ``encode_batch`` vectorises
perturbation over whole record batches instead of looping over users in
Python.  This benchmark measures reports/sec for both styles on every
registered protocol (the per-user style calls ``encode_batch`` on one-record
slices, which is exactly what a naive per-user client loop would do) and
reports the speedup.

Run with:  PYTHONPATH=src python benchmarks/bench_streaming_throughput.py
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core.privacy import PrivacyBudget
from repro.datasets import BinaryDataset
from repro.protocols.registry import PROTOCOL_CLASSES, make_protocol

LN3 = float(np.log(3.0))

#: Smaller sketch keeps the per-user loop affordable at benchmark scale.
PROTOCOL_OPTIONS = {"InpHTCMS": {"num_hashes": 3, "width": 64}}

#: Users encoded per style.  The per-user loop gets fewer users because each
#: single-record call pays the full Python/NumPy dispatch overhead.
BATCHED_USERS = 50_000
PER_USER_USERS = 500


def _dataset(n: int, d: int, seed: int = 20180610) -> BinaryDataset:
    rng = np.random.default_rng(seed)
    records = (rng.random((n, d)) < 0.4).astype(np.int8)
    return BinaryDataset.from_records(records)


def _batched_rate(protocol, records: np.ndarray, rng) -> float:
    started = time.perf_counter()
    protocol.encode_batch(records, rng=rng)
    elapsed = time.perf_counter() - started
    return records.shape[0] / elapsed


def _per_user_rate(protocol, records: np.ndarray, rng) -> float:
    started = time.perf_counter()
    for row in range(records.shape[0]):
        protocol.encode_batch(records[row : row + 1], rng=rng)
    elapsed = time.perf_counter() - started
    return records.shape[0] / elapsed


def run_benchmark(d: int = 8, width: int = 2):
    """Measure both encoding styles for every protocol; returns result rows."""
    budget = PrivacyBudget(LN3)
    batched_data = _dataset(BATCHED_USERS, d)
    per_user_data = _dataset(PER_USER_USERS, d)
    rows = []
    for name in sorted(PROTOCOL_CLASSES):
        protocol = make_protocol(
            name, budget, width, **PROTOCOL_OPTIONS.get(name, {})
        )
        rng = np.random.default_rng(7)
        # Warm-up outside the timed region (first-call numpy allocations).
        protocol.encode_batch(per_user_data.records[:64], rng=rng)
        batched = _batched_rate(protocol, batched_data.records, rng)
        per_user = _per_user_rate(protocol, per_user_data.records, rng)
        rows.append((name, batched, per_user, batched / per_user))
    return rows


def render(rows) -> str:
    header = (
        f"{'protocol':<10} {'batched reports/s':>18} "
        f"{'per-user reports/s':>19} {'speedup':>9}"
    )
    lines = [header, "-" * len(header)]
    for name, batched, per_user, speedup in rows:
        lines.append(
            f"{name:<10} {batched:>18,.0f} {per_user:>19,.0f} {speedup:>8.1f}x"
        )
    return "\n".join(lines)


def main() -> int:
    rows = run_benchmark()
    print(render(rows))
    fastest = max(rows, key=lambda row: row[3])
    print(
        f"\nbest speedup: {fastest[0]} encodes {fastest[3]:.0f}x faster "
        f"batched than per-user"
    )
    if not any(speedup > 1.0 for *_rest, speedup in rows):
        print("FAIL: batched encoding never beat the per-user loop", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
