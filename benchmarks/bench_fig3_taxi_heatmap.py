"""Figure 3 — Pearson correlation heat map of the (synthetic) taxi data."""

from __future__ import annotations

from repro.datasets.taxi import DEPENDENT_PAIRS, INDEPENDENT_PAIRS
from repro.experiments import fig3_taxi_heatmap


def test_fig3_taxi_heatmap(run_once):
    result = run_once(
        fig3_taxi_heatmap.run, fig3_taxi_heatmap.default_config(quick=True)
    )
    print()
    print(fig3_taxi_heatmap.render(result))

    # The documented strong pairs must be strong and the weak pairs weak,
    # which is what the association-testing experiment (Figure 7) relies on.
    for pair in DEPENDENT_PAIRS:
        assert result.correlation(*pair) > 0.3
    for pair in INDEPENDENT_PAIRS:
        assert abs(result.correlation(*pair)) < 0.1
