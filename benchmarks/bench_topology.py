"""Multi-collector topology: fan-out throughput and recovery cost.

Measures what the fan-in tree adds on top of one collector:

* **scale-out** — fleet throughput (reports/sec) through 1 vs 3 front-line
  collectors, durable ACKs on (every connection group is checkpointed
  before its ACK, so this is the honest deployment-shaped number, well
  below the in-memory server benchmark);
* **collect** — wall-clock to PULL every collector's atomic snapshot and
  merge the tree;
* **recovery** — wall-clock for the supervisor to notice a SIGKILLed
  collector, restore its durable ``state.npz``, and re-merge it into a
  finalized tree.

Run with:  PYTHONPATH=src python benchmarks/bench_topology.py [--smoke]

Results merge into ``BENCH_topology.json`` (schema ``bench-topology/v1``)
following the ``BENCH_server.json`` profile layout.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.domain import Domain
from repro.datasets.synthetic import uniform_dataset
from repro.protocols.registry import make_protocol
from repro.server import LoadGenerator
from repro.topology import TopologySupervisor

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = "bench-topology/v1"
LN3 = float(np.log(3.0))

PROFILES = {
    "full": {
        "population": 20_000,
        "dimension": 8,
        "batch_size": 500,
        "clients": 16,
        "tree_sizes": (1, 3),
        "repeats": 3,
    },
    "smoke": {
        "population": 4_000,
        "dimension": 6,
        "batch_size": 250,
        "clients": 8,
        "tree_sizes": (1, 3),
        "repeats": 1,
    },
}

PROTOCOLS = ("InpRR", "InpOLH")


async def _run_tree(spec, domain, frames, collectors, clients, base_dir):
    """One fleet run through a fresh tree; returns timing components."""
    supervisor = TopologySupervisor(
        spec, domain, collectors=collectors, base_dir=base_dir
    )
    supervisor.start()
    try:
        fleet = LoadGenerator(
            spec,
            domain,
            targets=list(supervisor.addresses),
            failover=supervisor.failover,
            frames=frames,
            num_clients=clients,
        )
        report = await fleet.run()
        if report.rejected_connections:
            raise RuntimeError("fleet was rejected; numbers are meaningless")

        started = time.perf_counter()
        aggregator = await supervisor.collect()
        collect_seconds = time.perf_counter() - started

        # Recovery: SIGKILL the last collector, then time notice + restore
        # of its durable state + a full re-merge of the tree.
        supervisor.kill(collectors - 1)
        started = time.perf_counter()
        supervisor.health_check()
        recovered = await supervisor.collect()
        recovery_seconds = time.perf_counter() - started

        merged = recovered.merged_session()
        if merged.num_reports != report.acked_reports:
            raise RuntimeError(
                f"recovery lost reports: {merged.num_reports} != "
                f"{report.acked_reports}"
            )
        del aggregator
        return report, collect_seconds, recovery_seconds
    finally:
        supervisor.shutdown()


def bench_protocol(name, params):
    protocol = make_protocol(name, LN3, 2)
    domain = Domain.binary(params["dimension"])
    rng = np.random.default_rng(20180610)
    dataset = uniform_dataset(params["population"], params["dimension"], rng=rng)
    frames = LoadGenerator.frames_for_dataset(
        protocol.spec(), dataset, params["batch_size"], rng=rng
    )
    results = {}
    for collectors in params["tree_sizes"]:
        best = None
        samples = []
        collect_seconds = recovery_seconds = None
        for _ in range(params["repeats"]):
            with tempfile.TemporaryDirectory(prefix="bench-topo-") as scratch:
                report, collected, recovered = asyncio.run(
                    _run_tree(
                        protocol.spec(),
                        domain,
                        frames,
                        collectors,
                        params["clients"],
                        Path(scratch),
                    )
                )
            samples.append(report.reports_per_second)
            if best is None or report.duration_seconds < best.duration_seconds:
                best = report
                collect_seconds = collected
                recovery_seconds = recovered
        results[str(collectors)] = {
            "duration_seconds": best.duration_seconds,
            "reports_per_second": best.reports_per_second,
            "reports_per_second_samples": samples,
            "collect_seconds": collect_seconds,
            "recovery_seconds": recovery_seconds,
            "params": {
                "collectors": collectors,
                "clients": params["clients"],
                "frames": len(frames),
                "reports": best.acked_reports,
                "repeats": params["repeats"],
            },
        }
        print(
            f"  {name:8s} collectors={collectors}  "
            f"{best.reports_per_second:>10,.0f} reports/s (durable ACKs)  "
            f"collect {collect_seconds * 1e3:>6.1f} ms  "
            f"kill+recover+re-merge {recovery_seconds * 1e3:>6.1f} ms"
        )
    return results


def run_profile(profile_name):
    params = dict(PROFILES[profile_name])
    print(f"profile {profile_name}: {params}")
    return {
        "params": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in params.items()
        },
        "protocols": {name: bench_protocol(name, params) for name in PROTOCOLS},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="run the CI-sized smoke profile"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_topology.json",
        help="JSON file to write/merge results into",
    )
    arguments = parser.parse_args(argv)
    profile_name = "smoke" if arguments.smoke else "full"

    result = run_profile(profile_name)

    report = {"schema": SCHEMA, "profiles": {}}
    if arguments.output.exists():
        with arguments.output.open() as handle:
            existing = json.load(handle)
        if existing.get("schema") == SCHEMA:
            report = existing
    report["profiles"][profile_name] = result
    with arguments.output.open("w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
