"""Figure 6 — InpEM vs InpHT/MargPS on 2-way marginals at larger d (taxi)."""

from __future__ import annotations

from repro.experiments import fig6_vary_d_em


def test_fig6_vary_d_em(run_once):
    config = fig6_vary_d_em.default_config(quick=True)
    result = run_once(fig6_vary_d_em.run, config)
    print()
    print(fig6_vary_d_em.render(result))

    population = config.population_sizes[0]
    largest_eps = max(config.epsilons)

    for dimension in config.dimensions:
        errors = {
            name: result.filter(
                protocol=name,
                dimension=dimension,
                epsilon=largest_eps,
                population=population,
            )[0].mean_error
            for name in config.protocols
        }
        # The paper's shape: the unbiased Hadamard estimator beats the EM
        # heuristic at every setting.  (MargPS also wins at paper-scale N,
        # but on the quick preset its per-marginal populations are tiny, so
        # we only require it to stay in the same ballpark here.)
        assert errors["InpHT"] < errors["InpEM"]
        assert errors["MargPS"] < errors["InpEM"] * 2.5

    # InpEM improves as eps grows (it is not *broken*, just worse).
    em_series = result.series(
        "InpEM", "epsilon", dimension=config.dimensions[0], population=population
    )
    assert em_series[-1][1] <= em_series[0][1] * 1.25
