"""Table 1 / Figure 2 — the taxi schema and its example Manhattan marginal."""

from __future__ import annotations

from repro.experiments import fig3_taxi_heatmap


def test_table1_fig2_taxi_marginal(run_once):
    result = run_once(
        fig3_taxi_heatmap.run, fig3_taxi_heatmap.default_config(quick=True)
    )
    print()
    print(fig3_taxi_heatmap.render(result))
    # Figure 2's headline cell: most trips stay within Manhattan.
    manhattan_both = float(result.manhattan_marginal[3])
    assert manhattan_both > 0.5
    # Table 1's schema: all eight attributes present.
    assert len(result.attributes) == 8


def test_fig2_marginal_mass_is_a_distribution(run_once):
    result = run_once(
        fig3_taxi_heatmap.run, fig3_taxi_heatmap.HeatmapConfig(population=2**14)
    )
    assert abs(result.manhattan_marginal.sum() - 1.0) < 1e-9
