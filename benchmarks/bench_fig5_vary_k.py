"""Figure 5 — effect of the marginal width k (taxi data, d = 8)."""

from __future__ import annotations

from repro.experiments import fig5_vary_k


def test_fig5_vary_k(run_once):
    config = fig5_vary_k.default_config(quick=True)
    result = run_once(fig5_vary_k.run, config)
    print()
    print(fig5_vary_k.render(result))

    population = config.population_sizes[0]

    # Shape check 1: InpHT error grows with k.
    inp_ht = result.series("InpHT", "width", population=population, dimension=8)
    assert inp_ht[-1][1] >= inp_ht[0][1]

    # Shape check 2: for k <= d/2 InpHT is the best (or within noise of best)
    # method, the paper's "method of choice" claim.
    for width in config.widths:
        if width > 4:
            continue
        errors = {
            name: result.filter(
                protocol=name, width=width, population=population
            )[0].mean_error
            for name in config.protocols
        }
        assert errors["InpHT"] <= min(errors.values()) * 1.6
