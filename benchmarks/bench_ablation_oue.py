"""Ablation — vanilla vs Wang-optimised unary-encoding probabilities."""

from __future__ import annotations

from repro.experiments import ablations


def test_ablation_oue(run_once):
    config = ablations.OUEAblationConfig(population=2**13, repetitions=2)
    result = run_once(ablations.run_oue_ablation, config)
    print()
    print(ablations.render_oue_ablation(result))

    # The paper's observation: the optimised probabilities "make little
    # difference" — the two variants should be within ~50% of each other,
    # with the optimised variant not substantially worse.
    for protocol in ("InpRR", "MargRR"):
        difference = result.relative_difference(protocol)
        assert difference > -0.5
