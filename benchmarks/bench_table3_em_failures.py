"""Table 3 — failure rate of the InpEM baseline at small epsilon."""

from __future__ import annotations

from repro.experiments import table3_em_failures


def test_table3_em_failures(run_once):
    config = table3_em_failures.default_config(quick=True)
    result = run_once(table3_em_failures.run, config)
    print()
    print(table3_em_failures.render(result))

    # Shape check: at these tiny epsilons a non-trivial fraction of marginals
    # fail (terminate immediately at the uniform prior), and the failure count
    # never exceeds the number of marginals.
    total_failures = 0
    for setting, failed, total in result.failures:
        assert 0 <= failed <= total
        total_failures += failed
    assert total_failures > 0
