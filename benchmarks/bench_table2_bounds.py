"""Table 2 — communication/error bounds, checked against one measured run."""

from __future__ import annotations

from repro.experiments import table2_bounds
from repro.theory.bounds import error_exponent_factor


def test_table2_bounds(run_once):
    result = run_once(table2_bounds.run, table2_bounds.default_config(quick=True))
    print()
    print(table2_bounds.render(result))

    # Analytic and implemented communication costs must agree exactly.
    for row in result.rows:
        assert row["comm_bits_analytic"] == row["comm_bits_protocol"]

    # The analytic ordering of InpHT vs the naive input methods must be
    # reflected in the measured errors (the paper's headline claim).
    measured = {row["method"]: row["measured_mean_tv"] for row in result.rows}
    assert measured["InpHT"] < measured["InpPS"]
    assert measured["InpHT"] < measured["InpRR"]
    config = result.config
    assert error_exponent_factor("InpHT", config.dimension, config.width) < (
        error_exponent_factor("InpPS", config.dimension, config.width)
    )
