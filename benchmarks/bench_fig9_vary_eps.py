"""Figure 9 — effect of the privacy parameter epsilon (movielens)."""

from __future__ import annotations

from repro.experiments import fig9_vary_eps


def test_fig9_vary_eps(run_once):
    config = fig9_vary_eps.default_config(quick=True)
    result = run_once(fig9_vary_eps.run, config)
    print()
    print(fig9_vary_eps.render(result))

    population = config.population_sizes[0]
    dimension = config.dimensions[0]

    # Shape check 1: the Hadamard method's error falls as eps grows.
    series = result.series(
        "InpHT", "epsilon", population=population, dimension=dimension, width=2
    )
    assert series[-1][1] <= series[0][1]

    # Shape check 2: InpHT is the best (or near-best) method at every eps.
    for epsilon in config.epsilons:
        errors = {
            name: result.filter(
                protocol=name,
                epsilon=epsilon,
                population=population,
                dimension=dimension,
                width=2,
            )[0].mean_error
            for name in config.protocols
        }
        assert errors["InpHT"] <= min(errors.values()) * 1.5
