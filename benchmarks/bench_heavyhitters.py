"""Heavy-hitter discovery: accuracy vs exact top-k plus per-level throughput.

For each per-level oracle (``InpOLH``, ``InpHT``, ``InpHTCMS``) over a
zipf-style skewed population:

* **accuracy** — precision/recall of ``HH.discover()`` against the exact
  top-k of the same records, averaged over the profile's seeds;
* **throughput** — client-side encode and server-side aggregate rates in
  reports/sec for the whole partitioned population, then the aggregate
  rate of *each prefix level* in isolation (a level's inner-oracle
  accumulate over exactly the users partitioned onto it);
* **walk** — wall-clock for finalize + the prune/expand discovery walk.

Run with:  PYTHONPATH=src python benchmarks/bench_heavyhitters.py [--smoke]

Results merge into ``BENCH_hh.json`` (schema ``bench-hh/v1``) following
the ``BENCH_topology.json`` profile layout.  ``--min-recall`` turns the
mean InpOLH recall into an exit-code gate for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.domain import Domain
from repro.datasets.synthetic import skewed_dataset
from repro.heavyhitters import HeavyHitterReports, exact_top_k, precision_recall
from repro.protocols.registry import make_protocol

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = "bench-hh/v1"

PROFILES = {
    "full": {
        "population": 100_000,
        "dimension": 8,
        "epsilon": 3.0,
        "fanout": 4,
        "top_k": 6,
        "seeds": (1, 2, 3),
    },
    "smoke": {
        "population": 30_000,
        "dimension": 8,
        "epsilon": 3.0,
        "fanout": 4,
        "top_k": 6,
        "seeds": (7,),
    },
}

ORACLES = ("InpOLH", "InpHT", "InpHTCMS")


def bench_oracle(oracle, params):
    protocol = make_protocol(
        "HH",
        params["epsilon"],
        2,
        oracle=oracle,
        fanout=params["fanout"],
        top_k=params["top_k"],
    )
    domain = Domain.binary(params["dimension"])
    population = params["population"]
    precisions, recalls = [], []
    best = None
    for seed in params["seeds"]:
        rng = np.random.default_rng(seed)
        dataset = skewed_dataset(population, params["dimension"], rng=rng)
        exact = exact_top_k(dataset, params["top_k"])

        started = time.perf_counter()
        reports = protocol.encode_batch(dataset.records, rng=rng)
        encode_seconds = time.perf_counter() - started

        accumulator = protocol.accumulator(domain)
        started = time.perf_counter()
        accumulator.update(reports)
        aggregate_seconds = time.perf_counter() - started

        started = time.perf_counter()
        estimator = accumulator.finalize()
        result = estimator.discover()
        walk_seconds = time.perf_counter() - started

        precision, recall = precision_recall(result.indices, exact)
        precisions.append(precision)
        recalls.append(recall)

        # Per-level aggregate rate: replay each level's sub-population
        # through a fresh accumulator on its own.
        per_level = []
        for index, bits in enumerate(estimator.level_bits):
            members = reports.levels == index
            sub = HeavyHitterReports(
                levels=reports.levels[members],
                int_data=reports.int_data[members],
                float_data=reports.float_data[members],
            )
            fresh = protocol.accumulator(domain)
            started = time.perf_counter()
            fresh.update(sub)
            elapsed = time.perf_counter() - started
            per_level.append(
                {
                    "bits": int(bits),
                    "reports": int(members.sum()),
                    "reports_per_second": (
                        float(members.sum()) / elapsed if elapsed > 0 else 0.0
                    ),
                }
            )

        sample = {
            "seed": seed,
            "precision": precision,
            "recall": recall,
            "encode_reports_per_second": population / encode_seconds,
            "aggregate_reports_per_second": population / aggregate_seconds,
            "finalize_and_walk_seconds": walk_seconds,
            "levels": per_level,
        }
        if best is None or sample["aggregate_reports_per_second"] > (
            best["aggregate_reports_per_second"]
        ):
            best = sample

    summary = {
        "precision_mean": float(np.mean(precisions)),
        "recall_mean": float(np.mean(recalls)),
        "best": best,
        "params": {
            "population": population,
            "dimension": params["dimension"],
            "epsilon": params["epsilon"],
            "fanout": params["fanout"],
            "top_k": params["top_k"],
            "seeds": list(params["seeds"]),
        },
    }
    level_text = "  ".join(
        f"b={level['bits']}:{level['reports_per_second']:,.0f}/s"
        for level in best["levels"]
    )
    print(
        f"  {oracle:9s} precision {summary['precision_mean']:.3f}  "
        f"recall {summary['recall_mean']:.3f}  "
        f"aggregate {best['aggregate_reports_per_second']:>10,.0f} reports/s  "
        f"[{level_text}]"
    )
    return summary


def run_profile(profile_name):
    params = dict(PROFILES[profile_name])
    print(f"profile {profile_name}: {params}")
    return {
        "params": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in params.items()
        },
        "oracles": {oracle: bench_oracle(oracle, params) for oracle in ORACLES},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="run the CI-sized smoke profile"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_hh.json",
        help="JSON file to write/merge results into",
    )
    parser.add_argument(
        "--min-recall",
        type=float,
        default=None,
        metavar="R",
        help="fail (exit 1) when the mean InpOLH recall falls below R",
    )
    arguments = parser.parse_args(argv)
    profile_name = "smoke" if arguments.smoke else "full"

    result = run_profile(profile_name)

    report = {"schema": SCHEMA, "profiles": {}}
    if arguments.output.exists():
        with arguments.output.open() as handle:
            existing = json.load(handle)
        if existing.get("schema") == SCHEMA:
            report = existing
    report["profiles"][profile_name] = result
    with arguments.output.open("w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {arguments.output}")

    if arguments.min_recall is not None:
        recall = result["oracles"]["InpOLH"]["recall_mean"]
        if recall < arguments.min_recall:
            print(
                f"recall gate FAILED: mean InpOLH recall {recall:.3f} < "
                f"{arguments.min_recall}"
            )
            return 1
        print(
            f"recall gate passed: mean InpOLH recall {recall:.3f} >= "
            f"{arguments.min_recall}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
