"""Microbenchmarks: vectorised decode kernels vs their retained references.

The aggregator-side kernels are the scaling story of the paper — OLH
decoding is ``O(N * 2^d)`` (Appendix B.2), EM decoding is the slow baseline
(Section 4.4) and the Hadamard transform drives InpHT/MargHT — so each
optimised kernel here is timed against the pre-optimisation implementation
it still ships with (``popcount_reference``, ``fwht_reference``,
``support_counts_reference``, the retain-all-records EM decode), with the
outputs asserted identical before any number is reported.  A second section
times the end-to-end aggregator decode of the protocols those kernels sit
under, seeding the perf trajectory future PRs regress against.

Run with:  PYTHONPATH=src python benchmarks/bench_kernels.py [--smoke]

``scripts/run_benchmarks.py`` wraps this module to emit the machine-readable
``BENCH_kernels.json`` and to gate CI on kernel regressions.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core import bitops, hadamard
from repro.core.privacy import PrivacyBudget
from repro.datasets import BinaryDataset
from repro.mechanisms.local_hashing import OptimizedLocalHashing
from repro.protocols.registry import make_protocol

LN3 = float(np.log(3.0))

#: Benchmark sizes.  ``full`` matches the acceptance targets recorded in
#: BENCH_kernels.json (popcount at d=16 masks x N=1e6, fwht at n=2^14);
#: ``smoke`` is the CI-sized run used by the regression gate.
PROFILES = {
    "full": {
        "popcount_n": 1_000_000,
        "popcount_d": 16,
        "fwht_log2": 14,
        "fwht_rows_shape": (64, 1024),
        "olh_users": 20_000,
        "olh_d": 11,
        "em_users": 100_000,
        "em_d": 8,
        "proto_users": 40_000,
        "proto_d": 8,
        "repeats": 3,
    },
    "smoke": {
        "popcount_n": 200_000,
        "popcount_d": 16,
        "fwht_log2": 12,
        "fwht_rows_shape": (16, 256),
        "olh_users": 4_000,
        "olh_d": 9,
        "em_users": 20_000,
        "em_d": 6,
        "proto_users": 8_000,
        "proto_d": 7,
        "repeats": 2,
    },
}


def _best_of(function, repeats: int) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def _entry(reference_seconds: float, fast_seconds: float, **params) -> dict:
    return {
        "reference_seconds": reference_seconds,
        "fast_seconds": fast_seconds,
        "speedup": reference_seconds / fast_seconds,
        "params": params,
    }


# --------------------------------------------------------------------- #
# Kernel microbenchmarks (old vs new, outputs asserted identical)
# --------------------------------------------------------------------- #
def bench_popcount(profile: dict) -> dict:
    rng = np.random.default_rng(0)
    masks = rng.integers(0, 1 << profile["popcount_d"], size=profile["popcount_n"])
    np.testing.assert_array_equal(
        bitops.popcount(masks), bitops.popcount_reference(masks)
    )
    repeats = profile["repeats"]
    return _entry(
        _best_of(lambda: bitops.popcount_reference(masks), repeats),
        _best_of(lambda: bitops.popcount(masks), repeats),
        n=profile["popcount_n"],
        d=profile["popcount_d"],
        backend="bitwise_count" if bitops.HAS_BITWISE_COUNT else "swar",
    )


def bench_parity(profile: dict) -> dict:
    rng = np.random.default_rng(1)
    masks = rng.integers(0, 1 << profile["popcount_d"], size=profile["popcount_n"])
    np.testing.assert_array_equal(
        bitops.parity(masks), bitops.parity_reference(masks)
    )
    repeats = profile["repeats"]
    return _entry(
        _best_of(lambda: bitops.parity_reference(masks), repeats),
        _best_of(lambda: bitops.parity(masks), repeats),
        n=profile["popcount_n"],
        d=profile["popcount_d"],
    )


def bench_fwht(profile: dict) -> dict:
    rng = np.random.default_rng(2)
    vector = rng.normal(size=1 << profile["fwht_log2"])
    np.testing.assert_array_equal(
        hadamard.fwht(vector), hadamard.fwht_reference(vector)
    )
    repeats = profile["repeats"]
    return _entry(
        _best_of(lambda: hadamard.fwht_reference(vector), repeats),
        _best_of(lambda: hadamard.fwht(vector), repeats),
        n=1 << profile["fwht_log2"],
    )


def bench_fwht_rows(profile: dict) -> dict:
    rng = np.random.default_rng(3)
    matrix = rng.normal(size=profile["fwht_rows_shape"])
    np.testing.assert_array_equal(
        hadamard.fwht_rows(matrix),
        np.stack([hadamard.fwht_reference(row) for row in matrix]),
    )
    repeats = profile["repeats"]
    return _entry(
        _best_of(
            lambda: np.stack([hadamard.fwht_reference(row) for row in matrix]),
            repeats,
        ),
        _best_of(lambda: hadamard.fwht_rows(matrix), repeats),
        rows=profile["fwht_rows_shape"][0],
        n=profile["fwht_rows_shape"][1],
    )


def bench_olh_support(profile: dict) -> dict:
    rng = np.random.default_rng(4)
    oracle = OptimizedLocalHashing(
        domain_size=1 << profile["olh_d"], budget=PrivacyBudget(LN3)
    )
    values = rng.integers(0, oracle.domain_size, size=profile["olh_users"])
    seeds, noisy = oracle.perturb(values, rng=rng)
    np.testing.assert_array_equal(
        oracle.support_counts(seeds, noisy),
        oracle.support_counts_reference(seeds, noisy),
    )
    repeats = profile["repeats"]
    return _entry(
        _best_of(lambda: oracle.support_counts_reference(seeds, noisy), repeats),
        _best_of(lambda: oracle.support_counts(seeds, noisy), repeats),
        users=profile["olh_users"],
        d=profile["olh_d"],
        decode_batch_size=oracle.decode_batch_size,
    )


def _em_reference_decode(noisy_records, mask, keep_probability, threshold, limit):
    """The retain-all-records EM decode this library shipped before the
    sufficient-statistic accumulator: rebuild the observed pattern histogram
    by scanning all N noisy rows, rebuild the likelihood matrix, iterate."""
    positions = bitops.bit_positions(mask)
    k = len(positions)
    cells = 1 << k
    observed = np.zeros(noisy_records.shape[0], dtype=np.int64)
    for bit, position in enumerate(positions):
        observed |= noisy_records[:, position].astype(np.int64) << bit
    pattern_counts = np.bincount(observed, minlength=cells).astype(np.float64)
    pattern_fractions = pattern_counts / pattern_counts.sum()
    hamming = bitops.popcount_reference(
        np.arange(cells)[:, None] ^ np.arange(cells)[None, :]
    )
    likelihood = (keep_probability ** (k - hamming)) * (
        (1.0 - keep_probability) ** hamming
    )
    prior = np.full(cells, 1.0 / cells)
    for _ in range(limit):
        joint = likelihood * prior[None, :]
        denominator = joint.sum(axis=1, keepdims=True)
        denominator[denominator == 0] = 1.0
        updated = pattern_fractions @ (joint / denominator)
        change = float(np.abs(updated - prior).max())
        prior = updated
        if change < threshold:
            break
    return prior


def bench_em_decode(profile: dict) -> dict:
    rng = np.random.default_rng(5)
    users, d = profile["em_users"], profile["em_d"]
    records = (rng.random((users, d)) < (rng.random(d) * 0.6 + 0.2)).astype(np.int8)
    dataset = BinaryDataset.from_records(records)
    protocol = make_protocol("InpEM", PrivacyBudget(2.0), 2)
    reports = protocol.encode_batch(dataset, rng=np.random.default_rng(6))
    noisy = reports.noisy_records
    keep = protocol.per_attribute_mechanism(d).keep_probability
    estimator = (
        protocol.accumulator(dataset.domain).update(reports).finalize()
    )
    marginals = list(estimator.workload.marginals(2))
    for beta in marginals:
        np.testing.assert_array_equal(
            estimator.query_with_diagnostics(beta).table.values,
            _em_reference_decode(
                noisy, beta, keep, protocol.convergence_threshold, 10000
            ),
        )

    def reference():
        for beta in marginals:
            _em_reference_decode(
                noisy, beta, keep, protocol.convergence_threshold, 10000
            )

    def fast():
        fresh = protocol.accumulator(dataset.domain).update(reports).finalize()
        for beta in marginals:
            fresh.query_with_diagnostics(beta)

    repeats = profile["repeats"]
    entry = _entry(
        _best_of(reference, repeats),
        _best_of(fast, repeats),
        users=users,
        d=d,
        marginals=len(marginals),
    )
    entry["params"]["state_bytes_reference"] = int(noisy.nbytes)
    entry["params"]["state_bytes_fast"] = int(
        estimator.pattern_counts.nbytes
    )
    return entry


# --------------------------------------------------------------------- #
# End-to-end protocol decode timings (perf trajectory, no reference pair)
# --------------------------------------------------------------------- #
def bench_protocol_decodes(profile: dict) -> dict:
    rng = np.random.default_rng(7)
    users, d = profile["proto_users"], profile["proto_d"]
    records = (rng.random((users, d)) < (rng.random(d) * 0.6 + 0.2)).astype(np.int8)
    dataset = BinaryDataset.from_records(records)
    options = {"InpHTCMS": {"num_hashes": 5, "width": 256}}
    repeats = profile["repeats"]
    timings = {}
    for name in ("InpOLH", "InpHTCMS", "MargHT", "InpEM"):
        protocol = make_protocol(
            name, PrivacyBudget(LN3), 2, **options.get(name, {})
        )
        reports = protocol.encode_batch(dataset, rng=np.random.default_rng(8))

        def decode():
            estimator = (
                protocol.accumulator(dataset.domain).update(reports).finalize()
            )
            estimator.query_all()

        timings[name] = {
            "decode_seconds": _best_of(decode, repeats),
            "params": {"users": users, "d": d},
        }
    return timings


KERNEL_BENCHMARKS = {
    "popcount": bench_popcount,
    "parity": bench_parity,
    "fwht": bench_fwht,
    "fwht_rows": bench_fwht_rows,
    "olh_support": bench_olh_support,
    "em_decode": bench_em_decode,
}


def run_profile(profile_name: str) -> dict:
    """Run every kernel + protocol benchmark for one profile."""
    profile = PROFILES[profile_name]
    kernels = {
        name: benchmark(profile) for name, benchmark in KERNEL_BENCHMARKS.items()
    }
    return {
        "params": dict(profile),
        "kernels": kernels,
        "protocol_decode": bench_protocol_decodes(profile),
    }


def render(result: dict) -> str:
    header = f"{'kernel':<12} {'reference':>11} {'fast':>11} {'speedup':>8}"
    lines = [header, "-" * len(header)]
    for name, entry in result["kernels"].items():
        lines.append(
            f"{name:<12} {entry['reference_seconds'] * 1e3:>9.2f}ms "
            f"{entry['fast_seconds'] * 1e3:>9.2f}ms "
            f"{entry['speedup']:>7.1f}x"
        )
    lines.append("")
    lines.append(f"{'protocol decode':<20} {'seconds':>9}")
    lines.append("-" * 30)
    for name, entry in result["protocol_decode"].items():
        lines.append(f"{name:<20} {entry['decode_seconds']:>9.3f}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (smaller inputs)"
    )
    arguments = parser.parse_args(argv)
    profile_name = "smoke" if arguments.smoke else "full"
    print(f"profile: {profile_name}")
    result = run_profile(profile_name)
    print(render(result))
    print("\nkernel outputs verified identical to the reference implementations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
