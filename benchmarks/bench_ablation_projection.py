"""Ablation — simplex projection as post-processing of released marginals."""

from __future__ import annotations

from repro.experiments import ablations


def test_ablation_projection(run_once):
    config = ablations.ProjectionAblationConfig(population=2**13, repetitions=2)
    result = run_once(ablations.run_projection_ablation, config)
    print()
    print(ablations.render_projection_ablation(result))

    # Post-processing cannot make the tables invalid and should not hurt
    # accuracy; typically it helps slightly by removing negative cells.
    for protocol in config.protocols:
        assert result.improvement(protocol) > -0.05
