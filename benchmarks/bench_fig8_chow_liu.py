"""Figure 8 — total mutual information of privately fitted Chow–Liu trees."""

from __future__ import annotations

from repro.experiments import fig8_chow_liu


def test_fig8_chow_liu(run_once):
    config = fig8_chow_liu.default_config(quick=True)
    result = run_once(fig8_chow_liu.run, config)
    print()
    print(fig8_chow_liu.render(result))

    largest_eps = max(config.epsilons)
    smallest_eps = min(config.epsilons)

    # Shape check 1: InpHT trees capture most of the optimal MI at eps ~ 1.1.
    assert result.relative_quality("InpHT", largest_eps) > 0.7

    # Shape check 2: quality does not degrade as eps increases.
    for protocol in config.protocols:
        assert (
            result.relative_quality(protocol, largest_eps)
            >= result.relative_quality(protocol, smallest_eps) - 0.1
        )

    # Shape check 3: the private tree never exceeds the optimal total MI by
    # more than numerical noise (it is scored on the true weights).
    for (protocol, epsilon), (mean, _) in result.private_total_mi.items():
        assert mean <= result.exact_total_mi * 1.01 + 1e-9
