"""Collection-service throughput: reports/sec and MB/sec vs concurrency.

The network collector is the layer that must "serve heavy traffic from
millions of users", so this benchmark measures what one
:class:`~repro.server.CollectionServer` actually sustains on localhost
sockets as the simulated client fleet grows: a *fast* protocol whose
aggregation is a cheap sum (``InpRR``) and a *heavy* one whose decode
dominates (``InpOLH``, ``O(N * 2^d)`` support counting per frame).  Frames
are pre-encoded so the numbers isolate the service path — framing,
handshake, socket I/O, shard submit — from client-side encoding cost.

Run with:  PYTHONPATH=src python benchmarks/bench_server_throughput.py [--smoke]

Results merge into ``BENCH_server.json`` (schema ``bench-server/v1``),
following the ``BENCH_kernels.json`` profile layout, so CI and future PRs
have a machine-readable throughput baseline to compare against.  Every
cell records best-of-``repeats`` throughput plus the per-repeat samples
and their standard deviation, so a reader can tell a real regression from
scheduler noise.

``--check`` turns the run into a regression gate (mirroring
``scripts/run_benchmarks.py``): it fails when any (protocol, concurrency)
cell's fresh reports/sec falls below half the checked-in baseline's.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.domain import Domain
from repro.datasets.synthetic import uniform_dataset
from repro.protocols.registry import make_protocol
from repro.server import CollectionServer, LoadGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = "bench-server/v1"
LN3 = float(np.log(3.0))

#: ``full`` is the acceptance baseline recorded in BENCH_server.json;
#: ``smoke`` is the CI-sized run.
PROFILES = {
    "full": {
        "population": 40_000,
        "dimension": 8,
        "batch_size": 500,
        "shards": 4,
        "concurrencies": (1, 4, 16, 64),
        "repeats": 3,
    },
    "smoke": {
        "population": 6_000,
        "dimension": 6,
        "batch_size": 300,
        "shards": 2,
        "concurrencies": (1, 8),
        "repeats": 2,
    },
}

#: A cell regresses when its reports/sec falls below baseline / 2.
REGRESSION_FACTOR = 2.0

#: The resilience row is gated on *relative* overhead, not absolute
#: throughput: turning on the durability features (client spool with
#: fsync, server checkpoints with integrity digests) must cost less than
#: this fraction of the plain configuration's reports/sec.
RESILIENCE_OVERHEAD_LIMIT_PERCENT = 10.0

#: The metrics row prices the observability layer the same way: with
#: the registry enabled (the default) the service path pays a counter
#: increment per frame/report plus span timing on the ingest stages,
#: and the median paired-round overhead must stay under this fraction
#: of the disabled arm's reports/sec — "observable by default" only
#: holds if default costs almost nothing.
METRICS_OVERHEAD_LIMIT_PERCENT = 5.0

#: One protocol whose aggregation is a cheap vector sum, one whose decode
#: dominates the server's per-frame work.
PROTOCOLS = ("InpRR", "InpOLH")


async def _collect_once(
    spec,
    domain,
    frames,
    shards,
    concurrency,
    expected,
    server_kwargs=None,
    fleet_kwargs=None,
):
    server = CollectionServer(
        spec, domain, port=0, shards=shards, **(server_kwargs or {})
    )
    await server.start()
    fleet = LoadGenerator(
        spec,
        domain,
        "127.0.0.1",
        server.port,
        frames=frames,
        num_clients=concurrency,
        **(fleet_kwargs or {}),
    )
    report = await fleet.run()
    await server.stop()
    if report.acked_frames != len(frames) or report.acked_reports != expected:
        raise RuntimeError("fleet lost frames; numbers would be meaningless")
    return report


def bench_protocol(name, params):
    protocol = make_protocol(name, LN3, 2)
    domain = Domain.binary(params["dimension"])
    rng = np.random.default_rng(20180610)
    dataset = uniform_dataset(
        params["population"], params["dimension"], rng=rng
    )
    frames = LoadGenerator.frames_for_dataset(
        protocol.spec(), dataset, params["batch_size"], rng=rng
    )
    total_bytes = sum(len(frame) for frame in frames)
    results = {}
    for concurrency in params["concurrencies"]:
        best = None
        samples = []
        for _ in range(params["repeats"]):
            report = asyncio.run(
                _collect_once(
                    protocol.spec(),
                    domain,
                    frames,
                    params["shards"],
                    concurrency,
                    params["population"],
                )
            )
            samples.append(report.reports_per_second)
            if best is None or report.duration_seconds < best.duration_seconds:
                best = report
        stddev = float(np.std(samples))
        results[str(concurrency)] = {
            "duration_seconds": best.duration_seconds,
            "reports_per_second": best.reports_per_second,
            "reports_per_second_stddev": stddev,
            "reports_per_second_samples": samples,
            "megabytes_per_second": best.megabytes_per_second,
            "params": {
                "clients": concurrency,
                "frames": len(frames),
                "bytes": total_bytes,
                "reports": best.acked_reports,
                "repeats": params["repeats"],
                "shards": params["shards"],
            },
        }
        print(
            f"  {name:8s} clients={concurrency:<3d} "
            f"{best.reports_per_second:>12,.0f} reports/s "
            f"(±{stddev:>10,.0f} over {params['repeats']} repeat(s))  "
            f"{best.megabytes_per_second:>8.2f} MB/s"
        )
    return results


def bench_resilience(params):
    """Price the durability features against the plain configuration.

    Two arms over the same pre-encoded InpRR frames at the profile's
    highest concurrency: *plain* (exactly the configuration the
    throughput cells run) and *resilient* (the fleet spools every group
    to a fsync'd on-disk log under idempotency tokens, and the server
    writes digest-stamped durable checkpoints).  Each resilient repeat
    gets a fresh spool directory so nothing replays from a previous
    repeat's commits, which would fake a speedup.

    The comparison is a *ratio* on a machine whose absolute throughput
    can swing ±30% between adjacent runs (CI schedulers, cgroup
    throttling, noisy neighbors).  The arms run interleaved over
    ``repeats + 4`` rounds, alternating which arm goes first (ABBA) so
    steady drift cannot systematically penalize one arm, and the
    headline overhead compares each arm's *best* round: per-round
    pairwise ratios are a lottery at this noise level (the recorded
    ``round_overheads`` show the spread), but best-of-N converges to
    each arm's uncontended capability, making the ratio of bests the
    stable estimate.

    Two further methodology choices keep the row about the durability
    *machinery* rather than the host it happens to run on:

    * The workload is floored at 1.92M reports.  The spool's cost per
      client is a fixed handful of syscalls (open, write, fsync, close)
      that scales with the fleet size, not the report count; against a
      short run those fixed costs alone read as a 20-50% "overhead"
      that amortizes to low single digits once the run is a couple of
      seconds long.
    * Spool and checkpoint scratch lands on the fastest writable local
      scratch (``/dev/shm`` when present, else the default tempdir).
      Sync latency varies ~100x across environments — network mounts
      such as 9p charge milliseconds per file operation — and a row
      gated at single-digit percent must not measure the scratch
      volume.
    """
    protocol = make_protocol("InpRR", LN3, 2)
    domain = Domain.binary(params["dimension"])
    population = max(params["population"], 1_920_000)
    repeats = params["repeats"] + 4
    rng = np.random.default_rng(20180610)
    dataset = uniform_dataset(population, params["dimension"], rng=rng)
    frames = LoadGenerator.frames_for_dataset(
        protocol.spec(), dataset, params["batch_size"], rng=rng
    )
    concurrency = max(params["concurrencies"])

    def run_once(server_kwargs=None, fleet_kwargs=None):
        report = asyncio.run(
            _collect_once(
                protocol.spec(),
                domain,
                frames,
                params["shards"],
                concurrency,
                population,
                server_kwargs=server_kwargs,
                fleet_kwargs=fleet_kwargs,
            )
        )
        return report.reports_per_second

    plain_samples = []
    resilient_samples = []
    round_overheads = []
    scratch_base = "/dev/shm" if os.access("/dev/shm", os.W_OK) else None
    with tempfile.TemporaryDirectory(
        prefix="bench-resilience-", dir=scratch_base
    ) as scratch:
        scratch_dir = Path(scratch)
        for round_index in range(repeats):
            checkpoint_dir = scratch_dir / f"ckpt-{round_index}"
            checkpoint_dir.mkdir()

            def run_resilient():
                return run_once(
                    server_kwargs={"checkpoint_dir": checkpoint_dir},
                    fleet_kwargs={
                        "token_prefix": f"bench-{round_index}",
                        "spool_dir": scratch_dir / f"spool-{round_index}",
                    },
                )

            # ABBA ordering: alternate which arm runs first so a machine
            # that is steadily speeding up or slowing down biases half
            # the rounds one way and half the other, cancelling in the
            # median instead of accumulating.
            if round_index % 2 == 0:
                plain_rps = run_once()
                resilient_rps = run_resilient()
            else:
                resilient_rps = run_resilient()
                plain_rps = run_once()
            plain_samples.append(plain_rps)
            resilient_samples.append(resilient_rps)
            round_overheads.append(
                (plain_rps - resilient_rps) / plain_rps * 100.0
            )
    # The headline ratio compares each arm's *best* round: on a
    # multi-tenant machine whose throughput swings ±30% between adjacent
    # runs, a per-round pairwise ratio is a lottery (the recorded
    # round_overheads show the spread), but each arm's best-of-N
    # converges to its uncontended capability, so the ratio of bests is
    # the stable estimate of what durability actually costs.
    plain = max(plain_samples)
    resilient = max(resilient_samples)
    overhead_percent = (plain - resilient) / plain * 100.0
    print(
        f"  resilience clients={concurrency:<3d} "
        f"plain {plain:>12,.0f} reports/s, durable {resilient:>12,.0f} "
        f"reports/s ({overhead_percent:+.1f}% overhead)"
    )
    return {
        "protocol": "InpRR",
        "plain_reports_per_second": plain,
        "plain_samples": plain_samples,
        "resilient_reports_per_second": resilient,
        "resilient_samples": resilient_samples,
        "round_overheads": round_overheads,
        "overhead_percent": overhead_percent,
        "params": {
            "clients": concurrency,
            "frames": len(frames),
            "reports": population,
            "repeats": repeats,
            "shards": params["shards"],
            "spool_fsync": True,
            "checkpoint_digests": True,
        },
    }


def bench_metrics(params):
    """Price the observability layer against a metrics-off run.

    Two arms over the same pre-encoded InpRR frames at the profile's
    highest concurrency: *instrumented* (the default — every frame and
    report bumps registry counters and the ingest stages run under
    timing spans) and *disabled* (``set_enabled(False)``, which turns
    every mutator into a no-op and hands out a shared null span).  The
    toggle is in-process, so both arms share the same interpreter,
    sockets, and warmed caches; nothing but the metrics layer differs.

    The workload and interleaving mirror the resilience row (floored at
    1.92M reports, ``repeats + 4`` ABBA-ordered rounds — see
    :func:`bench_resilience`), but the headline estimator differs, and
    deliberately so.  The resilience arms change the I/O pattern
    (fsync'd spools, checkpoint writes), so only each arm's best round
    reflects its uncontended capability; the metrics arms run the *same*
    I/O with and without some in-process bookkeeping, making two
    adjacent rounds a matched pair — whatever regime the host is in
    (noisy neighbor, cgroup throttle) hits both arms of a pair alike.
    The headline is therefore the *median* of the per-round paired
    overheads: robust to the multi-second regime shifts this gate's
    history shows (per-round swings of ±30% while the median sits
    within ±2%), where a ratio of per-arm bests inherits whichever
    arm got luckier inside the fast regime.  Both arms' raw samples
    and bests are recorded alongside for the reader.
    """
    from repro.observability import metrics_enabled, set_enabled

    protocol = make_protocol("InpRR", LN3, 2)
    domain = Domain.binary(params["dimension"])
    population = max(params["population"], 1_920_000)
    repeats = params["repeats"] + 4
    rng = np.random.default_rng(20180610)
    dataset = uniform_dataset(population, params["dimension"], rng=rng)
    frames = LoadGenerator.frames_for_dataset(
        protocol.spec(), dataset, params["batch_size"], rng=rng
    )
    concurrency = max(params["concurrencies"])

    def run_once(enabled):
        set_enabled(enabled)
        try:
            report = asyncio.run(
                _collect_once(
                    protocol.spec(),
                    domain,
                    frames,
                    params["shards"],
                    concurrency,
                    population,
                )
            )
        finally:
            set_enabled(True)
        return report.reports_per_second

    was_enabled = metrics_enabled()
    disabled_samples = []
    instrumented_samples = []
    round_overheads = []
    try:
        for round_index in range(repeats):
            if round_index % 2 == 0:
                disabled_rps = run_once(False)
                instrumented_rps = run_once(True)
            else:
                instrumented_rps = run_once(True)
                disabled_rps = run_once(False)
            disabled_samples.append(disabled_rps)
            instrumented_samples.append(instrumented_rps)
            round_overheads.append(
                (disabled_rps - instrumented_rps) / disabled_rps * 100.0
            )
    finally:
        set_enabled(was_enabled)
    disabled = max(disabled_samples)
    instrumented = max(instrumented_samples)
    overhead_percent = float(np.median(round_overheads))
    print(
        f"  metrics    clients={concurrency:<3d} "
        f"off {disabled:>14,.0f} reports/s, on {instrumented:>14,.0f} "
        f"reports/s best-of-{repeats} "
        f"({overhead_percent:+.1f}% median paired overhead)"
    )
    return {
        "protocol": "InpRR",
        "disabled_reports_per_second": disabled,
        "disabled_samples": disabled_samples,
        "instrumented_reports_per_second": instrumented,
        "instrumented_samples": instrumented_samples,
        "round_overheads": round_overheads,
        "overhead_percent": overhead_percent,
        "params": {
            "clients": concurrency,
            "frames": len(frames),
            "reports": population,
            "repeats": repeats,
            "shards": params["shards"],
        },
    }


def load_report(path: Path) -> dict:
    with path.open() as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path}: expected schema {SCHEMA!r}, got {report.get('schema')!r}"
        )
    return report


def check_regressions(result: dict, baseline_profile: dict) -> list:
    """Compare fresh per-cell reports/sec against the recorded baseline."""
    failures = []
    for name, cells in result["protocols"].items():
        recorded_cells = baseline_profile.get("protocols", {}).get(name, {})
        for concurrency, entry in cells.items():
            recorded = recorded_cells.get(concurrency)
            if recorded is None:
                continue
            floor = recorded["reports_per_second"] / REGRESSION_FACTOR
            if entry["reports_per_second"] < floor:
                failures.append(
                    f"{name} clients={concurrency}: "
                    f"{entry['reports_per_second']:,.0f} reports/s fell below "
                    f"{floor:,.0f} (baseline "
                    f"{recorded['reports_per_second']:,.0f} / "
                    f"{REGRESSION_FACTOR:g})"
                )
    resilience = result.get("resilience")
    if resilience is not None:
        overhead = resilience["overhead_percent"]
        if overhead > RESILIENCE_OVERHEAD_LIMIT_PERCENT:
            failures.append(
                f"resilience: durability overhead {overhead:.1f}% exceeds "
                f"{RESILIENCE_OVERHEAD_LIMIT_PERCENT:g}% "
                f"({resilience['plain_reports_per_second']:,.0f} plain vs "
                f"{resilience['resilient_reports_per_second']:,.0f} durable "
                f"reports/s)"
            )
    metrics = result.get("metrics")
    if metrics is not None:
        overhead = metrics["overhead_percent"]
        if overhead > METRICS_OVERHEAD_LIMIT_PERCENT:
            failures.append(
                f"metrics: observability overhead {overhead:.1f}% (median "
                f"paired) exceeds {METRICS_OVERHEAD_LIMIT_PERCENT:g}% "
                f"(best rounds: {metrics['disabled_reports_per_second']:,.0f} "
                f"off vs {metrics['instrumented_reports_per_second']:,.0f} on "
                f"reports/s)"
            )
    return failures


def run_profile(profile_name):
    params = dict(PROFILES[profile_name])
    print(f"profile {profile_name}: {params}")
    protocols = {}
    for name in PROTOCOLS:
        protocols[name] = bench_protocol(name, params)
    return {
        "params": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in params.items()
        },
        "protocols": protocols,
        "resilience": bench_resilience(params),
        "metrics": bench_metrics(params),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="run the CI-sized smoke profile"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_server.json",
        help="JSON file to write/merge results into",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="checked-in baseline JSON to gate against (with --check)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if any cell's reports/sec regressed >2x vs the baseline",
    )
    arguments = parser.parse_args(argv)
    profile_name = "smoke" if arguments.smoke else "full"

    # Snapshot the baseline *before* any writing: with the default paths
    # the output and the baseline are the same file, and gating against
    # the just-written results would make the check vacuous.
    baseline_profile = None
    baseline_path = None
    if arguments.check:
        baseline_path = arguments.baseline or (REPO_ROOT / "BENCH_server.json")
        baseline = load_report(baseline_path)
        baseline_profile = baseline["profiles"].get(profile_name)
        if baseline_profile is None:
            raise SystemExit(
                f"{baseline_path} records no {profile_name!r} profile to "
                f"gate against"
            )

    result = run_profile(profile_name)

    report = {"schema": SCHEMA, "profiles": {}}
    if arguments.output.exists():
        with arguments.output.open() as handle:
            existing = json.load(handle)
        if existing.get("schema") == SCHEMA:
            report = existing
    report["profiles"][profile_name] = result
    with arguments.output.open("w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {arguments.output}")

    if arguments.check:
        failures = check_regressions(result, baseline_profile)
        if failures:
            print(
                "FAIL: server throughput regressed >2x vs "
                f"{baseline_path}:\n  " + "\n  ".join(failures),
                file=sys.stderr,
            )
            return 1
        print(f"regression gate passed against {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
