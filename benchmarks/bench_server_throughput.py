"""Collection-service throughput: reports/sec and MB/sec vs concurrency.

The network collector is the layer that must "serve heavy traffic from
millions of users", so this benchmark measures what one
:class:`~repro.server.CollectionServer` actually sustains on localhost
sockets as the simulated client fleet grows: a *fast* protocol whose
aggregation is a cheap sum (``InpRR``) and a *heavy* one whose decode
dominates (``InpOLH``, ``O(N * 2^d)`` support counting per frame).  Frames
are pre-encoded so the numbers isolate the service path — framing,
handshake, socket I/O, shard submit — from client-side encoding cost.

Run with:  PYTHONPATH=src python benchmarks/bench_server_throughput.py [--smoke]

Results merge into ``BENCH_server.json`` (schema ``bench-server/v1``),
following the ``BENCH_kernels.json`` profile layout, so CI and future PRs
have a machine-readable throughput baseline to compare against.  Every
cell records best-of-``repeats`` throughput plus the per-repeat samples
and their standard deviation, so a reader can tell a real regression from
scheduler noise.

``--check`` turns the run into a regression gate (mirroring
``scripts/run_benchmarks.py``): it fails when any (protocol, concurrency)
cell's fresh reports/sec falls below half the checked-in baseline's.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.domain import Domain
from repro.datasets.synthetic import uniform_dataset
from repro.protocols.registry import make_protocol
from repro.server import CollectionServer, LoadGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = "bench-server/v1"
LN3 = float(np.log(3.0))

#: ``full`` is the acceptance baseline recorded in BENCH_server.json;
#: ``smoke`` is the CI-sized run.
PROFILES = {
    "full": {
        "population": 40_000,
        "dimension": 8,
        "batch_size": 500,
        "shards": 4,
        "concurrencies": (1, 4, 16, 64),
        "repeats": 3,
    },
    "smoke": {
        "population": 6_000,
        "dimension": 6,
        "batch_size": 300,
        "shards": 2,
        "concurrencies": (1, 8),
        "repeats": 2,
    },
}

#: A cell regresses when its reports/sec falls below baseline / 2.
REGRESSION_FACTOR = 2.0

#: One protocol whose aggregation is a cheap vector sum, one whose decode
#: dominates the server's per-frame work.
PROTOCOLS = ("InpRR", "InpOLH")


async def _collect_once(spec, domain, frames, shards, concurrency, expected):
    server = CollectionServer(spec, domain, port=0, shards=shards)
    await server.start()
    fleet = LoadGenerator(
        spec,
        domain,
        "127.0.0.1",
        server.port,
        frames=frames,
        num_clients=concurrency,
    )
    report = await fleet.run()
    await server.stop()
    if report.acked_frames != len(frames) or report.acked_reports != expected:
        raise RuntimeError("fleet lost frames; numbers would be meaningless")
    return report


def bench_protocol(name, params):
    protocol = make_protocol(name, LN3, 2)
    domain = Domain.binary(params["dimension"])
    rng = np.random.default_rng(20180610)
    dataset = uniform_dataset(
        params["population"], params["dimension"], rng=rng
    )
    frames = LoadGenerator.frames_for_dataset(
        protocol.spec(), dataset, params["batch_size"], rng=rng
    )
    total_bytes = sum(len(frame) for frame in frames)
    results = {}
    for concurrency in params["concurrencies"]:
        best = None
        samples = []
        for _ in range(params["repeats"]):
            report = asyncio.run(
                _collect_once(
                    protocol.spec(),
                    domain,
                    frames,
                    params["shards"],
                    concurrency,
                    params["population"],
                )
            )
            samples.append(report.reports_per_second)
            if best is None or report.duration_seconds < best.duration_seconds:
                best = report
        stddev = float(np.std(samples))
        results[str(concurrency)] = {
            "duration_seconds": best.duration_seconds,
            "reports_per_second": best.reports_per_second,
            "reports_per_second_stddev": stddev,
            "reports_per_second_samples": samples,
            "megabytes_per_second": best.megabytes_per_second,
            "params": {
                "clients": concurrency,
                "frames": len(frames),
                "bytes": total_bytes,
                "reports": best.acked_reports,
                "repeats": params["repeats"],
                "shards": params["shards"],
            },
        }
        print(
            f"  {name:8s} clients={concurrency:<3d} "
            f"{best.reports_per_second:>12,.0f} reports/s "
            f"(±{stddev:>10,.0f} over {params['repeats']} repeat(s))  "
            f"{best.megabytes_per_second:>8.2f} MB/s"
        )
    return results


def load_report(path: Path) -> dict:
    with path.open() as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path}: expected schema {SCHEMA!r}, got {report.get('schema')!r}"
        )
    return report


def check_regressions(result: dict, baseline_profile: dict) -> list:
    """Compare fresh per-cell reports/sec against the recorded baseline."""
    failures = []
    for name, cells in result["protocols"].items():
        recorded_cells = baseline_profile.get("protocols", {}).get(name, {})
        for concurrency, entry in cells.items():
            recorded = recorded_cells.get(concurrency)
            if recorded is None:
                continue
            floor = recorded["reports_per_second"] / REGRESSION_FACTOR
            if entry["reports_per_second"] < floor:
                failures.append(
                    f"{name} clients={concurrency}: "
                    f"{entry['reports_per_second']:,.0f} reports/s fell below "
                    f"{floor:,.0f} (baseline "
                    f"{recorded['reports_per_second']:,.0f} / "
                    f"{REGRESSION_FACTOR:g})"
                )
    return failures


def run_profile(profile_name):
    params = dict(PROFILES[profile_name])
    print(f"profile {profile_name}: {params}")
    protocols = {}
    for name in PROTOCOLS:
        protocols[name] = bench_protocol(name, params)
    return {
        "params": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in params.items()
        },
        "protocols": protocols,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="run the CI-sized smoke profile"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_server.json",
        help="JSON file to write/merge results into",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="checked-in baseline JSON to gate against (with --check)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if any cell's reports/sec regressed >2x vs the baseline",
    )
    arguments = parser.parse_args(argv)
    profile_name = "smoke" if arguments.smoke else "full"

    # Snapshot the baseline *before* any writing: with the default paths
    # the output and the baseline are the same file, and gating against
    # the just-written results would make the check vacuous.
    baseline_profile = None
    baseline_path = None
    if arguments.check:
        baseline_path = arguments.baseline or (REPO_ROOT / "BENCH_server.json")
        baseline = load_report(baseline_path)
        baseline_profile = baseline["profiles"].get(profile_name)
        if baseline_profile is None:
            raise SystemExit(
                f"{baseline_path} records no {profile_name!r} profile to "
                f"gate against"
            )

    result = run_profile(profile_name)

    report = {"schema": SCHEMA, "profiles": {}}
    if arguments.output.exists():
        with arguments.output.open() as handle:
            existing = json.load(handle)
        if existing.get("schema") == SCHEMA:
            report = existing
    report["profiles"][profile_name] = result
    with arguments.output.open("w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {arguments.output}")

    if arguments.check:
        failures = check_regressions(result, baseline_profile)
        if failures:
            print(
                "FAIL: server throughput regressed >2x vs "
                f"{baseline_path}:\n  " + "\n  ".join(failures),
                file=sys.stderr,
            )
            return 1
        print(f"regression gate passed against {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
