"""Wall-clock speedup of the parallel executors over the serial driver.

The executor subsystem promises two things: identical estimates on every
backend (asserted here, not just in the test suite) and wall-clock speedup
once the per-shard work dominates scheduling overhead.  This benchmark runs
``run_streaming`` for each selected protocol with the serial reference and
the thread/process backends at several worker counts, on the same seed,
batch size and shard count, and reports seconds + speedup per cell.

Protocol choice matters for the second promise.  ``InpOLH`` decodes each
report batch into per-element support counts — ``O(N * 2^d)`` aggregation
work, by far the heaviest stage in the library — so it parallelises almost
perfectly.  ``MargPS`` and ``InpHT`` encode/aggregate in milliseconds even
at ``N = 10^5``; they are included as the honest counterexample where pool
start-up and pickling swamp the work and the serial driver stays the right
choice.

Run with:  PYTHONPATH=src python benchmarks/bench_parallel_speedup.py
           (add --quick for a CI-sized run)
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.core.privacy import PrivacyBudget
from repro.datasets import BinaryDataset
from repro.execution import make_executor
from repro.protocols.registry import make_protocol

LN3 = float(np.log(3.0))

#: (backend, workers) grid; serial is the baseline every cell is scored against.
CONFIGURATIONS = [
    ("serial", 1),
    ("thread", 2),
    ("thread", 4),
    ("process", 2),
    ("process", 4),
]

SHARDS = 8
SEED = 20180610


def _dataset(n: int, d: int, seed: int = 97) -> BinaryDataset:
    rng = np.random.default_rng(seed)
    records = (rng.random((n, d)) < 0.4).astype(np.int8)
    return BinaryDataset.from_records(records)


def _tables(estimator):
    return {beta: t.values for beta, t in estimator.query_all().items()}


def run_benchmark(users: int, dimension: int, protocols):
    """Time every (protocol, backend, workers) cell; returns result rows."""
    dataset = _dataset(users, dimension)
    warmup = _dataset(256, dimension, seed=3)
    batch_size = -(-users // SHARDS)
    rows = []
    for name in protocols:
        protocol = make_protocol(name, PrivacyBudget(LN3), 2)
        reference_tables = None
        serial_seconds = None
        for backend, workers in CONFIGURATIONS:
            executor = make_executor(backend, workers)
            try:
                # Warm the pool outside the timed region: production runs
                # reuse one executor across a whole sweep, so start-up cost
                # is amortised there too.
                protocol.run_streaming(
                    warmup, rng=np.random.default_rng(1), executor=executor
                )
                started = time.perf_counter()
                estimator = protocol.run_streaming(
                    dataset,
                    rng=np.random.default_rng(SEED),
                    batch_size=batch_size,
                    shards=SHARDS,
                    executor=executor,
                )
                elapsed = time.perf_counter() - started
            finally:
                executor.close()
            tables = _tables(estimator)
            if reference_tables is None:
                reference_tables = tables
                serial_seconds = elapsed
            else:
                for beta in reference_tables:
                    np.testing.assert_array_equal(
                        reference_tables[beta], tables[beta]
                    )
            rows.append(
                (name, backend, workers, elapsed, serial_seconds / elapsed)
            )
    return rows


def render(rows) -> str:
    header = (
        f"{'protocol':<9} {'backend':<8} {'workers':>7} "
        f"{'seconds':>9} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    for name, backend, workers, seconds, speedup in rows:
        lines.append(
            f"{name:<9} {backend:<8} {workers:>7} "
            f"{seconds:>9.3f} {speedup:>7.2f}x"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--users", type=int, default=150_000, help="population size N"
    )
    parser.add_argument(
        "--dimension", type=int, default=10, help="number of attributes d"
    )
    parser.add_argument(
        "--protocols",
        nargs="+",
        default=["InpOLH", "MargPS", "InpHT"],
        help="protocols to time (first should be aggregation-heavy)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run (N = 40k, d = 8, InpOLH only)",
    )
    arguments = parser.parse_args(argv)
    if arguments.quick:
        arguments.users, arguments.dimension = 40_000, 8
        arguments.protocols = ["InpOLH"]

    cores = os.cpu_count() or 1
    print(
        f"N={arguments.users} d={arguments.dimension} shards={SHARDS} "
        f"cores={cores}\n"
    )
    rows = run_benchmark(arguments.users, arguments.dimension, arguments.protocols)
    print(render(rows))
    print("\nestimates verified bit-for-bit identical across all backends")

    serial_seconds = {
        row[0]: row[3] for row in rows if row[1] == "serial"
    }
    best = max(
        (row for row in rows if row[1] == "process" and row[2] == 4),
        key=lambda row: row[4],
    )
    print(
        f"best 4-process speedup: {best[0]} at {best[4]:.2f}x "
        f"({serial_seconds[best[0]]:.2f}s -> {best[3]:.2f}s)"
    )
    if cores < 4:
        print(
            f"note: only {cores} core(s) visible — parallel speedup cannot "
            f"materialise on this machine; rerun on >= 4 cores",
            file=sys.stderr,
        )
        return 0
    if arguments.quick:
        # The smoke run is too small for the 2x gate: pool start-up is a
        # visible fraction of a sub-second workload.
        return 0
    if best[4] < 2.0:
        print(
            "FAIL: no protocol reached 2x speedup with 4 process workers",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
