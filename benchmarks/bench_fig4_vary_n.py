"""Figure 4 — mean TV distance of k-way marginals as N varies (movielens)."""

from __future__ import annotations

from repro.experiments import fig4_vary_n


def test_fig4_vary_n(run_once):
    config = fig4_vary_n.default_config(quick=True)
    result = run_once(fig4_vary_n.run, config)
    print()
    print(fig4_vary_n.render(result))

    # Shape check 1: error decreases with N for the Hadamard method.
    for dimension in config.dimensions:
        series = result.series(
            "InpHT", "population", dimension=dimension, width=2
        )
        assert series[-1][1] <= series[0][1] * 1.25

    # Shape check 2: at the larger dimension InpHT beats the naive
    # input-perturbation methods (the paper's headline ordering).
    d = max(config.dimensions)
    n = max(config.population_sizes)
    errors = {
        name: result.filter(protocol=name, dimension=d, width=2, population=n)[0].mean_error
        for name in config.protocols
    }
    assert errors["InpHT"] < errors["InpPS"]
    assert errors["InpHT"] <= min(errors.values()) * 1.5
