"""Figure 7 — chi-squared association tests from private marginals (taxi)."""

from __future__ import annotations

from repro.experiments import fig7_chi2


def test_fig7_chi2(run_once):
    config = fig7_chi2.default_config(quick=True)
    result = run_once(fig7_chi2.run, config)
    print()
    print(fig7_chi2.render(result))

    for protocol, comparisons in result.comparisons.items():
        dependent_pairs = comparisons[:3]
        # The strongly associated pairs must be detected privately, and the
        # private statistic should be within an order of magnitude of the
        # exact one (the paper notes the log-scale closeness).
        for entry in dependent_pairs:
            assert entry.private.dependent
            ratio = entry.private.statistic / max(entry.exact.statistic, 1e-9)
            assert 0.1 < ratio < 10

    # InpHT should agree with the exact decisions at least as often as MargPS
    # (the paper highlights MargPS's occasional errors near the critical value).
    assert result.agreement_rate("InpHT") >= result.agreement_rate("MargPS") - 0.2
