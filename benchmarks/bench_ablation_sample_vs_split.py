"""Ablation — sample one item at full eps vs split eps across all items."""

from __future__ import annotations

from repro.experiments import ablations


def test_ablation_sample_vs_split(run_once):
    result = run_once(ablations.run_sample_vs_split)
    print()
    print(ablations.render_sample_vs_split(result))

    # Section 3.1's claim: sampling wins, and its advantage grows with the
    # number of items m.
    advantages = [result.advantage(m) for m in sorted(result.config.num_items)]
    assert all(a >= 1.0 for a in advantages)
    assert advantages == sorted(advantages)
    assert advantages[-1] > 10
