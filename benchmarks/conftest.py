"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper on its *quick*
configuration (small N, few repetitions — the method ordering is preserved,
the absolute errors are larger than at paper scale).  Each benchmark runs the
experiment exactly once via ``benchmark.pedantic`` (the experiments are
seconds-long simulations, not microbenchmarks) and prints the rendered table
so that ``pytest benchmarks/ --benchmark-only -s`` reproduces the numbers
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment once under pytest-benchmark timing and return it."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
