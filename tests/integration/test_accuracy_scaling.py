"""Integration tests of the accuracy trends the theory predicts.

These are the statistical counterparts of Theorems 4.3–4.5 and Table 2:
error falls with N and epsilon, grows with d and k, and the method ordering
matches the bounds.  They use averaged repetitions on moderate populations so
they are stable without being slow.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.privacy import PrivacyBudget
from repro.datasets.synthetic import uniform_dataset
from repro.datasets.taxi import make_taxi_dataset
from repro.experiments.metrics import mean_total_variation
from repro.protocols.registry import make_protocol


def averaged_error(name, dataset, epsilon, width, repetitions=3):
    errors = []
    for seed in range(repetitions):
        protocol = make_protocol(name, PrivacyBudget(epsilon), width)
        estimator = protocol.run(dataset, rng=np.random.default_rng(seed))
        errors.append(mean_total_variation(dataset, estimator, widths=[width]))
    return float(np.mean(errors))


class TestScalingWithPopulation:
    @pytest.mark.parametrize("name", ["InpHT", "MargPS"])
    def test_error_shrinks_roughly_like_inverse_sqrt_n(self, name):
        small = make_taxi_dataset(4096, rng=np.random.default_rng(0))
        large = make_taxi_dataset(65_536, rng=np.random.default_rng(0))
        error_small = averaged_error(name, small, 1.1, 2)
        error_large = averaged_error(name, large, 1.1, 2)
        ratio = error_small / error_large
        # N grows 16x, so 1/sqrt(N) predicts a 4x error reduction; allow slack.
        assert ratio > 2.0


class TestScalingWithEpsilon:
    @pytest.mark.parametrize("name", ["InpHT", "MargPS", "MargHT"])
    def test_error_decreases_with_epsilon(self, name):
        dataset = make_taxi_dataset(16_384, rng=np.random.default_rng(1))
        strict = averaged_error(name, dataset, 0.4, 2)
        relaxed = averaged_error(name, dataset, 1.4, 2)
        assert relaxed < strict


class TestScalingWithDimension:
    def test_inp_ps_blows_up_with_d_but_inp_ht_degrades_gracefully(self):
        narrow = uniform_dataset(8192, 4, rng=np.random.default_rng(2))
        wide = uniform_dataset(8192, 10, rng=np.random.default_rng(2))
        ps_growth = averaged_error("InpPS", wide, 1.1, 2) / max(
            averaged_error("InpPS", narrow, 1.1, 2), 1e-6
        )
        ht_growth = averaged_error("InpHT", wide, 1.1, 2) / max(
            averaged_error("InpHT", narrow, 1.1, 2), 1e-6
        )
        assert ps_growth > ht_growth

    def test_method_ordering_matches_table2_at_d16(self):
        dataset = make_taxi_dataset(16_384, d=16, rng=np.random.default_rng(3))
        inp_ht = averaged_error("InpHT", dataset, 1.1, 2)
        inp_ps = averaged_error("InpPS", dataset, 1.1, 2)
        marg_ps = averaged_error("MargPS", dataset, 1.1, 2)
        # The paper's Figure 4 (d=16) ordering: InpHT best, InpPS hopeless.
        assert inp_ht < marg_ps < inp_ps


class TestScalingWithWidth:
    def test_error_grows_with_k_for_inp_ht(self):
        dataset = make_taxi_dataset(16_384, rng=np.random.default_rng(4))
        narrow = averaged_error("InpHT", dataset, 1.1, 1)
        wide = averaged_error("InpHT", dataset, 1.1, 3)
        assert wide > narrow
