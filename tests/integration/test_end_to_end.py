"""Integration tests: full collection → aggregation → analysis pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    InpHT,
    MargPS,
    PrivacyBudget,
    available_protocols,
    compare_association_tests,
    fit_chow_liu_tree,
    fit_tree_model,
    make_protocol,
    make_taxi_dataset,
)
from repro.analysis.mutual_information import pairwise_mutual_information
from repro.datasets import DEPENDENT_PAIRS, INDEPENDENT_PAIRS, make_movielens_dataset
from repro.experiments.metrics import mean_total_variation


class TestFullPipelineOnTaxiData:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_taxi_dataset(30_000, rng=np.random.default_rng(1))

    @pytest.fixture(scope="class")
    def estimator(self, dataset):
        protocol = InpHT(PrivacyBudget(np.log(3)), max_width=3)
        return protocol.run(dataset, rng=np.random.default_rng(2))

    def test_every_workload_marginal_answerable(self, dataset, estimator):
        tables = estimator.query_all()
        assert len(tables) == 8 + 28 + 56
        for table in tables.values():
            assert np.isfinite(table.values).all()

    def test_errors_small_across_widths(self, dataset, estimator):
        by_width = {
            width: mean_total_variation(dataset, estimator, widths=[width])
            for width in (1, 2, 3)
        }
        assert by_width[1] < 0.05
        assert by_width[2] < 0.08
        assert by_width[3] < 0.15

    def test_association_analysis_detects_planted_structure(self, dataset, estimator):
        comparisons = compare_association_tests(
            dataset, estimator, DEPENDENT_PAIRS
        )
        assert all(entry.private.dependent for entry in comparisons)

    def test_correlation_sign_recovered(self, dataset, estimator):
        from repro.analysis.correlation import phi_coefficient

        strong = phi_coefficient(estimator.query(["CC", "Tip"]))
        weak = phi_coefficient(estimator.query(["Toll", "Night_pick"]))
        assert strong > 0.2
        assert abs(weak) < 0.15


class TestFullPipelineOnMovielens:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_movielens_dataset(40_000, d=8, rng=np.random.default_rng(3))

    def test_private_tree_model_generates_plausible_data(self, dataset):
        estimator = InpHT(PrivacyBudget(1.1), max_width=2).run(
            dataset, rng=np.random.default_rng(4)
        )
        tree = fit_chow_liu_tree(estimator)
        model = fit_tree_model(estimator, tree=tree)
        synthetic = model.sample(20_000, rng=np.random.default_rng(5))
        # One-way marginals of the synthetic data should track the real ones.
        for name in dataset.attribute_names:
            real = dataset.attribute_column(name).mean()
            fake = synthetic.attribute_column(name).mean()
            assert fake == pytest.approx(real, abs=0.08)

    def test_private_tree_mi_close_to_optimal(self, dataset):
        estimator = InpHT(PrivacyBudget(1.1), max_width=2).run(
            dataset, rng=np.random.default_rng(6)
        )
        weights = pairwise_mutual_information(dataset)
        exact = fit_chow_liu_tree(dataset).total_weight_under(weights)
        private = fit_chow_liu_tree(estimator).total_weight_under(weights)
        assert private >= 0.7 * exact


class TestCrossProtocolConsistency:
    def test_all_protocols_answer_the_same_queries(self):
        dataset = make_taxi_dataset(4096, rng=np.random.default_rng(7))
        budget = PrivacyBudget(1.1)
        query = ["CC", "Tip"]
        for name in available_protocols():
            estimator = make_protocol(name, budget, 2).run(
                dataset, rng=np.random.default_rng(8)
            )
            table = estimator.query(query)
            assert table.values.shape == (4,)
            assert np.isfinite(table.values).all()

    def test_paper_headline_ordering_inp_ht_beats_inp_ps(self):
        """The paper's central empirical claim at d=8: InpHT is far more
        accurate than direct input perturbation via preferential sampling."""
        dataset = make_taxi_dataset(16_384, rng=np.random.default_rng(9))
        budget = PrivacyBudget(np.log(3))
        errors = {}
        for name in ("InpHT", "InpPS"):
            per_run = []
            for seed in range(3):
                estimator = make_protocol(name, budget, 2).run(
                    dataset, rng=np.random.default_rng(seed)
                )
                per_run.append(mean_total_variation(dataset, estimator, widths=[2]))
            errors[name] = float(np.mean(per_run))
        assert errors["InpHT"] < errors["InpPS"]

    def test_marg_ps_competitive_with_marg_rr(self):
        dataset = make_taxi_dataset(16_384, rng=np.random.default_rng(10))
        budget = PrivacyBudget(np.log(3))
        errors = {}
        for name in ("MargPS", "MargRR"):
            per_run = []
            for seed in range(3):
                estimator = make_protocol(name, budget, 2).run(
                    dataset, rng=np.random.default_rng(seed + 20)
                )
                per_run.append(mean_total_variation(dataset, estimator, widths=[2]))
            errors[name] = float(np.mean(per_run))
        assert errors["MargPS"] < errors["MargRR"] * 1.3
