"""Unit tests for the analytic bounds of Table 2."""

from __future__ import annotations

import math

import pytest

from repro.core.exceptions import ProtocolConfigurationError
from repro.core.privacy import PrivacyBudget
from repro.theory.bounds import (
    BoundSummary,
    communication_bits,
    error_bound,
    error_exponent_factor,
    master_theorem_deviation_bound,
    table2_summary,
)

METHODS = ("InpRR", "InpPS", "InpHT", "MargRR", "MargPS", "MargHT")


class TestCommunication:
    def test_table2_bit_counts(self):
        d, k = 8, 2
        assert communication_bits("InpRR", d, k) == 2**d
        assert communication_bits("InpPS", d, k) == d
        assert communication_bits("InpHT", d, k) == d + 1
        assert communication_bits("MargRR", d, k) == d + 2**k
        assert communication_bits("MargPS", d, k) == d + k
        assert communication_bits("MargHT", d, k) == d + k + 1

    def test_matches_protocol_implementations(self):
        from repro.protocols.registry import make_protocol

        for method in METHODS:
            for d, k in ((6, 2), (10, 3)):
                protocol = make_protocol(method, 1.0, k)
                assert protocol.communication_bits(d) == communication_bits(
                    method, d, k
                )

    def test_unknown_method_rejected(self):
        with pytest.raises(ProtocolConfigurationError):
            communication_bits("Nope", 8, 2)


class TestErrorFactors:
    def test_inp_ht_beats_input_methods_for_small_k(self):
        for d in (8, 16, 24):
            assert error_exponent_factor("InpHT", d, 2) < error_exponent_factor(
                "InpRR", d, 2
            )
            assert error_exponent_factor("InpHT", d, 2) < error_exponent_factor(
                "InpPS", d, 2
            )

    def test_inp_ht_beats_marginal_methods_for_small_k(self):
        for d in (8, 16):
            assert error_exponent_factor("InpHT", d, 2) < error_exponent_factor(
                "MargPS", d, 2
            )

    def test_marg_rr_below_marg_ps(self):
        # 2^k d^{k/2} < 2^{3k/2} d^{k/2}.
        assert error_exponent_factor("MargRR", 8, 2) < error_exponent_factor(
            "MargPS", 8, 2
        )

    def test_input_methods_grow_exponentially_in_d(self):
        small = error_exponent_factor("InpRR", 8, 2)
        large = error_exponent_factor("InpRR", 16, 2)
        assert large / small == pytest.approx(2**8)

    def test_inp_ht_factor_formula(self):
        # 2^{k/2} * sqrt(C(d,1) + C(d,2)) at d=8, k=2.
        expected = 2.0 * math.sqrt(8 + 28)
        assert error_exponent_factor("InpHT", 8, 2) == pytest.approx(expected)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ProtocolConfigurationError):
            error_exponent_factor("InpHT", 4, 5)
        with pytest.raises(ProtocolConfigurationError):
            error_exponent_factor("InpHT", 0, 0)


class TestErrorBound:
    def test_scaling_with_population_and_epsilon(self):
        base = error_bound("InpHT", 8, 2, 1.0, 10_000)
        assert error_bound("InpHT", 8, 2, 1.0, 40_000) == pytest.approx(base / 2)
        assert error_bound("InpHT", 8, 2, 2.0, 10_000) == pytest.approx(base / 2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ProtocolConfigurationError):
            error_bound("InpHT", 8, 2, 0.0, 100)
        with pytest.raises(ProtocolConfigurationError):
            error_bound("InpHT", 8, 2, 1.0, 0)


class TestTable2Summary:
    def test_all_methods_present(self):
        rows = table2_summary(8, 2)
        assert [row.method for row in rows] == list(METHODS)
        for row in rows:
            assert isinstance(row, BoundSummary)
            assert row.communication_bits > 0
            assert row.error_factor > 0

    def test_error_at_helper(self):
        row = table2_summary(8, 2)[2]
        assert row.error_at(1.0, 10_000) == pytest.approx(
            row.error_factor / math.sqrt(10_000)
        )
        with pytest.raises(ProtocolConfigurationError):
            row.error_at(0.0, 10)


class TestMasterTheorem:
    def test_probability_bound_properties(self):
        budget = PrivacyBudget(1.0)
        loose = master_theorem_deviation_bound(budget, 0.1, 1000, 0.05)
        tight = master_theorem_deviation_bound(budget, 0.1, 100_000, 0.05)
        assert 0 < tight < loose <= 1.0

    def test_bound_decreases_with_deviation(self):
        budget = PrivacyBudget(1.0)
        small_c = master_theorem_deviation_bound(budget, 1.0, 10_000, 0.01)
        large_c = master_theorem_deviation_bound(budget, 1.0, 10_000, 0.1)
        assert large_c < small_c

    def test_rejects_bad_inputs(self):
        budget = PrivacyBudget(1.0)
        with pytest.raises(ProtocolConfigurationError):
            master_theorem_deviation_bound(budget, 0.0, 100, 0.1)
        with pytest.raises(ProtocolConfigurationError):
            master_theorem_deviation_bound(budget, 0.5, 0, 0.1)
        with pytest.raises(ProtocolConfigurationError):
            master_theorem_deviation_bound(budget, 0.5, 100, 0.0)


class TestNormalQuantile:
    def test_known_quantiles(self):
        from repro.theory.bounds import normal_quantile

        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.995) == pytest.approx(2.575829, abs=1e-5)
        assert normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-5)

    def test_monotone(self):
        from repro.theory.bounds import normal_quantile

        grid = [0.01, 0.2, 0.5, 0.8, 0.99]
        values = [normal_quantile(p) for p in grid]
        assert values == sorted(values)

    def test_rejects_probabilities_outside_the_open_interval(self):
        from repro.theory.bounds import normal_quantile

        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ProtocolConfigurationError):
                normal_quantile(bad)


class TestFrequencyOracleVariance:
    def test_variance_shrinks_with_population_and_epsilon(self):
        from repro.theory.bounds import frequency_oracle_variance

        for oracle in ("InpOLH", "InpHT", "InpHTCMS"):
            small_n = frequency_oracle_variance(oracle, 1.0, 1_000, 16)
            large_n = frequency_oracle_variance(oracle, 1.0, 100_000, 16)
            assert 0 < large_n < small_n
            low_eps = frequency_oracle_variance(oracle, 0.5, 1_000, 16)
            high_eps = frequency_oracle_variance(oracle, 3.0, 1_000, 16)
            assert high_eps < low_eps

    def test_olh_closed_form(self):
        from repro.theory.bounds import frequency_oracle_variance

        epsilon, population = 1.0, 10_000
        expected = 4.0 * math.exp(epsilon) / (
            (math.exp(epsilon) - 1.0) ** 2 * population
        )
        assert frequency_oracle_variance(
            "InpOLH", epsilon, population, 64
        ) == pytest.approx(expected)

    def test_rejects_bad_inputs(self):
        from repro.theory.bounds import frequency_oracle_variance

        with pytest.raises(ProtocolConfigurationError):
            frequency_oracle_variance("InpRR", 1.0, 100, 16)
        with pytest.raises(ProtocolConfigurationError):
            frequency_oracle_variance("InpOLH", 0.0, 100, 16)
        with pytest.raises(ProtocolConfigurationError):
            frequency_oracle_variance("InpOLH", 1.0, 0, 16)
        with pytest.raises(ProtocolConfigurationError):
            frequency_oracle_variance("InpOLH", 1.0, 100, 1)


class TestConfidenceHalfWidth:
    def test_half_width_matches_quantile_times_sigma(self):
        from repro.theory.bounds import (
            frequency_confidence_half_width,
            frequency_oracle_variance,
            normal_quantile,
        )

        sigma = math.sqrt(
            frequency_oracle_variance("InpHT", 1.2, 5_000, 64)
        )
        expected = normal_quantile(0.975) * sigma
        assert frequency_confidence_half_width(
            "InpHT", 1.2, 5_000, 64, confidence=0.95
        ) == pytest.approx(expected)

    def test_zero_population_is_infinitely_wide(self):
        from repro.theory.bounds import frequency_confidence_half_width

        assert math.isinf(
            frequency_confidence_half_width("InpOLH", 1.0, 0, 16)
        )

    def test_wider_confidence_is_wider_interval(self):
        from repro.theory.bounds import frequency_confidence_half_width

        narrow = frequency_confidence_half_width(
            "InpHTCMS", 2.0, 10_000, 256, confidence=0.9
        )
        wide = frequency_confidence_half_width(
            "InpHTCMS", 2.0, 10_000, 256, confidence=0.99
        )
        assert 0 < narrow < wide
