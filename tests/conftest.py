"""Shared fixtures for the test suite."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro import PrivacyBudget
from repro.core.domain import Domain
from repro.datasets import BinaryDataset, make_movielens_dataset, make_taxi_dataset


@pytest.fixture(autouse=True)
def _isolate_repro_logger():
    """Undo ``configure_logging`` side effects between tests.

    In-process CLI invocations (``cli.main([...])``) install the repro
    handler and turn off propagation on the ``repro`` logger; left in
    place, that would hide later tests' records from ``caplog``'s
    root-level handler.
    """
    logger = logging.getLogger("repro")
    saved_handlers = list(logger.handlers)
    saved_level = logger.level
    saved_propagate = logger.propagate
    yield
    logger.handlers[:] = saved_handlers
    logger.setLevel(saved_level)
    logger.propagate = saved_propagate


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator; tests share one seed per test."""
    return np.random.default_rng(20180610)


@pytest.fixture
def budget() -> PrivacyBudget:
    """The paper's default privacy budget, eps = ln 3."""
    return PrivacyBudget(np.log(3.0))


@pytest.fixture
def small_domain() -> Domain:
    """A 4-attribute named domain."""
    return Domain(["a", "b", "c", "d"])


@pytest.fixture
def tiny_dataset(rng) -> BinaryDataset:
    """A small fixed-dimension dataset with planted correlation (a == b often)."""
    n = 4096
    a = (rng.random(n) < 0.6).astype(np.int8)
    b = np.where(rng.random(n) < 0.85, a, 1 - a).astype(np.int8)
    c = (rng.random(n) < 0.3).astype(np.int8)
    d = (rng.random(n) < 0.5).astype(np.int8)
    return BinaryDataset.from_records(
        np.stack([a, b, c, d], axis=1), attribute_names=["a", "b", "c", "d"]
    )


@pytest.fixture
def taxi_dataset(rng) -> BinaryDataset:
    """A moderate taxi-like dataset (8 attributes)."""
    return make_taxi_dataset(8192, rng=rng)


@pytest.fixture
def movielens_dataset(rng) -> BinaryDataset:
    """A moderate movielens-like dataset (8 genres)."""
    return make_movielens_dataset(8192, d=8, rng=rng)
