"""Shared helpers for the collection-service test suites."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.privacy import PrivacyBudget
from repro.core.rng import spawn_rngs
from repro.datasets import BinaryDataset
from repro.protocols.registry import PROTOCOL_CLASSES, make_protocol

LN3 = float(np.log(3.0))

#: Smaller sketch so the InpHTCMS cases stay fast at test scale.
PROTOCOL_OPTIONS = {"InpHTCMS": {"num_hashes": 3, "width": 32}}

ALL_PROTOCOLS = sorted(PROTOCOL_CLASSES)

SEED = 20180610


def build(name: str, epsilon: float = LN3, width: int = 2):
    options = PROTOCOL_OPTIONS.get(name, {})
    return make_protocol(name, PrivacyBudget(epsilon), width, **options)


def small_dataset(n: int = 96, d: int = 4, seed: int = 97) -> BinaryDataset:
    rng = np.random.default_rng(seed)
    marginal_probs = rng.random(d) * 0.6 + 0.2
    records = (rng.random((n, d)) < marginal_probs).astype(np.int8)
    return BinaryDataset.from_records(records)


def streaming_rngs(seed: int, num_batches: int) -> List:
    """The exact per-batch generators ``run_streaming(rng=default_rng(seed))``
    uses, so wire-path estimates can be compared bit-for-bit against it."""
    generator = np.random.default_rng(seed)
    if num_batches == 1:
        return [generator]
    return spawn_rngs(generator, num_batches)


def encode_batches(protocol, dataset, batch_size, seed=SEED) -> List:
    """Client-side: the in-memory report batches of a streaming run."""
    rngs = streaming_rngs(seed, dataset.num_batches(batch_size))
    return [
        protocol.encode_batch(chunk, rng=chunk_rng)
        for chunk, chunk_rng in zip(dataset.iter_batches(batch_size), rngs)
    ]


def encode_frames(protocol, dataset, batch_size, seed=SEED) -> List[bytes]:
    """Client-side: the same batches in their serialized wire form."""
    return [
        reports.to_bytes()
        for reports in encode_batches(protocol, dataset, batch_size, seed)
    ]


def estimates_of(estimator) -> Dict[int, np.ndarray]:
    return {beta: table.values for beta, table in estimator.query_all().items()}


def assert_estimates_equal(observed, expected):
    assert observed.keys() == expected.keys()
    for beta in expected:
        np.testing.assert_array_equal(observed[beta], expected[beta])
