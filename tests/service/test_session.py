"""AggregationSession: submit, snapshot, merge, checkpoint/restore.

The acceptance bar: for every protocol, ``checkpoint()`` mid-stream followed
by ``restore()`` resumes to estimates bit-for-bit identical to the
uninterrupted run — proven as a protocol x executor matrix in-process and,
for every protocol, across a real process boundary (a fresh interpreter
restores the checkpoint and finishes the aggregation).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.domain import Domain
from repro.core.exceptions import (
    AggregationError,
    ProtocolConfigurationError,
    WireFormatError,
)
from repro.execution import available_executors, make_executor
from repro.service import AggregationSession, ProtocolSpec

from .util import (
    ALL_PROTOCOLS,
    SEED,
    assert_estimates_equal,
    build,
    encode_batches,
    encode_frames,
    estimates_of,
    small_dataset,
)

BATCH_SIZE = 24  # 96 records -> 4 batches; checkpoint after the first 2


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


@pytest.fixture(scope="module")
def executors():
    cache = {}
    yield lambda name: cache.setdefault(name, make_executor(name, 2))
    for executor in cache.values():
        executor.close()


class TestSubmit:
    def test_in_memory_and_wire_submissions_agree(self, dataset):
        protocol = build("InpHT")
        batches = encode_batches(protocol, dataset, BATCH_SIZE)
        in_memory = AggregationSession(protocol.spec(), dataset.domain)
        wire = AggregationSession(protocol.spec(), dataset.domain)
        for reports in batches:
            in_memory.submit(reports)
            wire.submit(reports.to_bytes())
        assert_estimates_equal(
            estimates_of(wire.snapshot()), estimates_of(in_memory.snapshot())
        )
        assert wire.num_reports == in_memory.num_reports == dataset.size

    def test_submit_rejects_foreign_frames(self, dataset):
        session = build("InpHT").session(dataset.domain)
        foreign = encode_frames(build("MargPS"), dataset, None)[0]
        with pytest.raises(WireFormatError, match="expected 'InpHT'"):
            session.submit(foreign)
        assert session.num_reports == 0

    def test_wire_metadata_counters(self, dataset):
        protocol = build("InpPS")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        session = AggregationSession(protocol.spec(), dataset.domain)
        for frame in frames:
            session.submit(frame)
        metadata = session.metadata
        assert metadata["wire_batches"] == len(frames)
        assert metadata["wire_reports"] == dataset.size
        assert metadata["wire_bytes_total"] == sum(len(f) for f in frames)
        assert metadata["wire_bytes_per_report"] == pytest.approx(
            sum(len(f) for f in frames) / dataset.size
        )

    def test_session_requires_spec_or_protocol(self, dataset):
        with pytest.raises(ProtocolConfigurationError):
            AggregationSession("InpHT", dataset.domain)
        with pytest.raises(ProtocolConfigurationError):
            AggregationSession(build("InpHT").spec(), "not a domain")

    def test_protocol_session_convenience(self, dataset):
        protocol = build("MargHT")
        session = protocol.session(dataset.domain)
        assert session.spec == protocol.spec()
        assert "MargHT" in repr(session)


class TestSnapshot:
    def test_snapshot_is_non_destructive_and_repeatable(self, dataset):
        protocol = build("MargRR")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        session = AggregationSession(protocol.spec(), dataset.domain)
        session.submit(frames[0])
        first = estimates_of(session.snapshot())
        again = estimates_of(session.snapshot())
        assert_estimates_equal(again, first)
        # The session keeps aggregating after (repeated) snapshots.
        for frame in frames[1:]:
            session.submit(frame)
        assert session.num_reports == dataset.size
        final = estimates_of(session.snapshot())
        uninterrupted = AggregationSession(protocol.spec(), dataset.domain)
        for frame in frames:
            uninterrupted.submit(frame)
        assert_estimates_equal(final, estimates_of(uninterrupted.snapshot()))

    def test_snapshot_metadata_carries_spec_and_session(self, dataset):
        protocol = build("InpOLH")
        session = AggregationSession(protocol.spec(), dataset.domain)
        session.submit(encode_frames(protocol, dataset, None)[0])
        estimator = session.snapshot()
        assert estimator.metadata["spec"] == protocol.spec().to_dict()
        assert estimator.metadata["session"]["wire_batches"] == 1


class TestMerge:
    def test_merge_combines_shard_sessions(self, dataset):
        protocol = build("InpHT")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        single = AggregationSession(protocol.spec(), dataset.domain)
        for frame in frames:
            single.submit(frame)
        left = AggregationSession(protocol.spec(), dataset.domain)
        right = AggregationSession(protocol.spec(), dataset.domain)
        for position, frame in enumerate(frames):
            (left if position % 2 == 0 else right).submit(frame)
        left.merge(right)
        assert left.num_reports == dataset.size
        assert left.metadata == single.metadata
        assert_estimates_equal(
            estimates_of(left.snapshot()), estimates_of(single.snapshot())
        )

    def test_merge_mismatch_is_a_readable_spec_diff(self, dataset):
        first = AggregationSession(
            ProtocolSpec(protocol="InpHT", epsilon=1.0, max_width=2),
            dataset.domain,
        )
        second = AggregationSession(
            ProtocolSpec(protocol="InpHT", epsilon=2.0, max_width=2),
            dataset.domain,
        )
        with pytest.raises(AggregationError) as excinfo:
            first.merge(second)
        assert "epsilon: 1.0 != 2.0" in str(excinfo.value)

    def test_merge_rejects_different_domains(self, dataset):
        spec = build("InpHT").spec()
        first = AggregationSession(spec, dataset.domain)
        second = AggregationSession(spec, Domain.binary(dataset.dimension, "x"))
        with pytest.raises(AggregationError, match="domains"):
            first.merge(second)

    def test_merge_rejects_non_sessions(self, dataset):
        session = build("InpHT").session(dataset.domain)
        with pytest.raises(AggregationError):
            session.merge("not a session")


class TestCheckpointRestoreMatrix:
    """Mid-stream checkpoint/restore == uninterrupted run, bit for bit."""

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    @pytest.mark.parametrize("executor_name", sorted(available_executors()))
    def test_resumed_session_matches_uninterrupted_run(
        self, name, executor_name, dataset, executors, tmp_path
    ):
        protocol = build(name)
        uninterrupted = protocol.run_streaming(
            dataset,
            rng=np.random.default_rng(SEED),
            batch_size=BATCH_SIZE,
            shards=2,
            executor=executors(executor_name),
        )
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        session = AggregationSession(protocol.spec(), dataset.domain)
        for frame in frames[:2]:
            session.submit(frame)
        path = session.checkpoint(tmp_path / f"{name}.ckpt.npz")
        resumed = AggregationSession.restore(path)
        assert resumed.spec == session.spec
        assert resumed.domain == session.domain
        assert resumed.num_reports == session.num_reports
        for frame in frames[2:]:
            resumed.submit(frame)
        assert_estimates_equal(
            estimates_of(resumed.snapshot()), estimates_of(uninterrupted)
        )

    def test_checkpoint_preserves_wire_counters(self, dataset, tmp_path):
        protocol = build("InpEM")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        session = AggregationSession(protocol.spec(), dataset.domain)
        for frame in frames:
            session.submit(frame)
        restored = AggregationSession.restore(
            session.checkpoint(tmp_path / "em.ckpt.npz")
        )
        assert restored.metadata == session.metadata


class TestFreshProcessRestore:
    def test_restore_in_fresh_interpreter_resumes_bit_for_bit(
        self, dataset, tmp_path
    ):
        """A brand-new Python process restores each protocol's checkpoint,
        finishes the aggregation and reproduces the uninterrupted estimates
        exactly (compared through float hex, so bit-for-bit)."""
        expected = {}
        frame_dir = tmp_path / "frames"
        frame_dir.mkdir()
        for name in ALL_PROTOCOLS:
            protocol = build(name)
            frames = encode_frames(protocol, dataset, BATCH_SIZE)
            uninterrupted = AggregationSession(protocol.spec(), dataset.domain)
            for frame in frames:
                uninterrupted.submit(frame)
            expected[name] = {
                str(beta): [value.hex() for value in values]
                for beta, values in estimates_of(
                    uninterrupted.snapshot()
                ).items()
            }
            partial = AggregationSession(protocol.spec(), dataset.domain)
            for frame in frames[:2]:
                partial.submit(frame)
            partial.checkpoint(tmp_path / f"{name}.ckpt.npz")
            for position, frame in enumerate(frames[2:]):
                (frame_dir / f"{name}.{position}.bin").write_bytes(frame)

        script = textwrap.dedent(
            """
            import json, sys
            from pathlib import Path
            from repro.service import AggregationSession

            root = Path(sys.argv[1])
            names = json.loads(sys.argv[2])
            out = {}
            for name in names:
                session = AggregationSession.restore(root / f"{name}.ckpt.npz")
                for frame_path in sorted((root / "frames").glob(f"{name}.*.bin")):
                    session.submit(frame_path.read_bytes())
                estimator = session.snapshot()
                out[name] = {
                    str(beta): [value.hex() for value in table.values]
                    for beta, table in estimator.query_all().items()
                }
            print(json.dumps(out))
            """
        )
        source_root = Path(repro.__file__).resolve().parents[1]
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.pathsep.join(
            [str(source_root)]
            + ([environment["PYTHONPATH"]] if "PYTHONPATH" in environment else [])
        )
        completed = subprocess.run(
            [
                sys.executable,
                "-c",
                script,
                str(tmp_path),
                json.dumps(ALL_PROTOCOLS),
            ],
            capture_output=True,
            text=True,
            env=environment,
            check=True,
        )
        observed = json.loads(completed.stdout)
        assert observed == expected


class TestRestoreErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(WireFormatError, match="cannot read"):
            AggregationSession.restore(tmp_path / "nope.npz")

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not an npz archive")
        with pytest.raises(WireFormatError):
            AggregationSession.restore(path)

    def test_npz_without_header(self, tmp_path):
        path = tmp_path / "headless.npz"
        with path.open("wb") as handle:
            np.savez(handle, state__sums=np.zeros(4))
        with pytest.raises(WireFormatError, match="header"):
            AggregationSession.restore(path)

    def test_version_mismatch(self, tmp_path, dataset):
        protocol = build("InpHT")
        session = AggregationSession(protocol.spec(), dataset.domain)
        session.submit(encode_frames(protocol, dataset, None)[0])
        path = session.checkpoint(tmp_path / "ok.ckpt.npz")
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["header"][()]))
            arrays = {
                name: archive[name] for name in archive.files if name != "header"
            }
        header["format_version"] = 99
        stale = tmp_path / "stale.ckpt.npz"
        with stale.open("wb") as handle:
            np.savez(handle, header=np.array(json.dumps(header)), **arrays)
        with pytest.raises(WireFormatError, match="version"):
            AggregationSession.restore(stale)

    def test_missing_state_rejected(self, tmp_path, dataset):
        header = {
            "format_version": 1,
            "spec": build("InpHT").spec().to_dict(),
            "attributes": list(dataset.domain.attributes),
            "session": {},
        }
        path = tmp_path / "stateless.ckpt.npz"
        with path.open("wb") as handle:
            np.savez(handle, header=np.array(json.dumps(header)))
        with pytest.raises(WireFormatError, match="state"):
            AggregationSession.restore(path)


class TestTuningOptionMerge:
    def test_sessions_differing_only_in_decode_tuning_merge(self, dataset):
        """decode_batch_size is a pure performance knob (no effect on the
        estimates), so differently tuned InpOLH collectors must combine."""
        fast = ProtocolSpec(
            protocol="InpOLH", epsilon=1.0, max_width=2,
            options={"num_buckets": 0, "decode_batch_size": 0},
        )
        tuned = ProtocolSpec(
            protocol="InpOLH", epsilon=1.0, max_width=2,
            options={"num_buckets": 0, "decode_batch_size": 1024},
        )
        frames = encode_frames(fast.build(), dataset, BATCH_SIZE)
        first = AggregationSession(fast, dataset.domain)
        second = AggregationSession(tuned, dataset.domain)
        first.submit(frames[0])
        second.submit(frames[1])
        first.merge(second)
        assert first.num_reports == 2 * BATCH_SIZE

    def test_estimate_relevant_options_still_block_merging(self, dataset):
        first = AggregationSession(
            ProtocolSpec(
                protocol="InpOLH", epsilon=1.0, max_width=2,
                options={"num_buckets": 2},
            ),
            dataset.domain,
        )
        second = AggregationSession(
            ProtocolSpec(
                protocol="InpOLH", epsilon=1.0, max_width=2,
                options={"num_buckets": 8},
            ),
            dataset.domain,
        )
        with pytest.raises(AggregationError, match="num_buckets"):
            first.merge(second)

    def test_implicit_and_explicit_defaults_merge(self, dataset):
        """A spec leaving options at their defaults and one spelling the
        same defaults out build identical protocols, so their sessions
        combine (specs are compared in canonical form)."""
        implicit = ProtocolSpec(protocol="InpOLH", epsilon=1.0, max_width=2)
        explicit = ProtocolSpec(
            protocol="InpOLH", epsilon=1.0, max_width=2,
            options={"num_buckets": 0, "decode_batch_size": 0},
        )
        assert implicit.canonical() == explicit.canonical()
        frames = encode_frames(implicit.build(), dataset, BATCH_SIZE)
        first = AggregationSession(implicit, dataset.domain)
        second = AggregationSession(explicit, dataset.domain)
        first.submit(frames[0])
        second.submit(frames[1])
        first.merge(second)
        assert first.num_reports == 2 * BATCH_SIZE

    def test_corrupted_session_header_field(self, tmp_path, dataset):
        protocol = build("InpHT")
        session = AggregationSession(protocol.spec(), dataset.domain)
        session.submit(encode_frames(protocol, dataset, None)[0])
        path = session.checkpoint(tmp_path / "ok.ckpt.npz")
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["header"][()]))
            arrays = {
                name: archive[name] for name in archive.files if name != "header"
            }
        header["session"] = "oops"
        bad = tmp_path / "bad-session.ckpt.npz"
        with bad.open("wb") as handle:
            np.savez(handle, header=np.array(json.dumps(header)), **arrays)
        with pytest.raises(WireFormatError, match="session"):
            AggregationSession.restore(bad)

    def test_corrupted_attributes_header_field(self, tmp_path, dataset):
        protocol = build("InpHT")
        session = AggregationSession(protocol.spec(), dataset.domain)
        session.submit(encode_frames(protocol, dataset, None)[0])
        path = session.checkpoint(tmp_path / "ok2.ckpt.npz")
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["header"][()]))
            arrays = {
                name: archive[name] for name in archive.files if name != "header"
            }
        header["attributes"] = 7
        bad = tmp_path / "bad-attrs.ckpt.npz"
        with bad.open("wb") as handle:
            np.savez(handle, header=np.array(json.dumps(header)), **arrays)
        with pytest.raises(WireFormatError, match="corrupted header"):
            AggregationSession.restore(bad)


class TestAtomicCheckpoint:
    """checkpoint() must never destroy the previous checkpoint file.

    The write goes to a sibling temp file that is atomically renamed over
    the target, so a crash (or full disk) mid-write leaves the old
    checkpoint byte-identical and restorable.
    """

    def test_interrupted_write_preserves_previous_checkpoint(
        self, tmp_path, dataset, monkeypatch
    ):
        protocol = build("InpHT")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        session = AggregationSession(protocol.spec(), dataset.domain)
        for frame in frames[:2]:
            session.submit(frame)
        path = tmp_path / "session.npz"
        session.checkpoint(path)
        good_bytes = path.read_bytes()

        for frame in frames[2:]:
            session.submit(frame)

        real_savez = np.savez

        def torn_write(handle, **arrays):
            # Simulate a crash mid-checkpoint: some bytes land, then boom.
            handle.write(b"partial garbage that is not an npz archive")
            raise OSError("disk full mid-write")

        monkeypatch.setattr(np, "savez", torn_write)
        with pytest.raises(OSError, match="disk full"):
            session.checkpoint(path)
        monkeypatch.setattr(np, "savez", real_savez)

        # The previous checkpoint survived byte-for-byte and still restores.
        assert path.read_bytes() == good_bytes
        restored = AggregationSession.restore(path)
        assert restored.num_reports == 2 * BATCH_SIZE
        # No temp-file litter either.
        assert list(tmp_path.iterdir()) == [path]

    def test_rewrite_replaces_previous_checkpoint(self, tmp_path, dataset):
        protocol = build("InpRR")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        session = AggregationSession(protocol.spec(), dataset.domain)
        session.submit(frames[0])
        path = tmp_path / "session.npz"
        session.checkpoint(path)
        for frame in frames[1:]:
            session.submit(frame)
        session.checkpoint(path)
        restored = AggregationSession.restore(path)
        assert restored.num_reports == dataset.size
        assert_estimates_equal(
            estimates_of(restored.snapshot()), estimates_of(session.snapshot())
        )
        assert list(tmp_path.iterdir()) == [path]

    def test_checkpoint_mode_honors_umask(self, tmp_path, dataset):
        """The atomic temp-file write must not leak NamedTemporaryFile's
        0600 mode onto the checkpoint; other-user readers keep working."""
        protocol = build("InpRR")
        session = AggregationSession(protocol.spec(), dataset.domain)
        session.submit(encode_frames(protocol, dataset, None)[0])
        previous_umask = os.umask(0o022)
        try:
            path = session.checkpoint(tmp_path / "mode.npz")
        finally:
            os.umask(previous_umask)
        assert (path.stat().st_mode & 0o777) == 0o644
