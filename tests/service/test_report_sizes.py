"""Serialized report sizes must track the paper's Table 2 communication.

Table 2 counts the *information-theoretic* bits each user sends (a marginal
index in ``ceil(log2 C(d,k))`` bits, a noisy value in 1 bit, ...).  The wire
codec ships every such logical quantity as one fixed-width NumPy word of at
most 64 bits (int64/float64 indices and values, int8 bit vectors), so the
measured per-user payload must stay within that encoding overhead of the
Table 2 bound:

* lower bound — the wire can compress below Table 2 only for sum-form
  reports (``InpRR`` ships ``2^d`` column sums per *batch*, amortising the
  per-user ``2^d`` bits), and even then never below ``1/64`` of it;
* upper bound — at most 64 wire bits per Table 2 bit, reached when a 1-bit
  logical value rides alone in a 64-bit word.

The per-frame container overhead (frame header + npz bookkeeping) is
asserted separately so it cannot silently grow into the payload budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import AggregationSession, report_schema_for

from .util import ALL_PROTOCOLS, build, encode_batches, small_dataset

#: One fixed-width NumPy word per logical Table 2 quantity.
ENCODING_OVERHEAD_FACTOR = 64

#: Frame header + npz/zip bookkeeping for a handful of arrays.
MAX_CONTAINER_OVERHEAD_BYTES = 2048

N = 200
D = 6


@pytest.fixture(scope="module")
def dataset():
    return small_dataset(n=N, d=D, seed=11)


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_wire_bits_per_user_track_table2(name, dataset):
    protocol = build(name)
    (reports,) = encode_batches(protocol, dataset, None)
    frame = reports.to_bytes()

    session = AggregationSession(protocol.spec(), dataset.domain)
    session.submit(frame)
    metadata = session.metadata
    assert metadata["wire_bytes_total"] == len(frame)
    assert metadata["wire_reports"] == N
    wire_bits_per_user = 8.0 * metadata["wire_bytes_per_report"]

    table2_bits = protocol.communication_bits(D)
    ratio = wire_bits_per_user / table2_bits
    assert 1.0 / ENCODING_OVERHEAD_FACTOR <= ratio <= ENCODING_OVERHEAD_FACTOR, (
        f"{name}: {wire_bits_per_user:.1f} wire bits/user vs Table 2's "
        f"{table2_bits} bits/user (ratio {ratio:.2f}) is outside the "
        f"fixed-width encoding overhead band"
    )


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_container_overhead_is_bounded(name, dataset):
    protocol = build(name)
    (reports,) = encode_batches(protocol, dataset, None)
    frame = reports.to_bytes()
    schema = report_schema_for(type(reports))
    array_bytes = sum(
        np.asarray(getattr(reports, field.name)).nbytes
        for field in schema.fields
    ) + 8 * len(schema.scalar_fields)
    overhead = len(frame) - array_bytes
    assert 0 < overhead <= MAX_CONTAINER_OVERHEAD_BYTES, (
        f"{name}: container overhead {overhead} bytes (frame {len(frame)}, "
        f"arrays {array_bytes})"
    )


def test_batching_amortises_sum_form_reports(dataset):
    """InpRR's per-batch column sums shrink the per-user wire cost as the
    batch grows — the deployment story for its otherwise 2^d-bit reports."""
    protocol = build("InpRR")
    small_frames = encode_batches(protocol, dataset, 20)
    (large_frame,) = encode_batches(protocol, dataset, None)
    small_bytes = sum(len(reports.to_bytes()) for reports in small_frames)
    assert len(large_frame.to_bytes()) < small_bytes
