"""ProtocolSpec: validation, round trips, build factory and readable diffs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.exceptions import (
    PrivacyBudgetError,
    ProtocolConfigurationError,
)
from repro.io import load_protocol_spec, save_protocol_spec
from repro.service import SPEC_FORMAT_VERSION, ProtocolSpec

from .util import ALL_PROTOCOLS, LN3, build, small_dataset


class TestConstruction:
    def test_minimal_spec(self):
        spec = ProtocolSpec(protocol="InpHT", epsilon=LN3, max_width=2)
        assert spec.options == {}
        assert spec.epsilon == pytest.approx(LN3)

    def test_numpy_width_coerced(self):
        spec = ProtocolSpec(protocol="InpHT", epsilon=1.0, max_width=np.int64(3))
        assert spec.max_width == 3
        assert isinstance(spec.max_width, int)

    def test_bad_epsilon_uses_budget_validation(self):
        with pytest.raises(PrivacyBudgetError):
            ProtocolSpec(protocol="InpHT", epsilon=-1.0, max_width=2)

    @pytest.mark.parametrize("width", [0, -3, 2.5, "two", True])
    def test_bad_width_rejected(self, width):
        with pytest.raises(ProtocolConfigurationError):
            ProtocolSpec(protocol="InpHT", epsilon=1.0, max_width=width)

    def test_empty_protocol_rejected(self):
        with pytest.raises(ProtocolConfigurationError):
            ProtocolSpec(protocol="", epsilon=1.0, max_width=2)

    def test_non_string_option_keys_rejected(self):
        with pytest.raises(ProtocolConfigurationError):
            ProtocolSpec(
                protocol="InpHT", epsilon=1.0, max_width=2, options={1: 2}
            )

    def test_options_are_copied(self):
        options = {"width": 64}
        spec = ProtocolSpec(
            protocol="InpHTCMS", epsilon=1.0, max_width=2, options=options
        )
        options["width"] = 128
        assert spec.options == {"width": 64}


class TestBuild:
    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_build_constructs_the_named_protocol(self, name):
        spec = ProtocolSpec(protocol=name, epsilon=LN3, max_width=2)
        protocol = spec.build()
        assert protocol.name == name
        assert protocol.epsilon == pytest.approx(LN3)
        assert protocol.max_width == 2

    def test_build_forwards_options(self):
        spec = ProtocolSpec(
            protocol="InpHTCMS",
            epsilon=1.0,
            max_width=2,
            options={"num_hashes": 3, "width": 64},
        )
        assert spec.build().oracle(6).width == 64

    def test_unknown_protocol_raises(self):
        spec = ProtocolSpec(protocol="InpMagic", epsilon=1.0, max_width=2)
        with pytest.raises(ProtocolConfigurationError, match="InpMagic"):
            spec.build()

    def test_unknown_option_names_protocol_and_key(self):
        spec = ProtocolSpec(
            protocol="InpHT", epsilon=1.0, max_width=2, options={"bogus": 1}
        )
        with pytest.raises(ProtocolConfigurationError) as excinfo:
            spec.build()
        message = str(excinfo.value)
        assert "InpHT" in message
        assert "bogus" in message

    def test_unknown_option_lists_valid_options(self):
        spec = ProtocolSpec(
            protocol="InpHTCMS", epsilon=1.0, max_width=2, options={"depth": 5}
        )
        with pytest.raises(ProtocolConfigurationError) as excinfo:
            spec.build()
        message = str(excinfo.value)
        assert "num_hashes" in message and "width" in message


class TestRoundTrips:
    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_from_protocol_round_trip(self, name):
        protocol = build(name)
        spec = protocol.spec()
        rebuilt = spec.build()
        assert rebuilt.spec() == spec
        assert rebuilt.name == protocol.name
        assert rebuilt.epsilon == protocol.epsilon
        assert rebuilt.max_width == protocol.max_width
        assert rebuilt.spec_options() == protocol.spec_options()

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_json_round_trip(self, name):
        spec = build(name).spec()
        assert ProtocolSpec.from_json(spec.to_json()) == spec
        assert ProtocolSpec.from_dict(spec.to_dict()) == spec

    def test_to_json_is_deterministic(self):
        spec = ProtocolSpec(
            protocol="InpOLH",
            epsilon=1.25,
            max_width=2,
            options={"num_buckets": 8, "decode_batch_size": 0},
        )
        assert spec.to_json() == ProtocolSpec.from_json(spec.to_json()).to_json()

    def test_file_round_trip(self, tmp_path):
        spec = build("MargRR").spec()
        path = save_protocol_spec(spec, tmp_path / "spec.json")
        assert load_protocol_spec(path) == spec

    def test_format_version_is_stamped(self):
        payload = ProtocolSpec(
            protocol="InpHT", epsilon=1.0, max_width=2
        ).to_dict()
        assert payload["format_version"] == SPEC_FORMAT_VERSION


class TestFromDictErrors:
    def base_payload(self):
        return ProtocolSpec(protocol="InpHT", epsilon=1.0, max_width=2).to_dict()

    def test_version_mismatch(self):
        payload = self.base_payload()
        payload["format_version"] = 99
        with pytest.raises(ProtocolConfigurationError, match="version"):
            ProtocolSpec.from_dict(payload)

    def test_missing_field(self):
        payload = self.base_payload()
        del payload["epsilon"]
        with pytest.raises(ProtocolConfigurationError, match="missing"):
            ProtocolSpec.from_dict(payload)

    def test_unexpected_field(self):
        payload = self.base_payload()
        payload["sharding"] = 4
        with pytest.raises(ProtocolConfigurationError, match="unexpected"):
            ProtocolSpec.from_dict(payload)

    def test_not_a_mapping(self):
        with pytest.raises(ProtocolConfigurationError, match="mapping"):
            ProtocolSpec.from_dict([1, 2, 3])

    def test_invalid_json(self):
        with pytest.raises(ProtocolConfigurationError, match="JSON"):
            ProtocolSpec.from_json("{not json")

    def test_json_integer_width_survives_float_coercion(self):
        payload = self.base_payload()
        payload["max_width"] = 2.0  # a JSON writer may emit 2.0 for 2
        assert ProtocolSpec.from_dict(payload).max_width == 2


class TestDiff:
    def test_equal_specs_have_empty_diff(self):
        first = build("InpRR").spec()
        second = build("InpRR").spec()
        assert first.diff(second) == []

    def test_diff_reports_every_field(self):
        first = ProtocolSpec(
            protocol="InpRR",
            epsilon=1.0,
            max_width=2,
            options={"optimized_probabilities": True},
        )
        second = ProtocolSpec(
            protocol="InpHT", epsilon=2.0, max_width=3, options={}
        )
        lines = first.diff(second)
        assert any("protocol" in line for line in lines)
        assert any("epsilon" in line for line in lines)
        assert any("max_width" in line for line in lines)
        assert any("optimized_probabilities" in line for line in lines)

    def test_diff_is_readable_per_option(self):
        first = ProtocolSpec(
            protocol="InpHTCMS", epsilon=1.0, max_width=2, options={"width": 64}
        )
        second = ProtocolSpec(
            protocol="InpHTCMS", epsilon=1.0, max_width=2, options={"width": 256}
        )
        (line,) = first.diff(second)
        assert "width" in line and "64" in line and "256" in line

    def test_diff_rejects_non_spec(self):
        spec = build("InpHT").spec()
        with pytest.raises(ProtocolConfigurationError):
            spec.diff({"protocol": "InpHT"})


class TestIntegration:
    def test_run_streaming_metadata_carries_the_spec(self):
        dataset = small_dataset(n=48, d=3)
        protocol = build("InpHT")
        estimator = protocol.run_streaming(
            dataset, rng=np.random.default_rng(1), batch_size=16
        )
        assert estimator.metadata["spec"] == protocol.spec().to_dict()
        # The metadata spec is enough to rebuild the collection contract.
        rebuilt = ProtocolSpec.from_dict(estimator.metadata["spec"]).build()
        assert rebuilt.spec() == protocol.spec()

    def test_describe_mentions_the_parameters(self):
        text = build("InpHTCMS").spec().describe()
        assert text.startswith("InpHTCMS(")
        assert "k=2" in text and "num_hashes=3" in text


class TestNonNumericEpsilon:
    def test_non_numeric_epsilon_is_a_configuration_error(self):
        with pytest.raises(ProtocolConfigurationError, match="epsilon"):
            ProtocolSpec(protocol="InpHT", epsilon="abc", max_width=2)
        with pytest.raises(ProtocolConfigurationError, match="epsilon"):
            ProtocolSpec(protocol="InpHT", epsilon=None, max_width=2)

    def test_diff_can_ignore_tuning_options(self):
        first = ProtocolSpec(
            protocol="InpOLH", epsilon=1.0, max_width=2,
            options={"num_buckets": 0, "decode_batch_size": 0},
        )
        second = ProtocolSpec(
            protocol="InpOLH", epsilon=1.0, max_width=2,
            options={"num_buckets": 0, "decode_batch_size": 1024},
        )
        assert first.diff(second) != []
        assert first.diff(second, ignore_options={"decode_batch_size"}) == []

    def test_uncoercible_option_value_is_a_configuration_error(self):
        spec = ProtocolSpec(
            protocol="InpHTCMS", epsilon=1.0, max_width=2,
            options={"width": [1, 2]},
        )
        with pytest.raises(ProtocolConfigurationError, match="rejected"):
            spec.build()
