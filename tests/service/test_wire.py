"""Report wire codec: round-trip fidelity and malformed-buffer rejection.

The acceptance bar for the codec is exact: for every protocol, encode →
``to_bytes`` → ``from_bytes`` → aggregate must be bit-for-bit identical to
the in-memory ``run_streaming`` path (proven here as a protocol x executor
matrix), and corrupted, truncated or version-mismatched buffers must raise
clean :class:`WireFormatError`\\ s before touching an accumulator.
"""

from __future__ import annotations

import dataclasses
import io
import struct

import numpy as np
import pytest

from repro.core.exceptions import WireFormatError
from repro.execution import available_executors, make_executor
from repro.service import (
    WIRE_FORMAT_VERSION,
    AggregationSession,
    decode_reports,
    encode_reports,
    iter_report_frames,
    report_schema_for,
    split_report_frames,
)
from repro.protocols.inp_ht import InpHTReports
from repro.protocols.inp_rr import InpRRReports

from .util import (
    ALL_PROTOCOLS,
    SEED,
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)

BATCH_SIZE = 24  # 96 records -> 4 batches


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


@pytest.fixture(scope="module")
def executors():
    cache = {}
    yield lambda name: cache.setdefault(name, make_executor(name, 2))
    for executor in cache.values():
        executor.close()


class TestFieldRoundTrip:
    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_every_field_survives_bit_for_bit(self, name, dataset):
        protocol = build(name)
        reports = protocol.encode_batch(dataset, rng=np.random.default_rng(3))
        decoded = type(reports).from_bytes(reports.to_bytes())
        assert type(decoded) is type(reports)
        for field in dataclasses.fields(reports):
            original = getattr(reports, field.name)
            restored = getattr(decoded, field.name)
            if isinstance(original, np.ndarray):
                assert restored.dtype == original.dtype
                np.testing.assert_array_equal(restored, original)
            else:
                assert restored == original
        assert decoded.num_users == reports.num_users

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_protocol_decode_reports_round_trip(self, name, dataset):
        protocol = build(name)
        reports = protocol.encode_batch(dataset, rng=np.random.default_rng(5))
        decoded = protocol.decode_reports(reports.to_bytes())
        assert type(decoded) is type(reports)

    def test_empty_batch_round_trips(self, dataset):
        protocol = build("InpHT")
        reports = protocol.encode_batch(
            dataset.records[:0], rng=np.random.default_rng(0)
        )
        decoded = protocol.decode_reports(reports.to_bytes())
        assert decoded.num_users == 0


class TestWirePathMatchesRunStreaming:
    """Acceptance matrix: wire path == in-memory path, on every executor."""

    @pytest.fixture(scope="class")
    def baselines(self, dataset):
        tables = {}
        for name in ALL_PROTOCOLS:
            estimator = build(name).run_streaming(
                dataset,
                rng=np.random.default_rng(SEED),
                batch_size=BATCH_SIZE,
            )
            tables[name] = estimates_of(estimator)
        return tables

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    @pytest.mark.parametrize("executor_name", sorted(available_executors()))
    def test_wire_aggregation_matches_run_streaming(
        self, name, executor_name, dataset, baselines, executors
    ):
        protocol = build(name)
        streamed = protocol.run_streaming(
            dataset,
            rng=np.random.default_rng(SEED),
            batch_size=BATCH_SIZE,
            shards=2,
            executor=executors(executor_name),
        )
        session = AggregationSession(protocol.spec(), dataset.domain)
        for frame in encode_frames(protocol, dataset, BATCH_SIZE):
            session.submit(frame)
        wire_estimates = estimates_of(session.snapshot())
        assert_estimates_equal(wire_estimates, estimates_of(streamed))
        assert_estimates_equal(wire_estimates, baselines[name])


class TestFraming:
    def test_iter_report_frames_splits_concatenated_stream(self, dataset):
        protocol = build("MargPS")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        stream = b"".join(frames)
        decoded = list(iter_report_frames(stream))
        assert len(decoded) == len(frames)
        assert sum(batch.num_users for batch in decoded) == dataset.size

    def test_iter_report_frames_accepts_binary_file(self, dataset):
        protocol = build("InpPS")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        decoded = list(iter_report_frames(io.BytesIO(b"".join(frames))))
        assert len(decoded) == len(frames)

    def test_split_report_frames_preserves_bytes(self, dataset):
        protocol = build("InpEM")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        assert list(split_report_frames(b"".join(frames))) == frames

    def test_decode_reports_rejects_trailing_data(self, dataset):
        protocol = build("InpHT")
        frame = encode_frames(protocol, dataset, None)[0]
        with pytest.raises(WireFormatError, match="trailing"):
            decode_reports(frame + b"\x00")

    def test_mixed_kind_stream_decodes_per_frame(self, dataset):
        first = build("InpHT")
        second = build("MargHT")
        stream = (
            encode_frames(first, dataset, None)[0]
            + encode_frames(second, dataset, None)[0]
        )
        kinds = [type(batch).__name__ for batch in iter_report_frames(stream)]
        assert kinds == ["InpHTReports", "MargHTReports"]


class TestMalformedBuffers:
    @pytest.fixture()
    def frame(self, dataset):
        protocol = build("InpHT")
        return protocol.encode_batch(
            dataset, rng=np.random.default_rng(7)
        ).to_bytes()

    def test_not_a_frame(self):
        with pytest.raises(WireFormatError, match="magic"):
            decode_reports(b"this is not a report frame at all")

    def test_empty_buffer(self):
        with pytest.raises(WireFormatError, match="truncated"):
            decode_reports(b"")

    def test_truncated_header(self, frame):
        with pytest.raises(WireFormatError, match="truncated"):
            decode_reports(frame[:10])

    def test_truncated_payload(self, frame):
        with pytest.raises(WireFormatError, match="truncated"):
            decode_reports(frame[:-20])

    def test_corrupted_payload(self, frame):
        corrupted = bytearray(frame)
        corrupted[-40] ^= 0xFF
        with pytest.raises(WireFormatError, match="InpHT"):
            decode_reports(bytes(corrupted))

    def test_version_mismatch(self, frame):
        stale = bytearray(frame)
        struct.pack_into("<H", stale, 4, WIRE_FORMAT_VERSION + 7)
        with pytest.raises(WireFormatError, match="version"):
            decode_reports(bytes(stale))

    def test_unknown_kind(self, frame):
        header = struct.pack("<4sHH", b"RPRB", WIRE_FORMAT_VERSION, 5)
        payload = frame[struct.calcsize("<4sHH") + 5 :]
        with pytest.raises(WireFormatError, match="unknown report kind"):
            decode_reports(header + b"NoSuc" + payload)

    def test_wrong_kind_for_protocol(self, frame, dataset):
        other = build("MargPS")
        with pytest.raises(WireFormatError, match="expected 'MargPS'"):
            other.decode_reports(frame)

    def test_wrong_kind_for_class(self, frame):
        with pytest.raises(WireFormatError, match="expected 'InpRR'"):
            InpRRReports.from_bytes(frame)

    def test_missing_field_rejected(self):
        schema = report_schema_for("InpHT")
        buffer = io.BytesIO()
        np.savez(buffer, choices=np.zeros(3, dtype=np.int64))
        payload = buffer.getvalue()
        frame = (
            struct.pack("<4sHH", b"RPRB", WIRE_FORMAT_VERSION, len(b"InpHT"))
            + b"InpHT"
            + struct.pack("<Q", len(payload))
            + payload
        )
        assert schema.kind == "InpHT"
        with pytest.raises(WireFormatError, match="missing"):
            decode_reports(frame)

    def test_wrong_dtype_rejected(self):
        buffer = io.BytesIO()
        np.savez(
            buffer,
            choices=np.zeros(3, dtype=np.float64),  # schema wants int64
            noisy_values=np.ones(3, dtype=np.float64),
        )
        payload = buffer.getvalue()
        frame = (
            struct.pack("<4sHH", b"RPRB", WIRE_FORMAT_VERSION, len(b"InpHT"))
            + b"InpHT"
            + struct.pack("<Q", len(payload))
            + payload
        )
        with pytest.raises(WireFormatError, match="dtype"):
            decode_reports(frame)

    def test_per_user_row_mismatch_rejected(self):
        buffer = io.BytesIO()
        np.savez(
            buffer,
            choices=np.zeros(3, dtype=np.int64),
            noisy_values=np.ones(4, dtype=np.float64),
        )
        payload = buffer.getvalue()
        frame = (
            struct.pack("<4sHH", b"RPRB", WIRE_FORMAT_VERSION, len(b"InpHT"))
            + b"InpHT"
            + struct.pack("<Q", len(payload))
            + payload
        )
        with pytest.raises(WireFormatError, match="disagree on the batch"):
            decode_reports(frame)

    def test_encode_rejects_wrong_dtype(self):
        bad = InpHTReports(
            choices=np.zeros(3, dtype=np.int32),
            noisy_values=np.ones(3, dtype=np.float64),
        )
        with pytest.raises(WireFormatError, match="dtype"):
            bad.to_bytes()

    def test_unregistered_class_rejected(self):
        class Unregistered:
            pass

        with pytest.raises(WireFormatError, match="not registered"):
            encode_reports(Unregistered())

    def test_non_utf8_kind_rejected(self, frame):
        mangled = bytearray(frame)
        mangled[8] = 0xFF  # first kind byte -> invalid UTF-8 continuation
        with pytest.raises(WireFormatError, match="UTF-8"):
            decode_reports(bytes(mangled))

    def test_split_rejects_non_utf8_kind(self, frame):
        from repro.service import split_report_frames

        mangled = bytearray(frame)
        mangled[8] = 0xFF
        with pytest.raises(WireFormatError, match="UTF-8"):
            list(split_report_frames(bytes(mangled)))

    def test_split_rejects_bad_magic_mid_stream(self, frame):
        with pytest.raises(WireFormatError, match="magic"):
            list(split_report_frames(frame + b"garbage-between-frames" + frame))


class TestIncrementalStreamReading:
    def test_stream_frames_read_one_at_a_time(self, dataset):
        """The stream path never slurps the whole source: after the first
        frame is yielded, only that frame's bytes have been consumed."""
        protocol = build("InpPS")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        stream = io.BytesIO(b"".join(frames))
        iterator = split_report_frames(stream)
        first = next(iterator)
        assert first == frames[0]
        assert stream.tell() == len(frames[0])
        assert list(iterator) == frames[1:]

    def test_stream_with_partial_reads(self, dataset):
        """Sockets and pipes may return short reads; _read_exact loops."""

        class TricklingStream:
            def __init__(self, data):
                self._stream = io.BytesIO(data)

            def read(self, size=-1):
                return self._stream.read(min(size, 7) if size > 0 else size)

        protocol = build("InpHT")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        recovered = list(split_report_frames(TricklingStream(b"".join(frames))))
        assert recovered == frames

    def test_truncated_stream_raises(self, dataset):
        protocol = build("InpHT")
        frame = encode_frames(protocol, dataset, None)[0]
        with pytest.raises(WireFormatError, match="truncated"):
            list(split_report_frames(io.BytesIO(frame[:-9])))

    def test_stream_with_bad_magic_raises_before_reading_lengths(self):
        with pytest.raises(WireFormatError, match="magic"):
            list(split_report_frames(io.BytesIO(b"XXXXXXXXXXXXXXXXXX")))

    def test_forged_payload_length_rejected_without_slurping(self, dataset):
        """A corrupted u64 length field must error out instead of buffering
        the remaining stream (or allocating the declared size)."""
        import struct as struct_module

        from repro.protocols.wire import MAX_PAYLOAD_BYTES

        protocol = build("InpHT")
        frame = bytearray(encode_frames(protocol, dataset, None)[0])
        length_offset = struct_module.calcsize("<4sHH") + len(b"InpHT")
        struct_module.pack_into("<Q", frame, length_offset, MAX_PAYLOAD_BYTES + 1)

        class ExplodingTail(io.BytesIO):
            """Fails the test if the reader tries to read past the header."""

            def __init__(self, data, fence):
                super().__init__(data)
                self._fence = fence

            def read(self, size=-1):
                assert self.tell() < self._fence or size <= 0 or size < 2**20, (
                    "reader requested a giant payload read"
                )
                return super().read(size)

        fence = length_offset + 8
        with pytest.raises(WireFormatError, match="frame limit"):
            list(split_report_frames(ExplodingTail(bytes(frame), fence)))
        with pytest.raises(WireFormatError, match="frame limit"):
            decode_reports(bytes(frame))
