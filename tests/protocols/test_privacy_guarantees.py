"""Empirical checks that the per-user reports respect the LDP guarantee.

LDP is a property of the local randomiser's output distribution.  These tests
drive each protocol's *client-side* mechanism with two adjacent inputs many
times and check that the empirical probability ratio of any observed report
(or report component) stays within e^eps (plus sampling slack).  They are not
proofs, but they catch the classic implementation mistakes (wrong probability
constant, forgetting to halve the budget for parallel RR, ...).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.privacy import PrivacyBudget
from repro.mechanisms.direct_encoding import DirectEncoding
from repro.mechanisms.randomized_response import SignRandomizedResponse
from repro.mechanisms.unary_encoding import UnaryEncoding

EPSILON = 1.0
BUDGET = PrivacyBudget(EPSILON)
TRIALS = 120_000
SLACK = 1.12  # allowance for Monte Carlo noise


def empirical_ratio(counts_a: np.ndarray, counts_b: np.ndarray) -> float:
    """Largest ratio of outcome probabilities between two report samples."""
    fractions_a = counts_a / counts_a.sum()
    fractions_b = counts_b / counts_b.sum()
    mask = (fractions_a > 5e-4) & (fractions_b > 5e-4)
    return float(np.max(fractions_a[mask] / fractions_b[mask]))


class TestDirectEncodingLDP:
    def test_report_distribution_ratio(self, rng):
        mechanism = DirectEncoding.from_budget(BUDGET, 16)
        reports_a = mechanism.perturb(np.zeros(TRIALS, dtype=int), rng=rng)
        reports_b = mechanism.perturb(np.full(TRIALS, 7), rng=rng)
        counts_a = np.bincount(reports_a, minlength=16).astype(float)
        counts_b = np.bincount(reports_b, minlength=16).astype(float)
        assert empirical_ratio(counts_a, counts_b) <= math.exp(EPSILON) * SLACK


class TestSignRRLDP:
    def test_report_distribution_ratio(self, rng):
        mechanism = SignRandomizedResponse.from_budget(BUDGET)
        reports_a = mechanism.perturb(np.ones(TRIALS), rng=rng)
        reports_b = mechanism.perturb(-np.ones(TRIALS), rng=rng)
        counts_a = np.array([(reports_a == 1).sum(), (reports_a == -1).sum()], dtype=float)
        counts_b = np.array([(reports_b == 1).sum(), (reports_b == -1).sum()], dtype=float)
        assert empirical_ratio(counts_a, counts_b) <= math.exp(EPSILON) * SLACK


class TestUnaryEncodingLDP:
    def test_symmetric_variant_per_position_ratio(self, rng):
        """For the symmetric (eps/2 per bit) variant, each of the two positions
        where adjacent one-hot inputs differ contributes at most e^{eps/2}."""
        mechanism = UnaryEncoding.from_budget(BUDGET, optimized=False)
        m = 8
        reports_a = mechanism.perturb_onehot_indices(
            np.zeros(TRIALS, dtype=int), m, rng=rng
        )
        reports_b = mechanism.perturb_onehot_indices(
            np.full(TRIALS, 3), m, rng=rng
        )
        worst = 1.0
        # Only positions 0 and 3 differ between the adjacent inputs, so only
        # they contribute to the likelihood ratio; both output values count.
        for position in (0, 3):
            for value in (0, 1):
                p_a = max((reports_a[:, position] == value).mean(), 1e-6)
                p_b = max((reports_b[:, position] == value).mean(), 1e-6)
                ratio = max(p_a / p_b, p_b / p_a)
                worst = max(worst, ratio)
        assert worst <= math.exp(EPSILON / 2) * SLACK

    @pytest.mark.parametrize("optimized", [True, False])
    def test_product_of_two_positions_within_budget(self, rng, optimized):
        """The full likelihood ratio factorises over the two differing
        positions and must stay within e^eps for both probability variants
        (for OUE the split is asymmetric, so only the product is bounded)."""
        mechanism = UnaryEncoding.from_budget(BUDGET, optimized=optimized)
        m = 4
        reports_a = mechanism.perturb_onehot_indices(
            np.zeros(TRIALS, dtype=int), m, rng=rng
        )
        reports_b = mechanism.perturb_onehot_indices(
            np.ones(TRIALS, dtype=int), m, rng=rng
        )
        # Likelihood ratio of the most distinguishing outcome (1 at position 0,
        # 0 at position 1) factorises over the two differing positions.
        p_a = max((reports_a[:, 0] == 1).mean(), 1e-6) * max(
            (reports_a[:, 1] == 0).mean(), 1e-6
        )
        p_b = max((reports_b[:, 0] == 1).mean(), 1e-6) * max(
            (reports_b[:, 1] == 0).mean(), 1e-6
        )
        assert max(p_a / p_b, p_b / p_a) <= math.exp(EPSILON) * SLACK


class TestBudgetSplittingLDP:
    def test_per_attribute_rr_uses_split_budget(self, rng):
        from repro.protocols.inp_em import InpEM

        d = 5
        protocol = InpEM(PrivacyBudget(EPSILON), max_width=2)
        mechanism = protocol.per_attribute_mechanism(d)
        assert mechanism.epsilon == pytest.approx(EPSILON / d)
        # Empirically, flipping one attribute changes each bit's report
        # distribution by at most e^{eps/d}.
        bits_a = mechanism.perturb(np.zeros(TRIALS, dtype=np.int8), rng=rng)
        bits_b = mechanism.perturb(np.ones(TRIALS, dtype=np.int8), rng=rng)
        p_a = (bits_a == 1).mean()
        p_b = (bits_b == 1).mean()
        assert max(p_a / p_b, p_b / p_a) <= math.exp(EPSILON / d) * SLACK
