"""Unit tests for the protocol/estimator base classes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.core.exceptions import (
    AggregationError,
    MarginalQueryError,
    ProtocolConfigurationError,
)
from repro.core.hadamard import scaled_coefficients
from repro.core.marginals import MarginalWorkload, marginal_operator
from repro.core.privacy import PrivacyBudget
from repro.protocols.base import (
    CoefficientEstimator,
    DistributionEstimator,
    PerMarginalEstimator,
)
from repro.protocols.inp_ht import InpHT


@pytest.fixture
def domain() -> Domain:
    return Domain(["a", "b", "c", "d"])


@pytest.fixture
def workload(domain) -> MarginalWorkload:
    return MarginalWorkload(domain, 2)


@pytest.fixture
def distribution(rng) -> np.ndarray:
    values = rng.random(16)
    return values / values.sum()


class TestDistributionEstimator:
    def test_query_matches_marginal_operator(self, workload, domain, distribution):
        estimator = DistributionEstimator(workload, distribution)
        for beta in (0b0011, 0b1000, 0b0101):
            expected = marginal_operator(distribution, beta, domain).values
            np.testing.assert_allclose(estimator.query(beta).values, expected)

    def test_query_by_names(self, workload, distribution):
        estimator = DistributionEstimator(workload, distribution)
        assert estimator.query(["a", "c"]).attribute_names == ["a", "c"]

    def test_rejects_out_of_workload_queries(self, workload, distribution):
        estimator = DistributionEstimator(workload, distribution)
        with pytest.raises(MarginalQueryError):
            estimator.query(0b0111)  # width 3 > workload width 2
        with pytest.raises(MarginalQueryError):
            estimator.query(0)

    def test_rejects_wrong_distribution_length(self, workload):
        with pytest.raises(AggregationError):
            DistributionEstimator(workload, np.ones(8))

    def test_query_all(self, workload, distribution):
        estimator = DistributionEstimator(workload, distribution)
        all_tables = estimator.query_all()
        assert len(all_tables) == 4 + 6
        only_pairs = estimator.query_all(width=2)
        assert len(only_pairs) == 6


class TestCoefficientEstimator:
    def test_exact_coefficients_reproduce_marginals(self, workload, domain, distribution):
        coefficients = scaled_coefficients(distribution)
        mapping = {alpha: coefficients[alpha] for alpha in range(16)}
        estimator = CoefficientEstimator(workload, mapping)
        for beta in (0b0011, 0b1010, 0b0100):
            expected = marginal_operator(distribution, beta, domain).values
            np.testing.assert_allclose(
                estimator.query(beta).values, expected, atol=1e-10
            )

    def test_constant_coefficient_defaults_to_one(self, workload):
        estimator = CoefficientEstimator(workload, {1: 0.5})
        assert estimator.coefficient(0) == 1.0

    def test_missing_coefficient_raises(self, workload):
        estimator = CoefficientEstimator(workload, {1: 0.5, 2: 0.1, 3: 0.0})
        with pytest.raises(MarginalQueryError):
            estimator.query(0b1100)


class TestPerMarginalEstimator:
    def test_direct_and_derived_queries(self, workload, domain, distribution):
        tables = {
            beta: marginal_operator(distribution, beta, domain).values
            for beta in domain.all_marginals(2)
        }
        estimator = PerMarginalEstimator(workload, tables)
        # Width-2 queries are answered directly.
        np.testing.assert_allclose(
            estimator.query(0b0011).values, tables[0b0011]
        )
        # Width-1 queries are derived by averaging superset marginalisations
        # and must agree with the exact answer because inputs are exact.
        expected = marginal_operator(distribution, 0b0001, domain).values
        np.testing.assert_allclose(
            estimator.query(0b0001).values, expected, atol=1e-12
        )

    def test_rejects_mixed_widths(self, workload, domain, distribution):
        tables = {
            0b0011: marginal_operator(distribution, 0b0011, domain).values,
            0b0100: marginal_operator(distribution, 0b0100, domain).values,
        }
        with pytest.raises(AggregationError):
            PerMarginalEstimator(workload, tables)

    def test_rejects_empty(self, workload):
        with pytest.raises(AggregationError):
            PerMarginalEstimator(workload, {})

    def test_rejects_wrong_cell_count(self, workload):
        with pytest.raises(AggregationError):
            PerMarginalEstimator(workload, {0b0011: np.ones(8)})

    def test_table_width_property(self, workload, domain, distribution):
        tables = {
            beta: marginal_operator(distribution, beta, domain).values
            for beta in domain.all_marginals(2)
        }
        assert PerMarginalEstimator(workload, tables).table_width == 2


class TestProtocolValidation:
    def test_budget_coercion_from_float(self):
        protocol = InpHT(1.0, 2)
        assert isinstance(protocol.budget, PrivacyBudget)
        assert protocol.epsilon == pytest.approx(1.0)

    def test_rejects_bad_width(self):
        with pytest.raises(ProtocolConfigurationError):
            InpHT(PrivacyBudget(1.0), 0)

    def test_workload_for_checks_dimension(self, domain):
        protocol = InpHT(PrivacyBudget(1.0), 6)
        with pytest.raises(ProtocolConfigurationError):
            protocol.workload_for(domain)


class TestAccumulatorRepr:
    """Accumulators print their protocol, workload shape and report count
    instead of a bare object address (useful in logs and test failures)."""

    def test_repr_names_protocol_and_counts(self, domain):
        from repro.protocols.registry import available_protocols, make_protocol

        for name in available_protocols():
            options = {"num_hashes": 3, "width": 32} if name == "InpHTCMS" else {}
            accumulator = make_protocol(name, 1.0, 2, **options).accumulator(domain)
            text = repr(accumulator)
            assert f"protocol={name!r}" in text
            assert "d=4" in text
            assert "k=2" in text
            assert "num_reports=0" in text

    def test_repr_tracks_updates(self, domain, rng):
        protocol = InpHT(PrivacyBudget(1.0), 2)
        accumulator = protocol.accumulator(domain)
        records = rng.integers(0, 2, size=(25, 4)).astype(np.int8)
        accumulator.update(protocol.encode_batch(records, rng=rng))
        assert "num_reports=25" in repr(accumulator)
