"""Unit tests for the protocol registry."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ProtocolConfigurationError
from repro.core.privacy import PrivacyBudget
from repro.protocols.registry import (
    BASELINE_PROTOCOL_NAMES,
    CORE_PROTOCOL_NAMES,
    DISCOVERY_PROTOCOL_NAMES,
    PROTOCOL_CLASSES,
    available_protocols,
    make_protocol,
)


class TestRegistry:
    def test_all_ten_protocols_registered(self):
        assert len(PROTOCOL_CLASSES) == 10
        assert (
            set(CORE_PROTOCOL_NAMES)
            | set(BASELINE_PROTOCOL_NAMES)
            | set(DISCOVERY_PROTOCOL_NAMES)
        ) == set(PROTOCOL_CLASSES)

    def test_discovery_names(self):
        assert DISCOVERY_PROTOCOL_NAMES == ["HH"]

    def test_core_names_match_paper(self):
        assert CORE_PROTOCOL_NAMES == [
            "InpRR",
            "InpPS",
            "InpHT",
            "MargRR",
            "MargPS",
            "MargHT",
        ]

    def test_available_protocols_sorted(self):
        names = available_protocols()
        assert names == sorted(names)
        assert "InpHT" in names

    def test_class_names_agree_with_keys(self):
        for name, cls in PROTOCOL_CLASSES.items():
            assert cls.name == name


class TestFactory:
    def test_make_protocol_with_budget_object(self):
        protocol = make_protocol("InpHT", PrivacyBudget(1.2), 2)
        assert protocol.name == "InpHT"
        assert protocol.epsilon == pytest.approx(1.2)
        assert protocol.max_width == 2

    def test_make_protocol_with_float_budget(self):
        protocol = make_protocol("MargPS", 0.8, 3)
        assert protocol.epsilon == pytest.approx(0.8)

    def test_make_protocol_forwards_options(self):
        protocol = make_protocol(
            "InpRR", 1.0, 2, optimized_probabilities=False
        )
        assert not protocol.optimized_probabilities
        sketch_protocol = make_protocol("InpHTCMS", 1.0, 2, width=64)
        assert sketch_protocol.oracle(6).width == 64

    def test_unknown_protocol_raises(self):
        with pytest.raises(ProtocolConfigurationError):
            make_protocol("InpMagic", 1.0, 2)

    def test_every_registered_protocol_constructible(self):
        for name in available_protocols():
            protocol = make_protocol(name, 1.0, 2)
            assert protocol.communication_bits(8) > 0


class TestUnknownOptions:
    """Unknown constructor options surface as ProtocolConfigurationError
    naming the protocol and the bad key (not a raw TypeError)."""

    def test_unknown_option_raises_configuration_error(self):
        with pytest.raises(ProtocolConfigurationError) as excinfo:
            make_protocol("InpHT", 1.0, 2, bogus_knob=1)
        message = str(excinfo.value)
        assert "InpHT" in message
        assert "bogus_knob" in message

    def test_unknown_option_lists_the_valid_ones(self):
        with pytest.raises(ProtocolConfigurationError) as excinfo:
            make_protocol("InpHTCMS", 1.0, 2, depth=5)
        message = str(excinfo.value)
        assert "num_hashes" in message and "width" in message

    def test_no_raw_type_error_escapes(self):
        for name in available_protocols():
            with pytest.raises(ProtocolConfigurationError):
                make_protocol(name, 1.0, 2, definitely_not_an_option=True)

    def test_known_options_still_pass_through(self):
        protocol = make_protocol("InpEM", 1.0, 2, max_iterations=50)
        assert protocol.spec_options()["max_iterations"] == 50
