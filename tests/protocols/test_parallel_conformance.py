"""Protocol-conformance matrix for the parallel execution backends.

The determinism contract of the executor subsystem is that for a fixed seed
and batch size the finalized estimates depend on *nothing else*: not the
backend, not the worker count, not the shard count.  This suite pins that
contract as a full matrix — every registered protocol x every executor
backend x worker counts {1, 2, 4} — asserting bit-for-bit equality against
the serial single-shard baseline (the same check the PR-1 mergeability
property tests make for in-process sharding, extended to real parallelism).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.privacy import PrivacyBudget
from repro.datasets import BinaryDataset
from repro.execution import available_executors, make_executor
from repro.protocols.registry import PROTOCOL_CLASSES, make_protocol

LN3 = float(np.log(3.0))

#: Smaller sketch so the InpHTCMS cases stay fast at test scale.
PROTOCOL_OPTIONS = {"InpHTCMS": {"num_hashes": 3, "width": 32}}

ALL_PROTOCOLS = sorted(PROTOCOL_CLASSES)
WORKER_COUNTS = (1, 2, 4)

SEED = 20180610
BATCH_SIZE = 100  # 600 records -> 6 batches, so 4 shards all receive work
SHARDS = 4


def build(name: str):
    options = PROTOCOL_OPTIONS.get(name, {})
    return make_protocol(name, PrivacyBudget(LN3), 2, **options)


@pytest.fixture(scope="module")
def dataset() -> BinaryDataset:
    rng = np.random.default_rng(97)
    marginal_probs = rng.random(4) * 0.6 + 0.2
    records = (rng.random((600, 4)) < marginal_probs).astype(np.int8)
    return BinaryDataset.from_records(records)


@pytest.fixture(scope="module")
def baselines(dataset):
    """Serial single-shard estimates per protocol: the reference each
    parallel configuration must reproduce exactly."""
    tables = {}
    for name in ALL_PROTOCOLS:
        estimator = build(name).run_streaming(
            dataset,
            rng=np.random.default_rng(SEED),
            batch_size=BATCH_SIZE,
            shards=1,
        )
        tables[name] = {
            beta: table.values for beta, table in estimator.query_all().items()
        }
    return tables


@pytest.fixture(scope="module")
def executors():
    """One executor per (backend, workers) cell, shared across protocols so
    the process pools are forked once, not once per test."""
    cache = {}
    yield lambda name, workers: cache.setdefault(
        (name, workers), make_executor(name, workers)
    )
    for executor in cache.values():
        executor.close()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("executor_name", sorted(available_executors()))
@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_parallel_estimates_match_serial_baseline(
    name, executor_name, workers, dataset, baselines, executors
):
    estimator = build(name).run_streaming(
        dataset,
        rng=np.random.default_rng(SEED),
        batch_size=BATCH_SIZE,
        shards=SHARDS,
        executor=executors(executor_name, workers),
    )
    observed = {
        beta: table.values for beta, table in estimator.query_all().items()
    }
    expected = baselines[name]
    assert observed.keys() == expected.keys()
    for beta in expected:
        np.testing.assert_array_equal(observed[beta], expected[beta])
    assert estimator.metadata["executor"] == executor_name
    assert estimator.metadata["workers"] == workers
    assert estimator.metadata["effective_shards"] == SHARDS


@pytest.mark.parametrize("executor_name", sorted(available_executors()))
def test_worker_count_is_invisible_in_estimates(executor_name, dataset, executors):
    """Same backend, different worker counts -> identical estimates."""
    protocol = build("InpHT")
    results = []
    for workers in WORKER_COUNTS:
        estimator = protocol.run_streaming(
            dataset,
            rng=np.random.default_rng(11),
            batch_size=BATCH_SIZE,
            shards=SHARDS,
            executor=executors(executor_name, workers),
        )
        results.append(
            {beta: t.values for beta, t in estimator.query_all().items()}
        )
    first = results[0]
    for other in results[1:]:
        for beta in first:
            np.testing.assert_array_equal(first[beta], other[beta])
