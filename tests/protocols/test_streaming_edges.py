"""Regression tests for run_streaming edge cases and pipeline metadata.

PR 1's driver silently ignored ``shards`` greater than the number of
batches; the executor refactor makes the clamp observable — the effective
shard count lands in the estimator's metadata and a DEBUG log line — and
this module pins that, together with the other boundary shapes: a batch
size larger than the dataset, empty report batches, and empty datasets.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.core.exceptions import AggregationError, DatasetError
from repro.core.privacy import PrivacyBudget
from repro.datasets import BinaryDataset
from repro.protocols.registry import PROTOCOL_CLASSES, make_protocol

LN3 = float(np.log(3.0))

#: Smaller sketch so the InpHTCMS cases stay fast at test scale.
PROTOCOL_OPTIONS = {"InpHTCMS": {"num_hashes": 3, "width": 32}}

ALL_PROTOCOLS = sorted(PROTOCOL_CLASSES)


def build(name: str):
    options = PROTOCOL_OPTIONS.get(name, {})
    return make_protocol(name, PrivacyBudget(LN3), 2, **options)


@pytest.fixture
def dataset(rng) -> BinaryDataset:
    records = (rng.random((120, 4)) < 0.5).astype(np.int8)
    return BinaryDataset.from_records(records)


class TestShardClamping:
    def test_metadata_reports_effective_shard_count(self, dataset):
        estimator = build("InpHT").run_streaming(
            dataset, rng=np.random.default_rng(3), batch_size=40, shards=8
        )
        assert estimator.metadata["requested_shards"] == 8
        assert estimator.metadata["effective_shards"] == 3
        assert estimator.metadata["num_batches"] == 3
        assert estimator.metadata["batch_size"] == 40

    def test_clamp_is_logged_at_debug_level(self, dataset, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.protocols.base"):
            build("InpPS").run_streaming(
                dataset, rng=np.random.default_rng(3), batch_size=40, shards=8
            )
        assert any(
            "clamping 8 shards" in record.message for record in caplog.records
        )

    def test_no_clamp_no_log(self, dataset, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.protocols.base"):
            estimator = build("InpPS").run_streaming(
                dataset, rng=np.random.default_rng(3), batch_size=40, shards=3
            )
        assert estimator.metadata["effective_shards"] == 3
        assert not any(
            "clamping" in record.message for record in caplog.records
        )

    def test_clamped_run_equals_exact_shard_run(self, dataset):
        """Requesting more shards than batches changes nothing but metadata."""
        protocol = build("MargPS")
        exact = protocol.run_streaming(
            dataset, rng=np.random.default_rng(9), batch_size=40, shards=3
        )
        clamped = protocol.run_streaming(
            dataset, rng=np.random.default_rng(9), batch_size=40, shards=64
        )
        for beta, table in exact.query_all().items():
            np.testing.assert_array_equal(
                table.values, clamped.query(beta).values
            )


class TestBatchSizeLargerThanDataset:
    def test_single_batch_metadata(self, dataset):
        estimator = build("InpHT").run_streaming(
            dataset, rng=np.random.default_rng(5), batch_size=10_000, shards=4
        )
        assert estimator.metadata["num_batches"] == 1
        assert estimator.metadata["effective_shards"] == 1

    def test_equals_one_shot_run(self, dataset):
        """One oversize batch must reproduce run() exactly (same generator)."""
        protocol = build("MargHT")
        one_shot = protocol.run(dataset, rng=np.random.default_rng(7))
        oversize = protocol.run_streaming(
            dataset, rng=np.random.default_rng(7), batch_size=10_000
        )
        for beta, table in one_shot.query_all().items():
            np.testing.assert_array_equal(
                table.values, oversize.query(beta).values
            )


class TestEmptyInputs:
    def test_empty_dataset_is_rejected_at_construction(self):
        with pytest.raises(DatasetError, match="at least one record"):
            BinaryDataset.from_records(np.zeros((0, 4), dtype=np.int8))

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_empty_report_batch_is_a_no_op(self, name, dataset):
        """Encoding zero records works, folds in nothing, finalizes to error."""
        protocol = build(name)
        empty = np.zeros((0, 4), dtype=np.int8)
        reports = protocol.encode_batch(empty, rng=np.random.default_rng(1))
        assert reports.num_users == 0
        accumulator = protocol.accumulator(dataset.domain).update(reports)
        assert accumulator.num_reports == 0
        with pytest.raises(AggregationError, match="no reports"):
            accumulator.finalize()

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_empty_batch_then_data_matches_data_alone(self, name, dataset):
        """An interleaved empty batch must not disturb the aggregation."""
        protocol = build(name)
        empty = np.zeros((0, 4), dtype=np.int8)
        with_empty = protocol.accumulator(dataset.domain)
        with_empty.update(protocol.encode_batch(empty, rng=np.random.default_rng(2)))
        with_empty.update(protocol.encode_batch(dataset.records, rng=np.random.default_rng(3)))
        data_only = protocol.accumulator(dataset.domain).update(
            protocol.encode_batch(dataset.records, rng=np.random.default_rng(3))
        )
        for beta, table in data_only.finalize().query_all().items():
            np.testing.assert_array_equal(
                table.values, with_empty.finalize().query(beta).values
            )


class TestRunMetadata:
    def test_run_records_single_batch_serial_pipeline(self, dataset):
        estimator = build("InpRR").run(dataset, rng=np.random.default_rng(1))
        assert estimator.metadata["num_batches"] == 1
        assert estimator.metadata["executor"] == "serial"
        assert estimator.metadata["protocol"] == "InpRR"

    def test_hand_driven_accumulator_has_empty_metadata(self, dataset):
        protocol = build("InpRR")
        estimator = (
            protocol.accumulator(dataset.domain)
            .update(protocol.encode_batch(dataset.records, rng=np.random.default_rng(1)))
            .finalize()
        )
        assert estimator.metadata == {}
