"""Unit tests for the input-perturbation protocols (InpRR, InpPS, InpHT)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.privacy import PrivacyBudget
from repro.datasets.synthetic import independent_dataset
from repro.experiments.metrics import mean_total_variation
from repro.protocols.base import CoefficientEstimator, DistributionEstimator
from repro.protocols.inp_ht import InpHT
from repro.protocols.inp_ps import InpPS
from repro.protocols.inp_rr import InpRR

HIGH_BUDGET = PrivacyBudget(8.0)


@pytest.fixture
def dataset(rng):
    """Six correlated-free attributes with varied biases."""
    return independent_dataset(
        30_000, [0.7, 0.5, 0.3, 0.2, 0.6, 0.4], rng=rng
    )


class TestInpRR:
    def test_estimator_type_and_workload(self, dataset, budget, rng):
        estimator = InpRR(budget, 2).run(dataset, rng=rng)
        assert isinstance(estimator, DistributionEstimator)
        assert estimator.workload.max_width == 2

    def test_high_budget_recovers_marginals(self, dataset, rng):
        estimator = InpRR(HIGH_BUDGET, 2).run(dataset, rng=rng)
        error = mean_total_variation(dataset, estimator, widths=[1, 2])
        assert error < 0.03

    def test_distribution_sums_to_roughly_one(self, dataset, budget, rng):
        estimator = InpRR(budget, 2).run(dataset, rng=rng)
        assert estimator.distribution.sum() == pytest.approx(1.0, abs=0.3)

    def test_communication_cost(self, budget):
        assert InpRR(budget, 2).communication_bits(8) == 256
        assert InpRR(budget, 3).communication_bits(4) == 16

    def test_vanilla_probabilities_also_work(self, dataset, rng):
        protocol = InpRR(HIGH_BUDGET, 2, optimized_probabilities=False)
        assert not protocol.optimized_probabilities
        estimator = protocol.run(dataset, rng=rng)
        assert mean_total_variation(dataset, estimator, widths=[2]) < 0.05

    def test_mechanism_epsilon_matches_budget(self, budget):
        assert InpRR(budget, 2).mechanism().epsilon == pytest.approx(budget.epsilon)


class TestInpPS:
    def test_estimator_type(self, dataset, budget, rng):
        estimator = InpPS(budget, 2).run(dataset, rng=rng)
        assert isinstance(estimator, DistributionEstimator)

    def test_high_budget_recovers_marginals(self, dataset, rng):
        estimator = InpPS(HIGH_BUDGET, 2).run(dataset, rng=rng)
        assert mean_total_variation(dataset, estimator, widths=[1, 2]) < 0.05

    def test_communication_cost(self, budget):
        assert InpPS(budget, 2).communication_bits(10) == 10

    def test_mechanism_domain_size(self, budget):
        assert InpPS(budget, 2).mechanism(6).domain_size == 64

    def test_degrades_for_large_d_at_small_budget(self, rng):
        """InpPS collapses when 2^d dwarfs e^eps (the paper's observation)."""
        wide = independent_dataset(8000, [0.5] * 12, rng=rng)
        narrow = independent_dataset(8000, [0.5] * 4, rng=rng)
        budget = PrivacyBudget(math.log(3))
        error_wide = mean_total_variation(
            wide, InpPS(budget, 2).run(wide, rng=rng), widths=[2]
        )
        error_narrow = mean_total_variation(
            narrow, InpPS(budget, 2).run(narrow, rng=rng), widths=[2]
        )
        assert error_wide > error_narrow


class TestInpHT:
    def test_estimator_type_and_coefficients(self, dataset, budget, rng):
        protocol = InpHT(budget, 2)
        estimator = protocol.run(dataset, rng=rng)
        assert isinstance(estimator, CoefficientEstimator)
        # The coefficient set excludes 0 but the estimator knows Theta_0 = 1.
        assert estimator.coefficient(0) == 1.0
        expected_size = 6 + 15  # C(6,1) + C(6,2)
        assert protocol.coefficient_indices(6).size == expected_size

    def test_high_budget_recovers_marginals(self, dataset, rng):
        estimator = InpHT(HIGH_BUDGET, 2).run(dataset, rng=rng)
        assert mean_total_variation(dataset, estimator, widths=[1, 2]) < 0.05

    def test_moderate_budget_reasonable_error(self, dataset, budget, rng):
        estimator = InpHT(budget, 2).run(dataset, rng=rng)
        assert mean_total_variation(dataset, estimator, widths=[1, 2]) < 0.1

    def test_coefficients_bounded(self, dataset, budget, rng):
        estimator = InpHT(budget, 2).run(dataset, rng=rng)
        values = np.array(list(estimator.coefficients.values()))
        # Unbiased estimates can exceed [-1, 1] slightly but not wildly.
        assert np.abs(values).max() < 3.0

    def test_communication_cost(self, budget):
        assert InpHT(budget, 2).communication_bits(16) == 17

    def test_marginal_values_near_simplex(self, dataset, budget, rng):
        estimator = InpHT(budget, 2).run(dataset, rng=rng)
        table = estimator.query(["attr0", "attr1"])
        assert table.values.sum() == pytest.approx(1.0, abs=0.05)

    def test_unsupported_width_query_rejected(self, dataset, budget, rng):
        estimator = InpHT(budget, 2).run(dataset, rng=rng)
        from repro.core.exceptions import MarginalQueryError

        with pytest.raises(MarginalQueryError):
            estimator.query(["attr0", "attr1", "attr2"])

    def test_more_users_means_lower_error(self, rng):
        budget = PrivacyBudget(math.log(3))
        small = independent_dataset(2000, [0.6] * 6, rng=rng)
        large = independent_dataset(64_000, [0.6] * 6, rng=rng)
        error_small = np.mean(
            [
                mean_total_variation(
                    small, InpHT(budget, 2).run(small, rng=np.random.default_rng(i)), widths=[2]
                )
                for i in range(3)
            ]
        )
        error_large = np.mean(
            [
                mean_total_variation(
                    large, InpHT(budget, 2).run(large, rng=np.random.default_rng(i)), widths=[2]
                )
                for i in range(3)
            ]
        )
        assert error_large < error_small
