"""Unit tests for the frequency-oracle protocols (InpOLH, InpHTCMS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.privacy import PrivacyBudget
from repro.datasets.synthetic import independent_dataset, skewed_dataset
from repro.experiments.metrics import mean_total_variation
from repro.protocols.base import DistributionEstimator
from repro.protocols.inp_htcms import InpHTCMS
from repro.protocols.inp_olh import InpOLH


@pytest.fixture
def dataset(rng):
    return skewed_dataset(20_000, 5, skew=1.2, rng=rng)


class TestInpOLH:
    def test_estimator_type(self, dataset, budget, rng):
        estimator = InpOLH(budget, 2).run(dataset, rng=rng)
        assert isinstance(estimator, DistributionEstimator)

    def test_reasonable_accuracy_small_d(self, dataset, budget, rng):
        estimator = InpOLH(budget, 2).run(dataset, rng=rng)
        assert mean_total_variation(dataset, estimator, widths=[1, 2]) < 0.15

    def test_explicit_bucket_count(self, dataset, budget, rng):
        protocol = InpOLH(budget, 2, num_buckets=8)
        assert protocol.oracle(5).num_buckets == 8
        estimator = protocol.run(dataset, rng=rng)
        assert np.isfinite(estimator.distribution).all()

    def test_communication_includes_hash_seed(self, budget):
        assert InpOLH(budget, 2).communication_bits(8) >= 64


class TestInpHTCMS:
    def test_estimator_type(self, dataset, budget, rng):
        estimator = InpHTCMS(budget, 2, width=64).run(dataset, rng=rng)
        assert isinstance(estimator, DistributionEstimator)

    def test_runs_and_is_finite(self, dataset, budget, rng):
        estimator = InpHTCMS(budget, 2, num_hashes=5, width=128).run(dataset, rng=rng)
        assert np.isfinite(estimator.distribution).all()
        assert estimator.distribution.sum() == pytest.approx(1.0, abs=0.5)

    def test_communication_is_small(self, budget):
        bits = InpHTCMS(budget, 2, num_hashes=5, width=256).communication_bits(16)
        assert bits <= 3 + 8 + 1

    def test_less_accurate_than_olh_on_flat_data(self, budget, rng):
        """The paper's observation: the sketch is tuned for heavy hitters and
        loses to OLH/InpHT on near-uniform marginals."""
        flat = independent_dataset(20_000, [0.5] * 5, rng=rng)
        olh_error = mean_total_variation(
            flat, InpOLH(budget, 2).run(flat, rng=rng), widths=[2]
        )
        cms_error = mean_total_variation(
            flat, InpHTCMS(budget, 2, width=64).run(flat, rng=rng), widths=[2]
        )
        assert olh_error < cms_error * 1.5
