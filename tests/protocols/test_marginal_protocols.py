"""Unit tests for the marginal-perturbation protocols (MargRR, MargPS, MargHT)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.privacy import PrivacyBudget
from repro.datasets.synthetic import independent_dataset, latent_class_dataset
from repro.experiments.metrics import mean_total_variation
from repro.protocols.base import PerMarginalEstimator
from repro.protocols.marg_ht import MargHT
from repro.protocols.marg_ps import MargPS
from repro.protocols.marg_rr import MargRR

HIGH_BUDGET = PrivacyBudget(8.0)
PROTOCOL_CLASSES = (MargRR, MargPS, MargHT)


@pytest.fixture
def dataset(rng):
    """Five attributes with one strongly correlated pair planted."""
    return latent_class_dataset(
        40_000,
        class_probabilities=[0.4, 0.6],
        conditional_probabilities=np.array(
            [[0.9, 0.85, 0.3, 0.5, 0.2], [0.15, 0.2, 0.35, 0.5, 0.25]]
        ),
        rng=rng,
    )


class TestCommonBehaviour:
    @pytest.mark.parametrize("protocol_class", PROTOCOL_CLASSES)
    def test_estimator_type_and_tables(self, protocol_class, dataset, budget, rng):
        estimator = protocol_class(budget, 2).run(dataset, rng=rng)
        assert isinstance(estimator, PerMarginalEstimator)
        assert estimator.table_width == 2
        assert len(estimator.tables) == math.comb(5, 2)

    @pytest.mark.parametrize("protocol_class", PROTOCOL_CLASSES)
    def test_high_budget_recovers_marginals(self, protocol_class, dataset, rng):
        estimator = protocol_class(HIGH_BUDGET, 2).run(dataset, rng=rng)
        assert mean_total_variation(dataset, estimator, widths=[2]) < 0.05

    @pytest.mark.parametrize("protocol_class", PROTOCOL_CLASSES)
    def test_moderate_budget_reasonable(self, protocol_class, dataset, budget, rng):
        estimator = protocol_class(budget, 2).run(dataset, rng=rng)
        assert mean_total_variation(dataset, estimator, widths=[2]) < 0.25

    @pytest.mark.parametrize("protocol_class", PROTOCOL_CLASSES)
    def test_lower_width_queries_supported(self, protocol_class, dataset, budget, rng):
        estimator = protocol_class(budget, 2).run(dataset, rng=rng)
        table = estimator.query(["attr0"])
        assert table.values.shape == (2,)
        assert table.values.sum() == pytest.approx(1.0, abs=0.2)

    @pytest.mark.parametrize("protocol_class", PROTOCOL_CLASSES)
    def test_width_above_table_width_rejected(self, protocol_class, dataset, budget, rng):
        from repro.core.exceptions import MarginalQueryError

        estimator = protocol_class(budget, 2).run(dataset, rng=rng)
        with pytest.raises(MarginalQueryError):
            estimator.query(["attr0", "attr1", "attr2"])


class TestCommunication:
    def test_marg_rr_bits(self, budget):
        assert MargRR(budget, 2).communication_bits(8) == 8 + 4
        assert MargRR(budget, 3).communication_bits(8) == 8 + 8

    def test_marg_ps_bits(self, budget):
        assert MargPS(budget, 2).communication_bits(8) == 10

    def test_marg_ht_bits(self, budget):
        assert MargHT(budget, 2).communication_bits(8) == 11


class TestMechanisms:
    def test_marg_rr_optimized_flag(self, budget):
        assert MargRR(budget, 2).optimized_probabilities
        assert not MargRR(budget, 2, optimized_probabilities=False).optimized_probabilities

    def test_marg_ps_mechanism_domain(self, budget):
        assert MargPS(budget, 3).mechanism().domain_size == 8

    def test_marg_ht_mechanism_budget(self, budget):
        assert MargHT(budget, 2).mechanism().epsilon == pytest.approx(budget.epsilon)


class TestStatisticalBehaviour:
    def test_planted_correlation_preserved(self, dataset, rng):
        # attr0 and attr1 were planted to be strongly positively correlated;
        # a released 2-way marginal should reflect that at a decent budget.
        estimator = MargPS(PrivacyBudget(2.0), 2).run(dataset, rng=rng)
        table = estimator.query(["attr0", "attr1"]).normalized()
        p_both = table.cell({"attr0": 1, "attr1": 1})
        p_first = p_both + table.cell({"attr0": 1, "attr1": 0})
        p_second = p_both + table.cell({"attr0": 0, "attr1": 1})
        assert p_both > p_first * p_second + 0.03

    def test_small_population_falls_back_to_uniform_tables(self, budget, rng):
        # With a handful of users over many marginals, some marginals receive
        # no reports and must fall back to the uniform prior without crashing.
        tiny = independent_dataset(5, [0.5] * 8, rng=rng)
        for protocol_class in PROTOCOL_CLASSES:
            estimator = protocol_class(budget, 2).run(tiny, rng=rng)
            table = estimator.query(["attr6", "attr7"])
            assert np.isfinite(table.values).all()

    def test_marg_ht_tables_match_coefficient_reconstruction(self, dataset, rng):
        # At a very high budget MargHT's reconstructed tables approach the
        # exact marginals, confirming the coefficient-space reconstruction.
        estimator = MargHT(HIGH_BUDGET, 2).run(dataset, rng=rng)
        exact = dataset.marginal(["attr0", "attr2"])
        np.testing.assert_allclose(
            estimator.query(["attr0", "attr2"]).values, exact.values, atol=0.05
        )
