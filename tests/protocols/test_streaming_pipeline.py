"""Unit tests for the streaming pipeline plumbing (batches, accumulators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.core.exceptions import (
    AggregationError,
    DatasetError,
    ProtocolConfigurationError,
)
from repro.core.privacy import PrivacyBudget
from repro.datasets import BinaryDataset
from repro.protocols import InpHT, InpPS, MargPS
from repro.protocols.base import as_record_matrix, record_indices


@pytest.fixture
def dataset(rng) -> BinaryDataset:
    records = (rng.random((100, 4)) < 0.5).astype(np.int8)
    return BinaryDataset.from_records(records)


class TestBatchIteration:
    def test_iter_batches_covers_all_records_in_order(self, dataset):
        chunks = list(dataset.iter_batches(32))
        assert [len(chunk) for chunk in chunks] == [32, 32, 32, 4]
        np.testing.assert_array_equal(np.concatenate(chunks), dataset.records)

    def test_none_batch_size_yields_one_chunk(self, dataset):
        chunks = list(dataset.iter_batches(None))
        assert len(chunks) == 1
        assert chunks[0] is dataset.records

    def test_num_batches(self, dataset):
        assert dataset.num_batches(None) == 1
        assert dataset.num_batches(32) == 4
        assert dataset.num_batches(100) == 1
        assert dataset.num_batches(1) == 100

    def test_rejects_non_positive_batch_size(self, dataset):
        with pytest.raises(DatasetError):
            dataset.num_batches(0)
        with pytest.raises(DatasetError):
            list(dataset.iter_batches(-3))

    def test_batches_are_views(self, dataset):
        chunk = next(dataset.iter_batches(10))
        assert chunk.base is dataset.records


class TestRecordCoercion:
    def test_accepts_dataset_and_array(self, dataset):
        np.testing.assert_array_equal(as_record_matrix(dataset), dataset.records)
        np.testing.assert_array_equal(
            as_record_matrix(dataset.records), dataset.records
        )

    def test_rejects_non_matrix(self):
        with pytest.raises(ProtocolConfigurationError):
            as_record_matrix(np.zeros(4))

    def test_record_indices_match_dataset_indices(self, dataset):
        np.testing.assert_array_equal(
            record_indices(dataset.records), dataset.indices()
        )


class TestAccumulatorContracts:
    def test_update_and_merge_chain(self, dataset, budget, rng):
        protocol = InpPS(budget, 2)
        reports = protocol.encode_batch(dataset, rng=rng)
        accumulator = protocol.accumulator(dataset.domain)
        assert accumulator.update(reports) is accumulator
        other = protocol.accumulator(dataset.domain)
        assert accumulator.merge(other) is accumulator
        assert accumulator.num_reports == dataset.size

    def test_merge_rejects_other_protocol_state(self, dataset, budget):
        left = InpPS(budget, 2).accumulator(dataset.domain)
        right = InpHT(budget, 2).accumulator(dataset.domain)
        with pytest.raises(AggregationError):
            left.merge(right)

    def test_merge_rejects_different_protocol_configurations(self, dataset):
        left = InpPS(PrivacyBudget(0.5), 2).accumulator(dataset.domain)
        right = InpPS(PrivacyBudget(2.0), 2).accumulator(dataset.domain)
        with pytest.raises(AggregationError):
            left.merge(right)

    def test_merge_rejects_different_workloads(self, dataset, budget):
        protocol = MargPS(budget, 2)
        left = protocol.accumulator(dataset.domain)
        right = protocol.accumulator(Domain(["w", "x", "y", "z"]))
        with pytest.raises(AggregationError):
            left.merge(right)

    def test_finalize_without_reports_raises(self, dataset, budget):
        accumulator = InpPS(budget, 2).accumulator(dataset.domain)
        with pytest.raises(AggregationError):
            accumulator.finalize()

    def test_merging_empty_shard_is_a_no_op(self, dataset, budget, rng):
        protocol = InpPS(budget, 2)
        reports = protocol.encode_batch(dataset, rng=rng)
        loaded = protocol.accumulator(dataset.domain).update(reports)
        empty = protocol.accumulator(dataset.domain)
        merged = loaded.merge(empty).finalize()

        direct = (
            protocol.accumulator(dataset.domain).update(reports).finalize()
        )
        for beta in (0b0011, 0b1000):
            np.testing.assert_array_equal(
                merged.query(beta).values, direct.query(beta).values
            )


class TestRunStreaming:
    def test_rejects_bad_shard_count(self, dataset, budget):
        with pytest.raises(ProtocolConfigurationError):
            InpPS(budget, 2).run_streaming(dataset, shards=0)

    def test_more_shards_than_batches(self, dataset, budget):
        protocol = InpPS(budget, 2)
        baseline = protocol.run_streaming(
            dataset, rng=np.random.default_rng(2), batch_size=40, shards=2
        )
        oversharded = protocol.run_streaming(
            dataset, rng=np.random.default_rng(2), batch_size=40, shards=16
        )
        np.testing.assert_array_equal(
            baseline.query(0b0011).values, oversharded.query(0b0011).values
        )

    def test_single_batch_matches_run(self, dataset, budget):
        protocol = InpHT(budget, 2)
        via_run = protocol.run(dataset, rng=np.random.default_rng(9))
        via_stream = protocol.run_streaming(
            dataset, rng=np.random.default_rng(9), batch_size=dataset.size
        )
        np.testing.assert_array_equal(
            via_run.query(0b0011).values, via_stream.query(0b0011).values
        )
