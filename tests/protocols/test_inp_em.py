"""Unit tests for the EM-decoding baseline (InpEM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ProtocolConfigurationError
from repro.core.privacy import PrivacyBudget
from repro.datasets.synthetic import latent_class_dataset
from repro.experiments.metrics import mean_total_variation
from repro.protocols.inp_em import EMEstimator, InpEM


@pytest.fixture
def dataset(rng):
    return latent_class_dataset(
        20_000,
        class_probabilities=[0.5, 0.5],
        conditional_probabilities=np.array(
            [[0.85, 0.8, 0.4, 0.5], [0.2, 0.25, 0.45, 0.5]]
        ),
        rng=rng,
    )


class TestConfiguration:
    def test_defaults(self):
        protocol = InpEM(PrivacyBudget(1.0))
        assert protocol.max_width == 2
        assert protocol.convergence_threshold == pytest.approx(1e-5)

    def test_rejects_bad_threshold_or_iterations(self):
        with pytest.raises(ProtocolConfigurationError):
            InpEM(PrivacyBudget(1.0), convergence_threshold=0)
        with pytest.raises(ProtocolConfigurationError):
            InpEM(PrivacyBudget(1.0), max_iterations=0)

    def test_per_attribute_budget_split(self):
        protocol = InpEM(PrivacyBudget(2.0))
        mechanism = protocol.per_attribute_mechanism(4)
        assert mechanism.epsilon == pytest.approx(0.5)

    def test_communication_bits(self):
        assert InpEM(PrivacyBudget(1.0)).communication_bits(12) == 12


class TestDecoding:
    def test_estimator_type(self, dataset, rng):
        estimator = InpEM(PrivacyBudget(2.0)).run(dataset, rng=rng)
        assert isinstance(estimator, EMEstimator)

    def test_high_budget_recovers_marginal(self, dataset, rng):
        # With a very generous budget the per-attribute RR barely perturbs and
        # EM should converge close to the truth.
        estimator = InpEM(PrivacyBudget(24.0)).run(dataset, rng=rng)
        error = mean_total_variation(dataset, estimator, widths=[2])
        assert error < 0.05

    def test_diagnostics_reported(self, dataset, rng):
        estimator = InpEM(PrivacyBudget(2.0)).run(dataset, rng=rng)
        result = estimator.query_with_diagnostics(["attr0", "attr1"])
        assert result.iterations >= 1
        assert result.table.values.sum() == pytest.approx(1.0, abs=1e-6)
        assert result.table.values.min() >= 0

    def test_output_is_probability_distribution(self, dataset, rng):
        estimator = InpEM(PrivacyBudget(1.0)).run(dataset, rng=rng)
        for beta in (["attr0", "attr1"], ["attr2", "attr3"]):
            values = estimator.query(beta).values
            assert values.min() >= -1e-9
            assert values.sum() == pytest.approx(1.0, abs=1e-6)

    def test_tiny_epsilon_tends_to_fail(self, rng):
        # The paper's Table 3 behaviour: at very small eps the EM loop often
        # stops immediately at the uniform prior; at a generous eps it never
        # should.  (The paper reports 19/66 failures at d=12 and small eps.)
        dataset = latent_class_dataset(
            8192,
            class_probabilities=[0.5, 0.5],
            conditional_probabilities=np.array(
                [[0.8] * 12, [0.2] * 12]
            ),
            rng=rng,
        )
        marginals = dataset.domain.all_marginals(2)

        def failure_count(epsilon: float) -> int:
            protocol = InpEM(PrivacyBudget(epsilon), convergence_threshold=1e-5)
            estimator = protocol.run(dataset, rng=np.random.default_rng(0))
            return sum(
                estimator.query_with_diagnostics(beta).failed for beta in marginals
            )

        tiny_failures = failure_count(0.1)
        generous_failures = failure_count(6.0)
        assert tiny_failures / len(marginals) > 0.1
        assert generous_failures == 0
        assert tiny_failures > generous_failures

    def test_less_noise_means_lower_error(self, dataset, rng):
        noisy = InpEM(PrivacyBudget(0.5)).run(dataset, rng=np.random.default_rng(1))
        clean = InpEM(PrivacyBudget(8.0)).run(dataset, rng=np.random.default_rng(1))
        error_noisy = mean_total_variation(dataset, noisy, widths=[2])
        error_clean = mean_total_variation(dataset, clean, widths=[2])
        assert error_clean < error_noisy
