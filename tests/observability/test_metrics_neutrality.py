"""Instrumentation neutrality: estimates are bit-for-bit metrics-on/off.

The observability layer promises to never touch an rng chain or reorder
any arithmetic.  The strongest check available: for every registered
protocol, run the identical seeded encode → aggregate → finalize pass
once with metrics enabled and once disabled, and require exactly equal
estimate tables — not approximately equal, byte-for-byte equal.
"""

from __future__ import annotations

import pytest

from repro.observability import metrics_enabled, set_enabled
from repro.service import AggregationSession

from ..service.util import (
    ALL_PROTOCOLS,
    SEED,
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)

BATCH_SIZE = 24


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


def collect(name, dataset, enabled):
    """Seeded client encode + server-side session fold, one arm."""
    was_enabled = metrics_enabled()
    set_enabled(enabled)
    try:
        protocol = build(name)
        frames = encode_frames(protocol, dataset, BATCH_SIZE, seed=SEED)
        session = AggregationSession(protocol.spec(), dataset.domain)
        for frame in frames:
            session.submit(frame)
        return estimates_of(session.finalize())
    finally:
        set_enabled(was_enabled)


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_estimates_identical_with_metrics_on_and_off(name, dataset):
    on = collect(name, dataset, enabled=True)
    off = collect(name, dataset, enabled=False)
    assert_estimates_equal(on, off)


def test_encoding_draws_identical_rng_streams(dataset):
    """Same seed, metrics toggled: the encoded wire bytes themselves match."""
    protocol = build("InpRR")
    set_enabled(True)
    try:
        frames_on = encode_frames(protocol, dataset, BATCH_SIZE, seed=SEED)
    finally:
        set_enabled(False)
    try:
        frames_off = encode_frames(protocol, dataset, BATCH_SIZE, seed=SEED)
    finally:
        set_enabled(True)
    assert frames_on == frames_off
