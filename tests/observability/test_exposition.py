"""Prometheus text exposition over metrics snapshots."""

from __future__ import annotations

from repro.observability import MetricsRegistry, MetricsSnapshot, render_prometheus
from repro.observability.exposition import CONTENT_TYPE


def test_counter_and_gauge_lines():
    registry = MetricsRegistry()
    registry.counter("reqs_total", "Requests.", labels=("code",)).labels(
        code="200"
    ).inc(4)
    registry.gauge("active", "Active.").set(2)
    text = render_prometheus(registry.snapshot())
    assert "# HELP reqs_total Requests." in text
    assert "# TYPE reqs_total counter" in text
    assert 'reqs_total{code="200"} 4' in text
    assert "# TYPE active gauge" in text
    assert "active 2" in text
    assert text.endswith("\n")


def test_histogram_lines_are_cumulative():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat_seconds", "L.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 3.0):
        histogram.observe(value)
    text = render_prometheus(registry.snapshot())
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1.0"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_count 3" in text
    assert "lat_seconds_sum 3.55" in text


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("odd_total", "O.", labels=("path",)).labels(
        path='a"b\\c\nd'
    ).inc()
    text = render_prometheus(registry.snapshot())
    assert 'odd_total{path="a\\"b\\\\c\\nd"} 1' in text


def test_families_render_sorted_by_name():
    registry = MetricsRegistry()
    registry.counter("zz_total", "Z.").inc()
    registry.counter("aa_total", "A.").inc()
    text = render_prometheus(registry.snapshot())
    assert text.index("aa_total") < text.index("zz_total")


def test_empty_snapshot_renders_empty():
    assert render_prometheus(MetricsSnapshot.empty()) == ""


def test_content_type_is_prometheus_text():
    assert CONTENT_TYPE.startswith("text/plain")
    assert "version=0.0.4" in CONTENT_TYPE
