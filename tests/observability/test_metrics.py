"""Metrics core: registry semantics and the snapshot merge algebra.

The snapshot merge must be a commutative monoid over compatible
snapshots — associative, commutative, with the empty snapshot as
identity — because the multi-process collector and the fan-in topology
fold worker/collector snapshots in whatever order the processes land.
The property tests below generate random compatible snapshots and check
those laws hold exactly.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import (
    MetricsRegistry,
    MetricsSnapshot,
    metrics_enabled,
    set_enabled,
)
from repro.observability.metrics import DEFAULT_BUCKETS


@pytest.fixture
def registry():
    return MetricsRegistry()


# ----------------------------------------------------------------------
# registry semantics


def test_counter_inc_and_snapshot(registry):
    counter = registry.counter("jobs_total", "Jobs.", labels=("kind",))
    counter.labels(kind="a").inc()
    counter.labels(kind="a").inc(2)
    counter.labels(kind="b").inc(5)
    snapshot = registry.snapshot()
    assert snapshot.value("jobs_total", {"kind": "a"}) == 3
    assert snapshot.value("jobs_total", {"kind": "b"}) == 5
    assert snapshot.total("jobs_total") == 8


def test_counter_rejects_negative(registry):
    counter = registry.counter("c_total", "C.")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways(registry):
    gauge = registry.gauge("active", "Active.")
    gauge.inc(3)
    gauge.dec()
    gauge.set(7)
    assert registry.snapshot().value("active") == 7


def test_histogram_buckets_and_sum(registry):
    histogram = registry.histogram(
        "lat_seconds", "Latency.", buckets=(0.1, 1.0)
    )
    for value in (0.05, 0.5, 2.0):
        histogram.observe(value)
    series = registry.snapshot().families["lat_seconds"]["series"]
    ((_, data),) = series
    assert data["count"] == 3
    assert data["counts"] == [1, 1, 1]  # per-bucket plus trailing +Inf
    assert data["sum"] == pytest.approx(2.55)


def test_reregistration_is_idempotent(registry):
    first = registry.counter("x_total", "X.", labels=("k",))
    again = registry.counter("x_total", "X.", labels=("k",))
    assert first is again


def test_reregistration_type_clash_raises(registry):
    registry.counter("x_total", "X.")
    with pytest.raises(ValueError):
        registry.gauge("x_total", "X.")


def test_disabled_mutators_are_inert(registry):
    counter = registry.counter("quiet_total", "Q.")
    assert metrics_enabled()
    set_enabled(False)
    try:
        counter.inc(10)
        assert not metrics_enabled()
    finally:
        set_enabled(True)
    counter.inc()
    assert registry.snapshot().total("quiet_total") == 1


# ----------------------------------------------------------------------
# snapshot serialization


def test_snapshot_round_trips_through_json(registry):
    registry.counter("a_total", "A.", labels=("k",)).labels(k="x").inc(4)
    registry.histogram("h_seconds", "H.").observe(0.02)
    snapshot = registry.snapshot()
    restored = MetricsSnapshot.from_json(snapshot.to_json())
    assert restored.state_dict() == snapshot.state_dict()


def test_snapshot_rejects_wrong_format():
    with pytest.raises(ValueError):
        MetricsSnapshot.from_state_dict({"format": "bogus", "families": {}})


def test_snapshot_is_detached_from_registry(registry):
    counter = registry.counter("d_total", "D.")
    counter.inc()
    snapshot = registry.snapshot()
    counter.inc(10)
    assert snapshot.total("d_total") == 1


# ----------------------------------------------------------------------
# merge algebra (property-tested)

_LABEL_VALUES = st.sampled_from(["a", "b", "c"])
_COUNTS = st.integers(min_value=0, max_value=1_000)


@st.composite
def compatible_snapshot(draw):
    """A random snapshot over one fixed family schema.

    All snapshots produced by this strategy share family names, types,
    label names, and histogram buckets — exactly the compatibility the
    fleet guarantees by running the same code everywhere — so any two of
    them are mergeable.
    """
    families = {}
    counter_series = [
        [[value], float(draw(_COUNTS))]
        for value in draw(st.sets(_LABEL_VALUES, min_size=1))
    ]
    families["events_total"] = {
        "type": "counter",
        "help": "Events.",
        "labels": ["kind"],
        "series": counter_series,
    }
    families["level"] = {
        "type": "gauge",
        "help": "Level.",
        "labels": [],
        "series": [[[], float(draw(st.integers(-100, 100)))]],
    }
    # Four per-bucket counts: three finite bounds plus the trailing +Inf
    # bucket.  Sums are kept integer-valued so float addition stays exact
    # and the associativity check is meaningful, not a rounding lottery.
    counts = [draw(_COUNTS) for _ in range(4)]
    families["dur_seconds"] = {
        "type": "histogram",
        "help": "Durations.",
        "labels": [],
        "buckets": [0.1, 1.0, 10.0],
        "series": [
            [
                [],
                {
                    "counts": counts,
                    "sum": float(draw(_COUNTS)),
                    "count": sum(counts),
                },
            ]
        ],
    }
    return MetricsSnapshot.from_state_dict(
        {"format": "repro-metrics/v1", "families": families}
    )


def canonical(snapshot: MetricsSnapshot) -> str:
    state = snapshot.state_dict()
    for entry in state["families"].values():
        entry["series"] = sorted(
            entry["series"], key=lambda pair: json.dumps(pair[0])
        )
    return json.dumps(state, sort_keys=True)


@settings(max_examples=60, deadline=None)
@given(compatible_snapshot(), compatible_snapshot(), compatible_snapshot())
def test_merge_is_associative(a, b, c):
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert canonical(left) == canonical(right)


@settings(max_examples=60, deadline=None)
@given(compatible_snapshot(), compatible_snapshot())
def test_merge_is_commutative(a, b):
    assert canonical(a.merge(b)) == canonical(b.merge(a))


@settings(max_examples=30, deadline=None)
@given(compatible_snapshot())
def test_empty_snapshot_is_identity(a):
    assert canonical(MetricsSnapshot.empty().merge(a)) == canonical(a)
    assert canonical(a.merge(MetricsSnapshot.empty())) == canonical(a)


@settings(max_examples=30, deadline=None)
@given(st.lists(compatible_snapshot(), min_size=0, max_size=4))
def test_merge_all_matches_pairwise_fold(snapshots):
    folded = MetricsSnapshot.empty()
    for snapshot in snapshots:
        folded = folded.merge(snapshot)
    assert canonical(MetricsSnapshot.merge_all(snapshots)) == canonical(folded)


def test_merge_rejects_incompatible_buckets():
    def histogram_snapshot(buckets):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", "H.", buckets=buckets).observe(0.5)
        return registry.snapshot()

    left = histogram_snapshot((0.1, 1.0))
    right = histogram_snapshot((0.5, 5.0))
    with pytest.raises(ValueError):
        left.merge(right)


def test_default_buckets_are_strictly_increasing():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
