"""Stage tracing: span timing, the ring, the histogram feed, gating."""

from __future__ import annotations

import pytest

from repro.observability import MetricsRegistry, set_enabled
from repro.observability.tracing import SPAN_RING_CAPACITY, Tracer, trace


@pytest.fixture
def tracer():
    return Tracer(registry=MetricsRegistry())


def test_span_records_duration_and_fields(tracer):
    with tracer.span("stage.one") as span:
        span.annotate(items=3)
    (record,) = tracer.recent()
    assert record["name"] == "stage.one"
    assert record["duration_seconds"] >= 0.0
    assert record["items"] == 3


def test_span_feeds_the_histogram():
    registry = MetricsRegistry()
    tracer = Tracer(registry=registry)
    with tracer.span("stage.two"):
        pass
    data = registry.snapshot().value("repro_span_seconds", {"span": "stage.two"})
    assert data["count"] == 1


def test_span_marks_exceptions():
    tracer = Tracer(registry=MetricsRegistry())
    with pytest.raises(RuntimeError):
        with tracer.span("stage.boom"):
            raise RuntimeError("nope")
    (record,) = tracer.recent()
    assert record["error"] == "RuntimeError"


def test_disabled_span_is_shared_noop(tracer):
    set_enabled(False)
    try:
        first = tracer.span("anything")
        second = tracer.span("else")
        assert first is second  # the one shared null span, no allocation
        with first as span:
            span.annotate(ignored=True)
    finally:
        set_enabled(True)
    assert tracer.recent() == []


def test_ring_is_bounded(tracer):
    for index in range(SPAN_RING_CAPACITY + 10):
        with tracer.span(f"s{index}"):
            pass
    records = tracer.recent()
    assert len(records) == SPAN_RING_CAPACITY
    assert records[0]["name"] == "s10"  # oldest ones fell off


def test_recent_filters_by_name(tracer):
    with tracer.span("keep"):
        pass
    with tracer.span("drop"):
        pass
    assert [record["name"] for record in tracer.recent("keep")] == ["keep"]
    tracer.clear()
    assert tracer.recent() == []


def test_process_tracer_is_module_singleton():
    from repro.observability import get_tracer

    assert get_tracer() is trace
