"""Watch client units: rate tracking, half-widths, rendering."""

from __future__ import annotations

import pytest

from repro.observability.watch import (
    RateTracker,
    breaker_states,
    expected_error_half_width,
    render_watch,
)
from repro.theory.bounds import error_bound


def stats_for(protocol, *, reports=2000, epsilon=1.1, width=2, dimension=4):
    return {
        "reports": reports,
        "bytes": 4096,
        "frames": 8,
        "num_attributes": dimension,
        "spec": {
            "protocol": protocol,
            "epsilon": epsilon,
            "max_width": width,
        },
    }


# ----------------------------------------------------------------------
# RateTracker


def test_first_sample_has_no_rate():
    tracker = RateTracker()
    assert tracker.rates("a", 100, 1000, now=10.0) is None


def test_rates_from_consecutive_samples():
    tracker = RateTracker()
    tracker.rates("a", 100, 1_000_000, now=10.0)
    reports_rate, mb_rate = tracker.rates("a", 300, 3_000_000, now=12.0)
    assert reports_rate == pytest.approx(100.0)
    assert mb_rate == pytest.approx(1.0)


def test_targets_are_tracked_independently():
    tracker = RateTracker()
    tracker.rates("a", 100, 0, now=10.0)
    assert tracker.rates("b", 999, 0, now=11.0) is None
    assert tracker.rates("a", 200, 0, now=11.0) == pytest.approx((100.0, 0.0))


def test_zero_elapsed_yields_no_rate():
    tracker = RateTracker()
    tracker.rates("a", 100, 0, now=10.0)
    assert tracker.rates("a", 200, 0, now=10.0) is None


# ----------------------------------------------------------------------
# expected_error_half_width


def test_table2_protocol_matches_error_bound():
    stats = stats_for("InpRR")
    width = expected_error_half_width(stats)
    assert width == pytest.approx(error_bound("InpRR", 4, 2, 1.1, 2000))
    assert width > 0


def test_oracle_protocol_has_finite_half_width():
    width = expected_error_half_width(stats_for("InpOLH"))
    assert width is not None and width > 0


def test_half_width_shrinks_with_population():
    small = expected_error_half_width(stats_for("InpRR", reports=100))
    large = expected_error_half_width(stats_for("InpRR", reports=100_000))
    assert large < small


@pytest.mark.parametrize("protocol", ["HH", "InpEM", "NoSuchProtocol"])
def test_unbounded_protocols_render_na(protocol):
    assert expected_error_half_width(stats_for(protocol)) is None


def test_zero_population_renders_na():
    assert expected_error_half_width(stats_for("InpRR", reports=0)) is None


def test_missing_spec_renders_na():
    assert expected_error_half_width({"reports": 100}) is None


# ----------------------------------------------------------------------
# breaker_states


def test_breaker_states_extraction():
    state = {
        "format": "repro-metrics/v1",
        "families": {
            "repro_breaker_state": {
                "type": "gauge",
                "help": "",
                "labels": ["state"],
                "series": [[["closed"], 2.0], [["open"], 1.0]],
            }
        },
    }
    assert breaker_states(state) == {"closed": 2, "open": 1}


def test_breaker_states_tolerates_absence():
    assert breaker_states({}) == {}
    assert breaker_states({"families": {}}) == {}


# ----------------------------------------------------------------------
# render_watch


def payload_for(target="127.0.0.1:7311", **stats_kwargs):
    return {
        "target": target,
        "collector_id": "c0",
        "stats": {
            **stats_for("InpRR", **stats_kwargs),
            "shard_reports": [1200, 800],
            "connections": {
                "active": 1,
                "completed": 9,
                "rejected": 0,
                "dropped": 0,
            },
        },
        "metrics": {"format": "repro-metrics/v1", "families": {}},
    }


def test_render_includes_shards_rates_and_half_width():
    tracker = RateTracker()
    tracker.rates("127.0.0.1:7311", 0, 0, now=0.0)
    frame = render_watch([payload_for()], tracker, now=2.0)
    assert "collector 127.0.0.1:7311" in frame
    assert "shards  : 00=1,200  01=800" in frame
    assert "reports/s" in frame
    assert "±error  :" in frame and "n/a" not in frame
    assert "fleet: 1/1 collector(s), 2,000 reports" in frame


def test_render_marks_unreachable_collectors():
    frame = render_watch(
        [payload_for(), {"target": "127.0.0.1:9", "error": "boom"}]
    )
    assert "UNREACHABLE: boom" in frame
    assert "fleet: 1/2 collector(s)" in frame


def test_render_without_tracker_omits_rates():
    frame = render_watch([payload_for()])
    assert "reports/s" not in frame
