"""Structured logging: single tagged handler, JSON mode, namespace."""

from __future__ import annotations

import json
import logging

import pytest

from repro.observability import configure_logging, get_logger
from repro.observability.logsetup import _HANDLER_TAG


@pytest.fixture(autouse=True)
def restore_repro_logger():
    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.level, logger.propagate)
    yield
    logger.handlers[:] = saved[0]
    logger.setLevel(saved[1])
    logger.propagate = saved[2]


def tagged_handlers():
    return [
        handler
        for handler in logging.getLogger("repro").handlers
        if getattr(handler, "_repro_tag", None) == _HANDLER_TAG
    ]


def test_reconfiguring_does_not_stack_handlers():
    configure_logging("info")
    configure_logging("debug")
    configure_logging("warning", json_mode=True)
    assert len(tagged_handlers()) == 1
    assert logging.getLogger("repro").level == logging.WARNING


def test_unknown_level_raises():
    with pytest.raises(ValueError):
        configure_logging("loud")


def test_human_lines_reach_stderr(capsys):
    configure_logging("info")
    get_logger("serve").info("throughput: %d reports", 42)
    captured = capsys.readouterr()
    assert "throughput: 42 reports" in captured.err
    assert "repro.serve" in captured.err
    assert captured.out == ""


def test_json_mode_emits_parseable_records(capsys):
    configure_logging("info", json_mode=True)
    get_logger("topo").info("collected %d", 7)
    line = capsys.readouterr().err.strip().splitlines()[-1]
    record = json.loads(line)
    assert record["message"] == "collected 7"
    assert record["logger"] == "repro.topo"
    assert record["level"] == "info"
    assert isinstance(record["ts"], float)


def test_level_filtering(capsys):
    configure_logging("warning")
    get_logger().info("quiet")
    get_logger().warning("loud")
    captured = capsys.readouterr().err
    assert "quiet" not in captured
    assert "loud" in captured


def test_library_module_loggers_propagate_into_the_handler(capsys):
    configure_logging("info")
    # server/topology modules log via logging.getLogger(__name__), which
    # lives under the "repro." namespace and must funnel through the one
    # configured handler.
    logging.getLogger("repro.server.server").info("listening")
    assert "listening" in capsys.readouterr().err


def test_get_logger_namespacing():
    assert get_logger().name == "repro"
    assert get_logger("serve").name == "repro.serve"
    assert get_logger("repro.server.server").name == "repro.server.server"
