"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output
        assert "Figure 4" in output


class TestRun:
    def test_run_table2_quick(self, capsys):
        assert main(["run", "table2"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "InpHT" in output

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "fig3.txt"
        assert main(["run", "fig3", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "Figure 3" in target.read_text()

    def test_run_sweep_writes_json(self, tmp_path, capsys, monkeypatch):
        # Shrink the fig10 quick preset further so the CLI test stays fast.
        from repro.experiments import fig10_freq_oracles
        from repro.experiments.config import SweepConfig

        def tiny_config(quick=True):
            return SweepConfig(
                protocols=("InpHT", "InpHTCMS"),
                dataset="skewed",
                population_sizes=(1024,),
                dimensions=(4,),
                widths=(2,),
                epsilons=(1.0,),
                repetitions=1,
            )

        monkeypatch.setattr(fig10_freq_oracles, "default_config", tiny_config)
        target = tmp_path / "fig10.json"
        assert main(["run", "fig10", "--json", str(target)]) == 0
        capsys.readouterr()
        payload = json.loads(target.read_text())
        assert payload["config"]["dataset"] == "skewed"
        assert payload["points"]

    def test_json_rejected_for_non_sweep_experiment(self, tmp_path, capsys):
        assert main(["run", "fig3", "--json", str(tmp_path / "x.json")]) == 2
        capsys.readouterr()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figZZ"])
