"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output
        assert "Figure 4" in output


class TestRun:
    def test_run_table2_quick(self, capsys):
        assert main(["run", "table2"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "InpHT" in output

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "fig3.txt"
        assert main(["run", "fig3", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "Figure 3" in target.read_text()

    def test_run_sweep_writes_json(self, tmp_path, capsys, monkeypatch):
        # Shrink the fig10 quick preset further so the CLI test stays fast.
        from repro.experiments import fig10_freq_oracles
        from repro.experiments.config import SweepConfig

        def tiny_config(quick=True):
            return SweepConfig(
                protocols=("InpHT", "InpHTCMS"),
                dataset="skewed",
                population_sizes=(1024,),
                dimensions=(4,),
                widths=(2,),
                epsilons=(1.0,),
                repetitions=1,
            )

        monkeypatch.setattr(fig10_freq_oracles, "default_config", tiny_config)
        target = tmp_path / "fig10.json"
        assert main(["run", "fig10", "--json", str(target)]) == 0
        capsys.readouterr()
        payload = json.loads(target.read_text())
        assert payload["config"]["dataset"] == "skewed"
        assert payload["points"]

    def test_json_rejected_for_non_sweep_experiment(self, tmp_path, capsys):
        assert main(["run", "fig3", "--json", str(tmp_path / "x.json")]) == 2
        capsys.readouterr()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figZZ"])


class TestExecutorFlags:
    """--executor/--workers parsing, forwarding and rejection paths."""

    @pytest.fixture
    def captured_config(self, monkeypatch):
        """Stub out fig10's run/render and capture the config it receives."""
        from repro.experiments import fig10_freq_oracles

        captured = {}

        def fake_run(config):
            captured["config"] = config
            return object()

        monkeypatch.setattr(fig10_freq_oracles, "run", fake_run)
        monkeypatch.setattr(
            fig10_freq_oracles, "render", lambda result: "rendered"
        )
        return captured

    def test_flags_are_forwarded_into_sweep_config(
        self, captured_config, capsys
    ):
        assert (
            main(
                [
                    "run",
                    "fig10",
                    "--batch-size",
                    "256",
                    "--shards",
                    "4",
                    "--executor",
                    "thread",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        config = captured_config["config"]
        assert config.batch_size == 256
        assert config.shards == 4
        assert config.executor == "thread"
        assert config.workers == 2

    def test_executor_alone_switches_to_streaming_path(
        self, captured_config, capsys
    ):
        assert main(["run", "fig10", "--executor", "process"]) == 0
        capsys.readouterr()
        assert captured_config["config"].executor == "process"
        assert captured_config["config"].workers == 1

    def test_zero_workers_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig10", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_unknown_executor_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig10", "--executor", "gpu"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_workers_require_a_parallel_executor(self, capsys):
        assert main(["run", "fig10", "--workers", "4"]) == 2
        assert "serial executor" in capsys.readouterr().err

    def test_workers_require_multiple_shards(self, capsys):
        assert (
            main(
                [
                    "run",
                    "fig10",
                    "--executor",
                    "process",
                    "--workers",
                    "4",
                    "--batch-size",
                    "256",
                ]
            )
            == 2
        )
        assert "per-shard" in capsys.readouterr().err

    def test_executor_rejected_for_non_sweep_experiment(self, capsys):
        assert main(["run", "fig3", "--executor", "thread"]) == 2
        assert "sweep experiments" in capsys.readouterr().err


class TestServiceRoundTrip:
    """The encode | aggregate shell round trip is the deployed face of the
    pipeline; it must reproduce the in-process run_streaming estimates."""

    def test_encode_aggregate_matches_run_streaming(self, tmp_path, capsys):
        import numpy as np

        from repro.experiments.harness import make_dataset
        from repro.service import ProtocolSpec

        spec_path = tmp_path / "spec.json"
        frames_path = tmp_path / "reports.bin"
        json_path = tmp_path / "estimates.json"
        assert (
            main(
                [
                    "encode",
                    "--protocol", "InpHT",
                    "--epsilon", "1.1",
                    "--width", "2",
                    "--dataset", "taxi",
                    "-n", "600",
                    "-d", "5",
                    "--seed", "42",
                    "--batch-size", "150",
                    "--spec-out", str(spec_path),
                    "--output", str(frames_path),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "600 users" in captured.err
        assert frames_path.stat().st_size > 0

        assert (
            main(
                [
                    "aggregate",
                    "--spec", str(spec_path),
                    "--dimension", "5",
                    "--input", str(frames_path),
                    "--json", str(json_path),
                ]
            )
            == 0
        )
        rendered = capsys.readouterr().out
        assert "reports   : 600" in rendered

        # The shell path must agree bit-for-bit with the in-process pipeline
        # (same seed, same batch size -> same per-batch generators).
        generator = np.random.default_rng(42)
        dataset = make_dataset("taxi", 600, 5, generator)
        protocol = ProtocolSpec.from_json(spec_path.read_text()).build()
        estimator = protocol.run_streaming(
            dataset, rng=generator, batch_size=150
        )
        payload = json.loads(json_path.read_text())
        assert payload["num_reports"] == 600
        expected = [
            [float(value) for value in table.values]
            for _, table in sorted(estimator.query_all().items())
        ]
        observed = [entry["values"] for entry in payload["marginals"]]
        assert observed == expected

    def test_aggregate_checkpoint_restore_flow(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        first = tmp_path / "first.bin"
        second = tmp_path / "second.bin"
        checkpoint = tmp_path / "session.npz"
        # Two encode runs stand in for two collection windows.
        assert main([
            "encode", "--protocol", "MargPS", "--epsilon", "1.0",
            "--width", "2", "--dataset", "uniform", "-n", "200", "-d", "4",
            "--seed", "1", "--spec-out", str(spec_path),
            "--output", str(first),
        ]) == 0
        assert main([
            "encode", "--protocol", "MargPS", "--epsilon", "1.0",
            "--width", "2", "--dataset", "uniform", "-n", "200", "-d", "4",
            "--seed", "2", "--output", str(second),
        ]) == 0
        assert main([
            "aggregate", "--spec", str(spec_path), "--dimension", "4",
            "--input", str(first), "--checkpoint", str(checkpoint),
        ]) == 0
        capsys.readouterr()
        assert main([
            "aggregate", "--restore", str(checkpoint),
            "--input", str(second),
        ]) == 0
        rendered = capsys.readouterr().out
        assert "reports   : 400" in rendered

    def test_encode_unknown_protocol_fails_cleanly(self, capsys):
        assert main([
            "encode", "--protocol", "InpMagic", "--epsilon", "1.0",
            "--width", "2",
        ]) == 2
        assert "InpMagic" in capsys.readouterr().err

    def test_encode_unknown_option_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "encode", "--protocol", "InpHT", "--epsilon", "1.0",
            "--width", "2", "--option", "bogus=1",
            "--output", str(tmp_path / "x.bin"),
        ]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_encode_option_values_parsed_as_json(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        assert main([
            "encode", "--protocol", "InpHTCMS", "--epsilon", "1.0",
            "--width", "2", "--option", "width=64",
            "--option", "num_hashes=3",
            "--spec-out", str(spec_path),
            "-n", "50", "-d", "4",
            "--output", str(tmp_path / "x.bin"),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(spec_path.read_text())
        assert payload["options"] == {"width": 64, "num_hashes": 3}

    def test_aggregate_requires_spec_without_restore(self, capsys):
        assert main(["aggregate", "--dimension", "4"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_aggregate_requires_a_domain(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        assert main([
            "encode", "--protocol", "InpHT", "--epsilon", "1.0",
            "--width", "2", "-n", "50", "-d", "4",
            "--spec-out", str(spec_path),
            "--output", str(tmp_path / "x.bin"),
        ]) == 0
        capsys.readouterr()
        assert main(["aggregate", "--spec", str(spec_path)]) == 2
        assert "--dimension" in capsys.readouterr().err

    def test_aggregate_attribute_names(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        frames = tmp_path / "x.bin"
        assert main([
            "encode", "--protocol", "InpPS", "--epsilon", "1.0",
            "--width", "1", "-n", "80", "-d", "3",
            "--spec-out", str(spec_path), "--output", str(frames),
        ]) == 0
        capsys.readouterr()
        assert main([
            "aggregate", "--spec", str(spec_path),
            "--attributes", "CC,Tip,Night",
            "--input", str(frames),
        ]) == 0
        rendered = capsys.readouterr().out
        assert "CC:" in rendered and "Tip:" in rendered

    def test_encode_width_exceeding_dimension_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "encode", "--protocol", "InpHT", "--epsilon", "1.0",
            "--width", "6", "-n", "10", "-d", "4",
            "--output", str(tmp_path / "x.bin"),
        ]) == 2
        assert "--width 6 exceeds" in capsys.readouterr().err

    def test_aggregate_rejects_restore_with_spec_or_domain(self, tmp_path, capsys):
        checkpoint = tmp_path / "ck.npz"
        assert main([
            "aggregate", "--restore", str(checkpoint),
            "--dimension", "4",
        ]) == 2
        assert "cannot be combined" in capsys.readouterr().err
        assert main([
            "aggregate", "--restore", str(checkpoint),
            "--spec", str(tmp_path / "spec.json"),
        ]) == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_aggregate_malformed_spec_fails_cleanly(self, tmp_path, capsys):
        bad_spec = tmp_path / "bad.json"
        bad_spec.write_text(
            '{"format_version": 1, "protocol": "InpHT", "epsilon": "abc",'
            ' "max_width": 2, "options": {}}'
        )
        assert main([
            "aggregate", "--spec", str(bad_spec), "--dimension", "4",
            "--input", "/dev/null",
        ]) == 2
        assert "epsilon" in capsys.readouterr().err

    def test_aggregate_restore_at_a_terminal_skips_stdin(
        self, tmp_path, capsys, monkeypatch
    ):
        spec_path = tmp_path / "spec.json"
        frames = tmp_path / "x.bin"
        checkpoint = tmp_path / "ck.npz"
        assert main([
            "encode", "--protocol", "InpHT", "--epsilon", "1.0",
            "--width", "2", "-n", "60", "-d", "4",
            "--spec-out", str(spec_path), "--output", str(frames),
        ]) == 0
        assert main([
            "aggregate", "--spec", str(spec_path), "--dimension", "4",
            "--input", str(frames), "--checkpoint", str(checkpoint),
        ]) == 0
        capsys.readouterr()
        # With --restore at an interactive terminal and no --input, there is
        # nothing to drain: the estimates re-print without touching stdin.
        monkeypatch.setattr("sys.stdin", type("Tty", (), {
            "isatty": staticmethod(lambda: True),
            "buffer": property(lambda self: (_ for _ in ()).throw(
                AssertionError("stdin must not be read")
            )),
        })())
        assert main(["aggregate", "--restore", str(checkpoint)]) == 0
        assert "reports   : 60" in capsys.readouterr().out

    def test_aggregate_missing_input_file_fails_cleanly(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        assert main([
            "encode", "--protocol", "InpHT", "--epsilon", "1.0",
            "--width", "2", "-n", "20", "-d", "4",
            "--spec-out", str(spec_path),
            "--output", str(tmp_path / "x.bin"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "aggregate", "--spec", str(spec_path), "--dimension", "4",
            "--input", str(tmp_path / "missing.bin"),
        ]) == 2
        assert "aggregate:" in capsys.readouterr().err

    def test_encode_bad_option_value_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "encode", "--protocol", "InpHTCMS", "--epsilon", "1.0",
            "--width", "2", "--option", "width=abc",
            "-n", "20", "-d", "4",
            "--output", str(tmp_path / "x.bin"),
        ]) == 2
        assert "encode:" in capsys.readouterr().err

    def test_encode_unwritable_output_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "encode", "--protocol", "InpHT", "--epsilon", "1.0",
            "--width", "2", "-n", "20", "-d", "4",
            "--output", str(tmp_path / "no-such-dir" / "x.bin"),
        ]) == 2
        assert "encode:" in capsys.readouterr().err

    def test_aggregate_restore_with_input_none(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        frames = tmp_path / "x.bin"
        checkpoint = tmp_path / "ck.npz"
        assert main([
            "encode", "--protocol", "InpHT", "--epsilon", "1.0",
            "--width", "2", "-n", "40", "-d", "4",
            "--spec-out", str(spec_path), "--output", str(frames),
        ]) == 0
        assert main([
            "aggregate", "--spec", str(spec_path), "--dimension", "4",
            "--input", str(frames), "--checkpoint", str(checkpoint),
        ]) == 0
        capsys.readouterr()
        # --input none re-prints a restored session without touching stdin,
        # even when stdin is a never-EOF pipe.
        assert main([
            "aggregate", "--restore", str(checkpoint), "--input", "none",
        ]) == 0
        assert "reports   : 40" in capsys.readouterr().out

    def test_option_python_spelled_booleans(self, tmp_path, capsys):
        """--option optimized_probabilities=False must disable OUE, not
        silently configure the truthy string 'False'."""
        spec_path = tmp_path / "spec.json"
        assert main([
            "encode", "--protocol", "InpRR", "--epsilon", "1.0",
            "--width", "2", "--option", "optimized_probabilities=False",
            "-n", "20", "-d", "4",
            "--spec-out", str(spec_path),
            "--output", str(tmp_path / "x.bin"),
        ]) == 0
        capsys.readouterr()
        from repro.service import ProtocolSpec

        spec = ProtocolSpec.from_json(spec_path.read_text())
        assert spec.options == {"optimized_probabilities": False}
        assert spec.build().optimized_probabilities is False

    def test_dataset_choices_track_the_harness(self):
        from repro.experiments.harness import DATASET_NAMES, make_dataset

        import numpy as np

        for name in DATASET_NAMES:
            dataset = make_dataset(name, 16, 3, np.random.default_rng(0))
            assert dataset.size == 16

    def test_aggregate_streams_stdin_incrementally(self, tmp_path, capsys, monkeypatch):
        """The stdin path submits frames as they arrive instead of
        buffering the whole collection."""
        import io as io_module
        import sys as sys_module
        import types

        spec_path = tmp_path / "spec.json"
        frames_path = tmp_path / "frames.bin"
        assert main([
            "encode", "--protocol", "InpHT", "--epsilon", "1.0",
            "--width", "2", "-n", "120", "-d", "4", "--batch-size", "30",
            "--spec-out", str(spec_path), "--output", str(frames_path),
        ]) == 0
        capsys.readouterr()
        fake_stdin = types.SimpleNamespace(
            buffer=io_module.BytesIO(frames_path.read_bytes()),
            isatty=lambda: False,
        )
        monkeypatch.setattr(sys_module, "stdin", fake_stdin)
        assert main([
            "aggregate", "--spec", str(spec_path), "--dimension", "4",
        ]) == 0
        assert "reports   : 120" in capsys.readouterr().out

    def test_broken_pipe_exits_quietly(self, capsys, monkeypatch):
        import sys as sys_module
        import types

        class BrokenBuffer:
            def write(self, data):
                raise BrokenPipeError(32, "Broken pipe")

            def flush(self):
                raise BrokenPipeError(32, "Broken pipe")

        fake_stdout = types.SimpleNamespace(buffer=BrokenBuffer())
        monkeypatch.setattr(sys_module, "stdout", fake_stdout)
        assert main([
            "encode", "--protocol", "InpHT", "--epsilon", "1.0",
            "--width", "2", "-n", "20", "-d", "4",
        ]) == 0


class TestListJson:
    """`repro list --json` is the machine-readable contract for tooling
    (loadgen config validation); the human tables stay the default."""

    def test_json_listing_structure(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "experiments",
            "protocols",
            "datasets",
            "executors",
        }
        assert set(payload["experiments"]) == set(EXPERIMENTS)
        from repro.protocols.registry import available_protocols

        assert set(payload["protocols"]) == set(available_protocols())
        entry = payload["protocols"]["InpOLH"]
        assert entry["core"] is False
        assert "decode_batch_size" in entry["options"]
        assert "decode_batch_size" in entry["tuning_options"]
        assert "num_buckets" in entry["default_options"]
        assert payload["protocols"]["InpHT"]["core"] is True
        assert "taxi" in payload["datasets"]
        assert "serial" in payload["executors"]

    def test_human_listing_includes_protocols(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "protocols:" in output
        assert "InpHT" in output
        assert "baseline" in output


class TestServeLoadValidation:
    def test_serve_requires_a_contract(self, capsys):
        assert main(["serve", "--dimension", "4"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_serve_rejects_spec_and_protocol_together(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            '{"format_version": 1, "protocol": "InpRR", "epsilon": 1.0, '
            '"max_width": 2, "options": {}}'
        )
        assert main([
            "serve", "--spec", str(spec_path), "--protocol", "InpRR",
            "--epsilon", "1.0", "--width", "2", "--dimension", "4",
        ]) == 2
        assert "not both" in capsys.readouterr().err

    def test_serve_requires_a_domain(self, capsys):
        assert main([
            "serve", "--protocol", "InpRR", "--epsilon", "1.0", "--width", "2",
        ]) == 2
        assert "--dimension" in capsys.readouterr().err

    def test_serve_rejects_unknown_protocol(self, capsys):
        assert main([
            "serve", "--protocol", "InpMagic", "--epsilon", "1.0",
            "--width", "2", "--dimension", "4",
        ]) == 2
        assert "InpMagic" in capsys.readouterr().err

    def test_serve_checkpoint_interval_requires_dir(self, capsys):
        assert main([
            "serve", "--protocol", "InpRR", "--epsilon", "1.0", "--width", "2",
            "--dimension", "4", "--checkpoint-interval", "5",
        ]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_load_requires_a_contract(self, capsys):
        assert main(["load", "--dimension", "4"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_load_inline_protocol_requires_epsilon_and_width(self, capsys):
        assert main(["load", "--protocol", "InpRR", "--dimension", "4"]) == 2
        assert "--epsilon" in capsys.readouterr().err

    def test_load_against_dead_port_fails_cleanly(self, capsys):
        assert main([
            "load", "--protocol", "InpRR", "--epsilon", "1.0", "--width", "2",
            "--dimension", "4", "--port", "1", "--clients", "1",
            "--records-per-client", "8", "--connect-timeout", "0.2",
        ]) == 2
        assert "cannot connect" in capsys.readouterr().err


class TestServeLoadRoundTrip:
    """The socket round trip: `repro serve` in a real child process,
    `repro load` in-process, estimates equal to run_streaming."""

    def test_serve_load_matches_run_streaming(self, tmp_path, capsys):
        import os
        import re
        import subprocess
        import sys

        import numpy as np

        import repro
        from repro.experiments.harness import make_dataset
        from repro.protocols.registry import make_protocol

        source_root = __import__("pathlib").Path(
            repro.__file__
        ).resolve().parents[1]
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.pathsep.join(
            [str(source_root)]
            + ([environment["PYTHONPATH"]] if "PYTHONPATH" in environment else [])
        )
        server_json = tmp_path / "server.json"
        ckpt_dir = tmp_path / "ckpt"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--protocol", "InpRR", "--epsilon", "1.1", "--width", "2",
                "--dimension", "5", "--port", "0", "--shards", "2",
                "--stop-after-reports", "600",
                "--checkpoint-dir", str(ckpt_dir),
                "--json", str(server_json),
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=environment,
        )
        try:
            ready = process.stderr.readline()
            match = re.search(r"on 127\.0\.0\.1:(\d+)", ready)
            assert match, f"no readiness line: {ready!r}"
            port = match.group(1)
            load_json = tmp_path / "load.json"
            assert main([
                "load",
                "--protocol", "InpRR", "--epsilon", "1.1", "--width", "2",
                "--dimension", "5", "--port", port, "--clients", "10",
                "--dataset", "uniform", "-n", "600", "--batch-size", "100",
                "--seed", "11", "--malformed", "2",
                "--json", str(load_json),
            ]) == 0
            rendered = capsys.readouterr().out
            assert "600 acked" in rendered
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
            process.stderr.close()
        assert process.returncode == 0

        payload = json.loads(server_json.read_text())
        assert payload["num_reports"] == 600
        assert payload["server"]["connections"]["rejected"] == 2
        assert sorted(
            path.name for path in ckpt_dir.glob("shard-*.npz")
        ) == ["shard-00.npz", "shard-01.npz"]

        generator = np.random.default_rng(11)
        dataset = make_dataset("uniform", 600, 5, generator)
        baseline = make_protocol("InpRR", 1.1, 2).run_streaming(
            dataset, rng=generator, batch_size=100
        )
        expected = [
            [float(value) for value in table.values]
            for _, table in sorted(baseline.query_all().items())
        ]
        observed = [entry["values"] for entry in payload["marginals"]]
        assert observed == expected

        fleet_report = json.loads(load_json.read_text())
        assert fleet_report["acked_reports"] == 600
        assert fleet_report["rejected_connections"] == 2

    def test_serve_with_no_reports_emits_consistent_json(self, tmp_path):
        import os
        import re
        import signal as signal_module
        import subprocess
        import sys

        import repro

        source_root = __import__("pathlib").Path(
            repro.__file__
        ).resolve().parents[1]
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.pathsep.join(
            [str(source_root)]
            + ([environment["PYTHONPATH"]] if "PYTHONPATH" in environment else [])
        )
        server_json = tmp_path / "empty.json"
        rendered_txt = tmp_path / "empty.txt"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--protocol", "InpRR", "--epsilon", "1.0", "--width", "2",
                "--dimension", "4", "--port", "0",
                "--json", str(server_json), "--output", str(rendered_txt),
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=environment,
        )
        try:
            ready = process.stderr.readline()
            assert re.search(r"on 127\.0\.0\.1:\d+", ready), ready
            process.send_signal(signal_module.SIGTERM)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
            process.stderr.close()
        assert process.returncode == 0
        payload = json.loads(server_json.read_text())
        # Same shape as the non-empty path: consumers read num_reports,
        # spec, attributes and marginals without special-casing.
        assert payload["num_reports"] == 0
        assert payload["marginals"] == []
        assert payload["spec"]["protocol"] == "InpRR"
        assert payload["attributes"] == ["attr0", "attr1", "attr2", "attr3"]
        assert payload["server"]["connections"]["total"] == 0
        assert "reports   : 0" in rendered_txt.read_text()
