"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output
        assert "Figure 4" in output


class TestRun:
    def test_run_table2_quick(self, capsys):
        assert main(["run", "table2"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "InpHT" in output

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "fig3.txt"
        assert main(["run", "fig3", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "Figure 3" in target.read_text()

    def test_run_sweep_writes_json(self, tmp_path, capsys, monkeypatch):
        # Shrink the fig10 quick preset further so the CLI test stays fast.
        from repro.experiments import fig10_freq_oracles
        from repro.experiments.config import SweepConfig

        def tiny_config(quick=True):
            return SweepConfig(
                protocols=("InpHT", "InpHTCMS"),
                dataset="skewed",
                population_sizes=(1024,),
                dimensions=(4,),
                widths=(2,),
                epsilons=(1.0,),
                repetitions=1,
            )

        monkeypatch.setattr(fig10_freq_oracles, "default_config", tiny_config)
        target = tmp_path / "fig10.json"
        assert main(["run", "fig10", "--json", str(target)]) == 0
        capsys.readouterr()
        payload = json.loads(target.read_text())
        assert payload["config"]["dataset"] == "skewed"
        assert payload["points"]

    def test_json_rejected_for_non_sweep_experiment(self, tmp_path, capsys):
        assert main(["run", "fig3", "--json", str(tmp_path / "x.json")]) == 2
        capsys.readouterr()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figZZ"])


class TestExecutorFlags:
    """--executor/--workers parsing, forwarding and rejection paths."""

    @pytest.fixture
    def captured_config(self, monkeypatch):
        """Stub out fig10's run/render and capture the config it receives."""
        from repro.experiments import fig10_freq_oracles

        captured = {}

        def fake_run(config):
            captured["config"] = config
            return object()

        monkeypatch.setattr(fig10_freq_oracles, "run", fake_run)
        monkeypatch.setattr(
            fig10_freq_oracles, "render", lambda result: "rendered"
        )
        return captured

    def test_flags_are_forwarded_into_sweep_config(
        self, captured_config, capsys
    ):
        assert (
            main(
                [
                    "run",
                    "fig10",
                    "--batch-size",
                    "256",
                    "--shards",
                    "4",
                    "--executor",
                    "thread",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        config = captured_config["config"]
        assert config.batch_size == 256
        assert config.shards == 4
        assert config.executor == "thread"
        assert config.workers == 2

    def test_executor_alone_switches_to_streaming_path(
        self, captured_config, capsys
    ):
        assert main(["run", "fig10", "--executor", "process"]) == 0
        capsys.readouterr()
        assert captured_config["config"].executor == "process"
        assert captured_config["config"].workers == 1

    def test_zero_workers_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig10", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_unknown_executor_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig10", "--executor", "gpu"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_workers_require_a_parallel_executor(self, capsys):
        assert main(["run", "fig10", "--workers", "4"]) == 2
        assert "serial executor" in capsys.readouterr().err

    def test_workers_require_multiple_shards(self, capsys):
        assert (
            main(
                [
                    "run",
                    "fig10",
                    "--executor",
                    "process",
                    "--workers",
                    "4",
                    "--batch-size",
                    "256",
                ]
            )
            == 2
        )
        assert "per-shard" in capsys.readouterr().err

    def test_executor_rejected_for_non_sweep_experiment(self, capsys):
        assert main(["run", "fig3", "--executor", "thread"]) == 2
        assert "sweep experiments" in capsys.readouterr().err
