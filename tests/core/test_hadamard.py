"""Unit tests for the Hadamard transform substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bitops, hadamard
from repro.core.exceptions import MarginalQueryError


def brute_force_transform(vector: np.ndarray) -> np.ndarray:
    """Direct O(n^2) evaluation of the unnormalised +/-1 transform."""
    n = vector.shape[0]
    matrix = np.array(
        [[bitops.inner_product_sign(i, j) for j in range(n)] for i in range(n)],
        dtype=np.float64,
    )
    return matrix @ vector


class TestFwht:
    def test_matches_brute_force(self, rng):
        for d in (1, 2, 3, 4):
            vector = rng.normal(size=1 << d)
            np.testing.assert_allclose(
                hadamard.fwht(vector), brute_force_transform(vector), atol=1e-9
            )

    def test_involution_up_to_scale(self, rng):
        vector = rng.normal(size=16)
        twice = hadamard.fwht(hadamard.fwht(vector))
        np.testing.assert_allclose(twice, 16 * vector, atol=1e-9)

    def test_inverse_roundtrip(self, rng):
        vector = rng.normal(size=32)
        np.testing.assert_allclose(
            hadamard.fwht_inverse(hadamard.fwht(vector)), vector, atol=1e-9
        )

    def test_matches_reference_bit_for_bit(self, rng):
        # The reshape-based butterfly performs the identical per-element
        # add/subtract as the blockwise reference, so equality is exact.
        for d in (0, 1, 2, 5, 10, 14):
            vector = rng.normal(size=1 << d)
            np.testing.assert_array_equal(
                hadamard.fwht(vector), hadamard.fwht_reference(vector)
            )

    def test_input_not_modified(self, rng):
        vector = rng.normal(size=64)
        original = vector.copy()
        hadamard.fwht(vector)
        np.testing.assert_array_equal(vector, original)


class TestFwhtRows:
    def test_matches_per_row_fwht_bit_for_bit(self, rng):
        for rows, n in ((1, 16), (5, 256), (64, 1024), (3, 1)):
            matrix = rng.normal(size=(rows, n))
            expected = np.stack([hadamard.fwht_reference(row) for row in matrix])
            np.testing.assert_array_equal(hadamard.fwht_rows(matrix), expected)

    def test_input_not_modified(self, rng):
        matrix = rng.normal(size=(4, 32))
        original = matrix.copy()
        hadamard.fwht_rows(matrix)
        np.testing.assert_array_equal(matrix, original)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            hadamard.fwht_rows(rng.normal(size=8))
        with pytest.raises(ValueError):
            hadamard.fwht_rows(rng.normal(size=(2, 2, 2)))

    def test_rejects_non_power_of_two_rows(self, rng):
        with pytest.raises(ValueError):
            hadamard.fwht_rows(rng.normal(size=(3, 12)))
        with pytest.raises(ValueError):
            hadamard.fwht_rows(np.zeros((2, 0)))

    def test_does_not_modify_input(self, rng):
        vector = rng.normal(size=8)
        copy = vector.copy()
        hadamard.fwht(vector)
        np.testing.assert_array_equal(vector, copy)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            hadamard.fwht(np.ones(6))
        with pytest.raises(ValueError):
            hadamard.fwht(np.ones(0))

    def test_parseval(self, rng):
        # The orthonormal transform (fwht / sqrt(n)) preserves the 2-norm.
        vector = rng.normal(size=64)
        transformed = hadamard.fwht(vector) / np.sqrt(64)
        assert np.linalg.norm(transformed) == pytest.approx(np.linalg.norm(vector))


class TestScaledCoefficients:
    def test_constant_coefficient_is_one_for_distributions(self, rng):
        distribution = rng.random(16)
        distribution /= distribution.sum()
        coefficients = hadamard.scaled_coefficients(distribution)
        assert coefficients[0] == pytest.approx(1.0)
        assert np.all(np.abs(coefficients) <= 1.0 + 1e-9)

    def test_roundtrip(self, rng):
        distribution = rng.random(32)
        distribution /= distribution.sum()
        coefficients = hadamard.scaled_coefficients(distribution)
        recovered = hadamard.distribution_from_scaled_coefficients(coefficients)
        np.testing.assert_allclose(recovered, distribution, atol=1e-12)

    def test_single_coefficient_matches_full_transform(self, rng):
        distribution = rng.random(16)
        distribution /= distribution.sum()
        full = hadamard.scaled_coefficients(distribution)
        for alpha in range(16):
            assert hadamard.single_scaled_coefficient(
                distribution, alpha
            ) == pytest.approx(full[alpha])

    def test_one_hot_coefficients_are_signs(self):
        # A single user's one-hot vector has coefficient (-1)^{<alpha, j>}.
        j = 5
        one_hot = np.zeros(8)
        one_hot[j] = 1.0
        coefficients = hadamard.scaled_coefficients(one_hot)
        for alpha in range(8):
            assert coefficients[alpha] == bitops.inner_product_sign(alpha, j)


class TestCoefficientIndexSet:
    def test_size_formula(self):
        import math

        for d, k in ((4, 2), (8, 2), (8, 3), (6, 6)):
            expected = sum(math.comb(d, level) for level in range(1, k + 1))
            assert hadamard.coefficient_index_set(d, k).size == expected

    def test_excludes_zero_by_default(self):
        assert 0 not in hadamard.coefficient_index_set(5, 2)
        assert 0 in hadamard.coefficient_index_set(5, 2, include_zero=True)

    def test_rejects_bad_width(self):
        with pytest.raises(MarginalQueryError):
            hadamard.coefficient_index_set(4, 5)
        with pytest.raises(MarginalQueryError):
            hadamard.coefficient_index_set(4, -1)

    def test_coefficients_for_marginal(self):
        beta = 0b1010
        alphas = hadamard.coefficients_for_marginal(beta)
        assert alphas.tolist() == [0b0000, 0b0010, 0b1000, 0b1010]


class TestMarginalFromCoefficients:
    def test_matches_direct_marginalisation(self, rng):
        from repro.core.domain import Domain
        from repro.core.marginals import marginal_operator

        d = 4
        domain = Domain.binary(d)
        distribution = rng.random(1 << d)
        distribution /= distribution.sum()
        coefficients = hadamard.scaled_coefficients(distribution)
        for beta in (0b0011, 0b1010, 0b1111, 0b0100):
            expected = marginal_operator(distribution, beta, domain).values
            reconstructed = hadamard.marginal_from_scaled_coefficients(
                beta, coefficients
            )
            np.testing.assert_allclose(reconstructed, expected, atol=1e-10)

    def test_accepts_mapping(self, rng):
        distribution = rng.random(8)
        distribution /= distribution.sum()
        coefficients = hadamard.scaled_coefficients(distribution)
        beta = 0b101
        mapping = {alpha: coefficients[alpha] for alpha in bitops.submasks(beta)}
        from_map = hadamard.marginal_from_scaled_coefficients(beta, mapping)
        from_array = hadamard.marginal_from_scaled_coefficients(beta, coefficients)
        np.testing.assert_allclose(from_map, from_array)

    def test_missing_coefficient_raises(self):
        with pytest.raises(MarginalQueryError):
            hadamard.marginal_from_scaled_coefficients(0b11, {0: 1.0, 1: 0.2})


class TestUserCoefficientValues:
    def test_values_are_signs(self, rng):
        indices = rng.integers(0, 16, size=100)
        alphas = rng.integers(0, 16, size=100)
        values = hadamard.user_coefficient_values(indices, alphas)
        assert set(np.unique(values)).issubset({-1.0, 1.0})
        for index, alpha, value in zip(indices, alphas, values):
            assert value == bitops.inner_product_sign(int(index), int(alpha))
