"""Unit tests for privacy-budget accounting."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exceptions import PrivacyBudgetError
from repro.core.privacy import (
    PrivacyBudget,
    grr_keep_probability,
    oue_probabilities,
    rr_keep_probability,
)


class TestModuleFunctions:
    def test_rr_keep_probability_values(self):
        assert rr_keep_probability(math.log(3)) == pytest.approx(0.75)
        assert rr_keep_probability(0.0001) == pytest.approx(0.500025, abs=1e-6)

    def test_rr_keep_probability_rejects_nonpositive(self):
        with pytest.raises(PrivacyBudgetError):
            rr_keep_probability(0.0)
        with pytest.raises(PrivacyBudgetError):
            rr_keep_probability(-1.0)

    def test_grr_keep_probability_binary_matches_rr(self):
        eps = 1.3
        assert grr_keep_probability(eps, 2) == pytest.approx(rr_keep_probability(eps))

    def test_grr_keep_probability_decreases_with_domain(self):
        eps = 1.0
        probabilities = [grr_keep_probability(eps, m) for m in (2, 4, 16, 256)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_grr_rejects_tiny_domain(self):
        with pytest.raises(PrivacyBudgetError):
            grr_keep_probability(1.0, 1)

    def test_oue_probabilities(self):
        p, q = oue_probabilities(math.log(3))
        assert p == pytest.approx(0.5)
        assert q == pytest.approx(0.25)


class TestPrivacyBudget:
    def test_valid_budget(self):
        budget = PrivacyBudget(1.1)
        assert budget.epsilon == pytest.approx(1.1)
        assert budget.exp_epsilon == pytest.approx(math.exp(1.1))

    def test_from_exp(self):
        budget = PrivacyBudget.from_exp(3.0)
        assert budget.epsilon == pytest.approx(math.log(3))
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget.from_exp(1.0)

    @pytest.mark.parametrize("bad", [0.0, -0.5, float("nan"), float("inf")])
    def test_rejects_invalid_epsilon(self, bad):
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(bad)

    def test_split_composition(self):
        budget = PrivacyBudget(2.0)
        split = budget.split(4)
        assert split.epsilon == pytest.approx(0.5)
        assert budget.halve().epsilon == pytest.approx(1.0)

    def test_split_rejects_nonpositive_parts(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(1.0).split(0)

    def test_probability_helpers_match_module_functions(self):
        budget = PrivacyBudget(0.8)
        assert budget.rr_keep_probability() == pytest.approx(rr_keep_probability(0.8))
        assert budget.grr_keep_probability(16) == pytest.approx(
            grr_keep_probability(0.8, 16)
        )
        assert budget.oue_probabilities() == pytest.approx(oue_probabilities(0.8))

    def test_budget_is_hashable_and_frozen(self):
        budget = PrivacyBudget(1.0)
        assert hash(budget) == hash(PrivacyBudget(1.0))
        with pytest.raises(Exception):
            budget.epsilon = 2.0  # type: ignore[misc]
