"""Unit tests for the bit-vector algebra."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import bitops


class TestPopcount:
    def test_scalar_values(self):
        assert bitops.popcount(0) == 0
        assert bitops.popcount(1) == 1
        assert bitops.popcount(0b1011) == 3
        assert bitops.popcount((1 << 20) - 1) == 20

    def test_array_values(self):
        values = np.array([0, 1, 3, 7, 255])
        assert bitops.popcount(values).tolist() == [0, 1, 2, 3, 8]

    def test_matches_python_bit_count(self):
        values = np.arange(512)
        expected = [int(v).bit_count() for v in values]
        assert bitops.popcount(values).tolist() == expected

    def test_fast_path_matches_reference(self):
        rng = np.random.default_rng(7)
        for values in (
            rng.integers(0, 1 << 16, size=4096),
            rng.integers(0, 1 << 62, size=4096),
            np.array([0, 1, (1 << 63) - 1, np.iinfo(np.int64).max]),
            np.uint64(2**64 - 1) - rng.integers(0, 64, size=128).astype(np.uint64),
        ):
            fast = bitops.popcount(values)
            reference = bitops.popcount_reference(values)
            np.testing.assert_array_equal(fast, reference)
            assert fast.dtype == reference.dtype

    def test_swar_fallback_matches_reference(self):
        rng = np.random.default_rng(11)
        words = rng.integers(0, 2**64, size=4096, dtype=np.uint64)
        np.testing.assert_array_equal(
            bitops._popcount_swar(words), bitops.popcount_reference(words)
        )

    def test_object_dtype_path(self):
        # Regression: arbitrary-precision Python ints (wider than 64 bits)
        # must fall back to int.bit_count, not be folded as 64-bit words.
        values = np.array([0, 1, (1 << 80) - 1, (1 << 200) | 0b101], dtype=object)
        result = bitops.popcount(values)
        assert result.dtype == np.int64
        assert result.tolist() == [0, 1, 80, 3]
        np.testing.assert_array_equal(result, bitops.popcount_reference(values))

    def test_zero_dim_numpy_scalar(self):
        assert bitops.popcount(np.int64(0b1011)) == 3
        assert isinstance(bitops.popcount(np.int64(7)), int)


class TestParityAndSigns:
    def test_parity_scalar(self):
        assert bitops.parity(0) == 0
        assert bitops.parity(0b111) == 1
        assert bitops.parity(0b1111) == 0

    def test_parity_fast_path_matches_reference(self):
        rng = np.random.default_rng(13)
        for values in (
            np.arange(1024),
            rng.integers(0, 1 << 62, size=4096),
            rng.integers(0, 2**64, size=4096, dtype=np.uint64),
            np.array([1 << 90, (1 << 70) | 1], dtype=object),
        ):
            fast = bitops.parity(values)
            np.testing.assert_array_equal(fast, bitops.parity_reference(values))

    def test_parity_scalar_type(self):
        assert isinstance(bitops.parity(6), int)
        assert isinstance(bitops.parity(np.int64(6)), int)

    def test_inner_product_sign_scalar(self):
        # <i, j> counts shared set bits: 0b110 & 0b011 = 0b010 -> odd -> -1.
        assert bitops.inner_product_sign(0b110, 0b011) == -1
        assert bitops.inner_product_sign(0b110, 0b110) == 1
        assert bitops.inner_product_sign(0, 0b1111) == 1

    def test_inner_product_sign_array_broadcast(self):
        i = np.arange(8)
        signs = bitops.inner_product_sign(i, 0b101)
        expected = [1 - 2 * (int(v).bit_count() & 1) for v in (i & 0b101)]
        assert signs.tolist() == expected

    def test_sign_symmetry(self):
        for i in range(16):
            for j in range(16):
                assert bitops.inner_product_sign(i, j) == bitops.inner_product_sign(j, i)


class TestSubsetRelation:
    def test_scalar_subset(self):
        assert bitops.is_subset(0b010, 0b110)
        assert bitops.is_subset(0, 0b110)
        assert bitops.is_subset(0b110, 0b110)
        assert not bitops.is_subset(0b001, 0b110)

    def test_array_subset(self):
        alphas = np.array([0b00, 0b01, 0b10, 0b11])
        result = bitops.is_subset(alphas, 0b10)
        assert result.tolist() == [True, False, True, False]


class TestSubmaskEnumeration:
    def test_submasks_of_zero(self):
        assert list(bitops.submasks(0)) == [0]

    def test_submasks_count(self):
        beta = 0b1011
        subs = list(bitops.submasks(beta))
        assert len(subs) == 8
        assert len(set(subs)) == 8
        assert all(bitops.is_subset(sub, beta) for sub in subs)

    def test_strict_submasks_excludes_self(self):
        beta = 0b101
        subs = list(bitops.strict_submasks(beta))
        assert beta not in subs
        assert len(subs) == 3


class TestWeightEnumeration:
    def test_masks_of_weight_counts(self):
        for d in (3, 5, 8):
            for k in range(d + 1):
                masks = bitops.masks_of_weight(d, k)
                assert len(masks) == math.comb(d, k)
                assert all(bitops.popcount(m) == k for m in masks)

    def test_masks_of_weight_sorted_unique(self):
        masks = bitops.masks_of_weight(6, 3)
        assert masks == sorted(set(masks))

    def test_masks_of_weight_out_of_range(self):
        assert bitops.masks_of_weight(4, 5) == []
        assert bitops.masks_of_weight(4, -1) == []
        assert bitops.masks_of_weight(4, 0) == [0]

    def test_masks_up_to_weight(self):
        masks = bitops.masks_up_to_weight(5, 2)
        assert len(masks) == 5 + 10
        assert 0 not in masks
        with_zero = bitops.masks_up_to_weight(5, 2, include_zero=True)
        assert with_zero[0] == 0
        assert len(with_zero) == 16


class TestPositions:
    def test_bit_positions_roundtrip(self):
        for mask in (0, 0b1, 0b1010, 0b11111, 1 << 12):
            positions = bitops.bit_positions(mask)
            assert bitops.mask_from_positions(positions) == mask

    def test_mask_from_positions_rejects_negative(self):
        with pytest.raises(ValueError):
            bitops.mask_from_positions([-1])


class TestCompression:
    def test_compress_expand_roundtrip(self):
        beta = 0b10110
        for compact in range(1 << 3):
            expanded = bitops.expand_index(compact, beta)
            assert bitops.is_subset(expanded, beta)
            assert bitops.compress_index(expanded, beta) == compact

    def test_compress_ignores_bits_outside_beta(self):
        beta = 0b0101
        assert bitops.compress_index(0b1111, beta) == bitops.compress_index(0b0101, beta)

    def test_vectorised_matches_scalar(self):
        beta = 0b11010
        indices = np.arange(32)
        vectorised = bitops.compress_indices(indices & beta, beta)
        scalar = [bitops.compress_index(int(i) & beta, beta) for i in indices]
        assert vectorised.tolist() == scalar

    def test_expand_indices_matches_scalar(self):
        beta = 0b01101
        compacts = np.arange(8)
        vectorised = bitops.expand_indices(compacts, beta)
        scalar = [bitops.expand_index(int(c), beta) for c in compacts]
        assert vectorised.tolist() == scalar


class TestIterateAssignments:
    def test_cells_cover_marginal(self):
        beta = 0b1101
        cells = list(bitops.iterate_assignments(beta))
        assert len(cells) == 8
        assert all(bitops.is_subset(cell, beta) for cell in cells)
        assert len(set(cells)) == 8

    def test_order_matches_compact_index(self):
        beta = 0b110
        cells = list(bitops.iterate_assignments(beta))
        assert cells == [bitops.expand_index(r, beta) for r in range(4)]
