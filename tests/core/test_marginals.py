"""Unit tests for the marginal operator and MarginalTable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.core.exceptions import MarginalQueryError
from repro.core.marginals import (
    MarginalTable,
    MarginalWorkload,
    full_distribution_from_indices,
    marginal_from_indices,
    marginal_operator,
    max_absolute_error,
    total_variation_distance,
)


@pytest.fixture
def domain() -> Domain:
    return Domain(["a", "b", "c", "d"])


@pytest.fixture
def distribution(rng) -> np.ndarray:
    values = rng.random(16)
    return values / values.sum()


class TestMarginalOperator:
    def test_paper_example(self, domain):
        # Example 3.1: d=4, beta=0101 selects attributes a (bit 0) and c (bit 2).
        distribution = np.zeros(16)
        distribution[0b0000] = 0.1
        distribution[0b0010] = 0.2
        distribution[0b1000] = 0.3
        distribution[0b1010] = 0.4
        table = marginal_operator(distribution, 0b0101, domain)
        # All mass has a=0, c=0, so the first compact cell holds everything.
        assert table.values[0] == pytest.approx(1.0)
        assert table.values[1:].sum() == pytest.approx(0.0)

    def test_preserves_total_mass(self, domain, distribution):
        for beta in (0b0001, 0b0110, 0b1111, 0b1010):
            table = marginal_operator(distribution, beta, domain)
            assert table.values.sum() == pytest.approx(distribution.sum())

    def test_full_marginal_is_distribution(self, domain, distribution):
        table = marginal_operator(distribution, 0b1111, domain)
        np.testing.assert_allclose(table.values, distribution)

    def test_rejects_wrong_length(self, domain):
        with pytest.raises(MarginalQueryError):
            marginal_operator(np.ones(8), 0b11, domain)

    def test_matches_indices_based_computation(self, rng, domain):
        indices = rng.integers(0, 16, size=5000)
        distribution = full_distribution_from_indices(indices, 16)
        for beta in (0b0011, 0b1100, 0b0101):
            from_distribution = marginal_operator(distribution, beta, domain)
            from_indices = marginal_from_indices(indices, beta, domain)
            np.testing.assert_allclose(
                from_distribution.values, from_indices.values, atol=1e-12
            )


class TestFullDistribution:
    def test_normalised(self, rng):
        indices = rng.integers(0, 8, size=1000)
        distribution = full_distribution_from_indices(indices, 8)
        assert distribution.sum() == pytest.approx(1.0)
        assert distribution.shape == (8,)

    def test_rejects_out_of_range(self):
        with pytest.raises(MarginalQueryError):
            full_distribution_from_indices(np.array([0, 9]), 8)

    def test_rejects_empty(self):
        with pytest.raises(MarginalQueryError):
            full_distribution_from_indices(np.array([], dtype=int), 8)


class TestMarginalTable:
    def test_cell_lookup(self, domain):
        table = MarginalTable(domain, 0b0011, np.array([0.1, 0.2, 0.3, 0.4]))
        assert table.cell({"a": 0, "b": 0}) == pytest.approx(0.1)
        assert table.cell({"a": 1, "b": 0}) == pytest.approx(0.2)
        assert table.cell({"a": 0, "b": 1}) == pytest.approx(0.3)
        assert table.cell({"a": 1, "b": 1}) == pytest.approx(0.4)

    def test_cell_rejects_wrong_assignment(self, domain):
        table = MarginalTable(domain, 0b0011, np.full(4, 0.25))
        with pytest.raises(MarginalQueryError):
            table.cell({"a": 0})
        with pytest.raises(MarginalQueryError):
            table.cell({"a": 0, "b": 2})

    def test_rejects_wrong_cell_count(self, domain):
        with pytest.raises(MarginalQueryError):
            MarginalTable(domain, 0b0011, np.ones(8))

    def test_normalized_clips_and_sums_to_one(self, domain):
        table = MarginalTable(domain, 0b0011, np.array([-0.1, 0.4, 0.5, 0.4]))
        normalised = table.normalized()
        assert normalised.values.min() >= 0
        assert normalised.values.sum() == pytest.approx(1.0)

    def test_normalized_handles_all_nonpositive(self, domain):
        table = MarginalTable(domain, 0b0011, np.array([-0.1, -0.2, 0.0, -0.3]))
        normalised = table.normalized()
        np.testing.assert_allclose(normalised.values, np.full(4, 0.25))

    def test_counts(self, domain):
        table = MarginalTable(domain, 0b0001, np.array([0.25, 0.75]))
        np.testing.assert_allclose(table.counts(1000), [250.0, 750.0])
        with pytest.raises(MarginalQueryError):
            table.counts(0)

    def test_marginalize(self, domain, distribution):
        full = marginal_operator(distribution, 0b0111, domain)
        sub = full.marginalize(0b0011)
        direct = marginal_operator(distribution, 0b0011, domain)
        np.testing.assert_allclose(sub.values, direct.values, atol=1e-12)

    def test_marginalize_rejects_non_subset(self, domain, distribution):
        table = marginal_operator(distribution, 0b0011, domain)
        with pytest.raises(MarginalQueryError):
            table.marginalize(0b0100)
        with pytest.raises(MarginalQueryError):
            table.marginalize(0)

    def test_total_variation_distance_method(self, domain):
        first = MarginalTable(domain, 0b0001, np.array([0.2, 0.8]))
        second = MarginalTable(domain, 0b0001, np.array([0.5, 0.5]))
        assert first.total_variation_distance(second) == pytest.approx(0.3)
        other = MarginalTable(domain, 0b0010, np.array([0.5, 0.5]))
        with pytest.raises(MarginalQueryError):
            first.total_variation_distance(other)

    def test_to_dict(self, domain):
        table = MarginalTable(domain, 0b0011, np.array([0.1, 0.2, 0.3, 0.4]))
        mapping = table.to_dict()
        assert mapping[(0, 0)] == pytest.approx(0.1)
        assert mapping[(1, 1)] == pytest.approx(0.4)
        assert len(mapping) == 4

    def test_attribute_names_and_width(self, domain):
        table = MarginalTable(domain, 0b1010, np.full(4, 0.25))
        assert table.attribute_names == ["b", "d"]
        assert table.width == 2


class TestDistances:
    def test_total_variation(self):
        assert total_variation_distance([0.5, 0.5], [0.5, 0.5]) == 0
        assert total_variation_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_max_absolute_error(self):
        assert max_absolute_error([0.2, 0.8], [0.4, 0.6]) == pytest.approx(0.2)

    def test_shape_mismatch(self):
        with pytest.raises(MarginalQueryError):
            total_variation_distance([0.5, 0.5], [1.0])
        with pytest.raises(MarginalQueryError):
            max_absolute_error([0.5, 0.5], [1.0])


class TestWorkload:
    def test_contains(self, domain):
        workload = MarginalWorkload(domain, 2)
        assert 0b0011 in workload
        assert 0b0001 in workload
        assert 0b0111 not in workload
        assert 0 not in workload

    def test_marginal_enumeration(self, domain):
        workload = MarginalWorkload(domain, 2)
        assert len(workload.marginals(1)) == 4
        assert len(workload.marginals(2)) == 6
        assert len(workload) == 10

    def test_validate(self, domain):
        workload = MarginalWorkload(domain, 2)
        assert workload.validate(0b0011) == 0b0011
        with pytest.raises(MarginalQueryError):
            workload.validate(0b0111)

    def test_rejects_bad_width(self, domain):
        with pytest.raises(MarginalQueryError):
            MarginalWorkload(domain, 0)
        with pytest.raises(MarginalQueryError):
            MarginalWorkload(domain, 5)
        workload = MarginalWorkload(domain, 2)
        with pytest.raises(MarginalQueryError):
            workload.marginals(3)
