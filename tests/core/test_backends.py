"""Kernel-backend registry: conformance matrix, selection order, fallback.

Backend choice is a pure performance knob — every backend must produce
*identical* integer support counts and popcount/parity results, and a bad
choice (unknown name, missing optional dependency) must degrade to a
working backend with a logged warning, never break an aggregation.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.core import bitops
from repro.core.backends import (
    BACKEND_ENV_VAR,
    HAS_NUMBA,
    NumbaBackend,
    NumpyBackend,
    ThreadedBackend,
    available_backends,
    get_backend,
    registered_backends,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.core.exceptions import ProtocolConfigurationError
from repro.core.privacy import PrivacyBudget
from repro.mechanisms.local_hashing import OptimizedLocalHashing
from repro.server.server import install_uvloop

try:
    import uvloop  # type: ignore

    HAS_UVLOOP = True
except ImportError:
    uvloop = None
    HAS_UVLOOP = False


def _conformance_backends():
    """Every available backend, with the threaded one also forced onto its
    thread pool (instance-level threshold override) so small test inputs
    exercise the fan-out path, not just the small-input passthrough."""
    backends = [NumpyBackend(), ThreadedBackend()]
    pooled = ThreadedBackend(max_workers=3)
    pooled.min_work_elements = 1  # force the pool even for tiny inputs
    backends.append(pooled)
    if HAS_NUMBA:  # pragma: no cover - optional-deps CI job only
        backends.append(NumbaBackend())
    return backends


@pytest.fixture(params=_conformance_backends(), ids=lambda b: f"{b.name}")
def backend(request):
    return request.param


@pytest.fixture(autouse=True)
def _clean_selection_state(monkeypatch):
    """Isolate each test from ambient env/default backend selection."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    set_default_backend(None)
    yield
    set_default_backend(None)


class TestConformanceMatrix:
    def test_popcount_matches_reference(self, backend):
        rng = np.random.default_rng(5)
        words = rng.integers(0, 2**63, size=4097, dtype=np.int64).astype(
            np.uint64
        )
        np.testing.assert_array_equal(
            backend.popcount(words), bitops.popcount_reference(words)
        )

    def test_parity_matches_reference(self, backend):
        rng = np.random.default_rng(6)
        words = rng.integers(0, 2**63, size=4097, dtype=np.int64).astype(
            np.uint64
        )
        np.testing.assert_array_equal(
            backend.parity(words), bitops.parity_reference(words)
        )

    @pytest.mark.parametrize("num_buckets", [4, 5])
    def test_support_counts_match_reference(self, backend, num_buckets):
        """Exact-count equality on pow2 (mask fold) and non-pow2 (modulo)
        bucket counts; the reference is the pre-optimization full-height
        hash-matrix scan."""
        oracle = OptimizedLocalHashing(
            domain_size=64,
            budget=PrivacyBudget(np.log(3.0)),
            num_buckets=num_buckets,
        )
        rng = np.random.default_rng(20180610)
        users = 301
        seeds = rng.integers(0, 2**62, size=users, dtype=np.int64)
        noisy = rng.integers(0, num_buckets, size=users, dtype=np.int64)
        reference = oracle.support_counts_reference(seeds, noisy)
        observed = backend.support_counts(
            seeds, noisy, oracle.domain_size, oracle.num_buckets, 16
        )
        np.testing.assert_array_equal(observed.astype(np.float64), reference)

    def test_support_counts_batch_size_invisible(self, backend):
        oracle = OptimizedLocalHashing(
            domain_size=32, budget=PrivacyBudget(np.log(3.0))
        )
        rng = np.random.default_rng(9)
        seeds = rng.integers(0, 2**62, size=97, dtype=np.int64)
        noisy = rng.integers(0, oracle.num_buckets, size=97, dtype=np.int64)
        counts = [
            backend.support_counts(
                seeds, noisy, oracle.domain_size, oracle.num_buckets, batch
            )
            for batch in (1, 7, 32, 1024)
        ]
        for other in counts[1:]:
            np.testing.assert_array_equal(counts[0], other)


class TestSelectionOrder:
    def test_registry_contents(self):
        assert registered_backends() == ("numba", "numpy", "threaded")
        assert "numpy" in available_backends()
        assert "threaded" in available_backends()

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threaded")
        assert resolve_backend("numpy").name == "numpy"

    def test_env_wins_over_default(self, monkeypatch):
        set_default_backend("threaded")
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend().name == "numpy"

    def test_default_wins_over_auto(self):
        set_default_backend("numpy")
        assert resolve_backend().name == "numpy"

    def test_auto_is_a_valid_name_at_every_level(self, monkeypatch):
        auto = resolve_backend("auto").name
        assert auto in ("numpy", "threaded")
        monkeypatch.setenv(BACKEND_ENV_VAR, "auto")
        assert resolve_backend().name == auto

    def test_use_backend_restores_previous_default(self):
        set_default_backend("numpy")
        with use_backend("threaded") as backend:
            assert backend.name == "threaded"
            assert resolve_backend().name == "threaded"
        assert resolve_backend().name == "numpy"

    def test_set_default_backend_rejects_unknown_names(self):
        with pytest.raises(ProtocolConfigurationError, match="unknown"):
            set_default_backend("cuda")

    def test_get_backend_rejects_unknown_names(self):
        with pytest.raises(ProtocolConfigurationError, match="unknown"):
            get_backend("cuda")


class TestGracefulFallback:
    def test_unknown_env_name_warns_and_falls_back(self, monkeypatch, caplog):
        from repro.core import backends as module

        monkeypatch.setattr(module, "_WARNED", set())
        monkeypatch.setenv(BACKEND_ENV_VAR, "definitely-not-a-backend")
        with caplog.at_level(logging.WARNING, logger="repro.core.backends"):
            backend = resolve_backend()
        assert backend.name in ("numpy", "threaded")
        assert any(
            "definitely-not-a-backend" in record.message
            for record in caplog.records
        )

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed: no fallback")
    def test_missing_numba_warns_and_falls_back(self, monkeypatch, caplog):
        from repro.core import backends as module

        monkeypatch.setattr(module, "_WARNED", set())
        with caplog.at_level(logging.WARNING, logger="repro.core.backends"):
            backend = resolve_backend("numba")
        assert backend.name in ("numpy", "threaded")
        assert any("not available" in record.message for record in caplog.records)

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed: no fallback")
    def test_missing_numba_is_unavailable_not_unknown(self):
        assert "numba" in registered_backends()
        assert "numba" not in available_backends()
        with pytest.raises(ProtocolConfigurationError, match="not available"):
            get_backend("numba")

    def test_fallback_warning_fires_once_per_name(self, monkeypatch, caplog):
        from repro.core import backends as module

        monkeypatch.setattr(module, "_WARNED", set())
        monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
        with caplog.at_level(logging.WARNING, logger="repro.core.backends"):
            resolve_backend()
            resolve_backend()
        warnings = [r for r in caplog.records if "bogus" in r.message]
        assert len(warnings) == 1


class TestUvloopFallback:
    @pytest.mark.skipif(HAS_UVLOOP, reason="uvloop installed: no fallback")
    def test_absent_uvloop_warns_and_returns_false(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.server.server"):
            assert install_uvloop() is False
        assert any("uvloop" in record.message for record in caplog.records)

    @pytest.mark.skipif(HAS_UVLOOP, reason="uvloop installed: no fallback")
    def test_absent_uvloop_raises_when_required(self):
        with pytest.raises(ProtocolConfigurationError, match="uvloop"):
            install_uvloop(required=True)

    @pytest.mark.skipif(not HAS_UVLOOP, reason="uvloop not installed")
    def test_present_uvloop_installs(self):  # pragma: no cover
        import asyncio

        previous = asyncio.get_event_loop_policy()
        try:
            assert install_uvloop() is True
        finally:
            asyncio.set_event_loop_policy(previous)
