"""Unit tests for randomness helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_deterministic(self):
        first = ensure_rng(42).integers(0, 1000, size=5)
        second = ensure_rng(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(first, second)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator


class TestSpawnRngs:
    def test_count_and_independence(self):
        children = spawn_rngs(7, 4)
        assert len(children) == 4
        draws = [child.integers(0, 2**31, size=3).tolist() for child in children]
        # Distinct streams should not produce identical draws.
        assert len({tuple(d) for d in draws}) == 4

    def test_reproducible_from_seed(self):
        first = [g.integers(0, 100, size=2).tolist() for g in spawn_rngs(3, 3)]
        second = [g.integers(0, 100, size=2).tolist() for g in spawn_rngs(3, 3)]
        assert first == second

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, 0)
