"""Unit tests for the Domain type."""

from __future__ import annotations

import pytest

from repro.core.domain import Domain
from repro.core.exceptions import DomainError, MarginalQueryError


class TestConstruction:
    def test_named_attributes(self):
        domain = Domain(["x", "y", "z"])
        assert domain.dimension == 3
        assert domain.size == 8
        assert domain.full_mask == 0b111

    def test_binary_constructor(self):
        domain = Domain.binary(5)
        assert domain.dimension == 5
        assert domain.attributes == tuple(f"attr{i}" for i in range(5))

    def test_rejects_empty(self):
        with pytest.raises(DomainError):
            Domain([])
        with pytest.raises(DomainError):
            Domain.binary(0)

    def test_rejects_duplicates(self):
        with pytest.raises(DomainError):
            Domain(["a", "a"])

    def test_rejects_huge_dimension(self):
        with pytest.raises(DomainError):
            Domain.binary(31)

    def test_len(self):
        assert len(Domain.binary(7)) == 7


class TestMasks:
    def test_index_of(self):
        domain = Domain(["CC", "Toll", "Far"])
        assert domain.index_of("CC") == 0
        assert domain.index_of("Far") == 2
        with pytest.raises(DomainError):
            domain.index_of("Tip")

    def test_mask_of_names(self):
        domain = Domain(["a", "b", "c", "d"])
        assert domain.mask_of("a") == 0b0001
        assert domain.mask_of(["b", "d"]) == 0b1010
        assert domain.mask_of(["d", "b"]) == 0b1010

    def test_mask_of_integer_passthrough(self):
        domain = Domain.binary(4)
        assert domain.mask_of(0b1010) == 0b1010

    def test_mask_of_integer_out_of_range(self):
        domain = Domain.binary(3)
        with pytest.raises(MarginalQueryError):
            domain.mask_of(8)
        with pytest.raises(MarginalQueryError):
            domain.mask_of(-1)

    def test_names_of(self):
        domain = Domain(["a", "b", "c", "d"])
        assert domain.names_of(0b1010) == ["b", "d"]
        assert domain.names_of(0) == []


class TestMarginalValidation:
    def test_validate_rejects_empty_marginal(self):
        domain = Domain.binary(4)
        with pytest.raises(MarginalQueryError):
            domain.validate_marginal(0)

    def test_validate_enforces_max_width(self):
        domain = Domain.binary(4)
        assert domain.validate_marginal(0b0011, max_width=2) == 0b0011
        with pytest.raises(MarginalQueryError):
            domain.validate_marginal(0b0111, max_width=2)

    def test_all_marginals_counts(self):
        import math

        domain = Domain.binary(6)
        for k in (1, 2, 3):
            assert len(domain.all_marginals(k)) == math.comb(6, k)

    def test_all_marginals_rejects_bad_width(self):
        domain = Domain.binary(4)
        with pytest.raises(MarginalQueryError):
            domain.all_marginals(0)
        with pytest.raises(MarginalQueryError):
            domain.all_marginals(5)

    def test_full_kway_workload(self):
        import math

        domain = Domain.binary(5)
        workload = domain.full_kway_workload(2)
        assert len(workload) == math.comb(5, 1) + math.comb(5, 2)
