"""Property-based tests for the Hadamard/bit-algebra substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitops, hadamard
from repro.core.domain import Domain
from repro.core.marginals import marginal_operator

dimensions = st.integers(min_value=1, max_value=6)


@st.composite
def mask_pairs(draw):
    d = draw(dimensions)
    alpha = draw(st.integers(min_value=0, max_value=(1 << d) - 1))
    beta = draw(st.integers(min_value=0, max_value=(1 << d) - 1))
    return d, alpha, beta


@st.composite
def distributions(draw):
    d = draw(dimensions)
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1 << d,
            max_size=1 << d,
        )
    )
    values = np.asarray(weights, dtype=np.float64)
    if values.sum() <= 0:
        values = np.ones(1 << d)
    return d, values / values.sum()


class TestBitopsProperties:
    @given(mask_pairs())
    def test_subset_iff_and_equals(self, data):
        _, alpha, beta = data
        assert bitops.is_subset(alpha, beta) == ((alpha & beta) == alpha)

    @given(mask_pairs())
    def test_compress_expand_consistency(self, data):
        _, alpha, beta = data
        compact = bitops.compress_index(alpha & beta, beta)
        assert bitops.expand_index(compact, beta) == (alpha & beta)
        assert 0 <= compact < (1 << bitops.popcount(beta))

    @given(mask_pairs())
    def test_inner_product_sign_multiplicative_on_disjoint_parts(self, data):
        d, alpha, beta = data
        j = alpha  # arbitrary index
        low = beta & 0b0101010101
        high = beta & ~0b0101010101
        product = bitops.inner_product_sign(j, low) * bitops.inner_product_sign(j, high)
        assert bitops.inner_product_sign(j, low | high) == product

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_submasks_count_matches_popcount(self, beta):
        count = sum(1 for _ in bitops.submasks(beta))
        assert count == (1 << bitops.popcount(beta))


class TestHadamardProperties:
    @settings(max_examples=40, deadline=None)
    @given(distributions())
    def test_transform_roundtrip(self, data):
        _, distribution = data
        coefficients = hadamard.scaled_coefficients(distribution)
        recovered = hadamard.distribution_from_scaled_coefficients(coefficients)
        np.testing.assert_allclose(recovered, distribution, atol=1e-10)

    @settings(max_examples=40, deadline=None)
    @given(distributions())
    def test_coefficients_bounded_by_one(self, data):
        _, distribution = data
        coefficients = hadamard.scaled_coefficients(distribution)
        assert np.all(np.abs(coefficients) <= 1.0 + 1e-9)
        assert coefficients[0] == 1.0 or np.isclose(coefficients[0], 1.0)

    @settings(max_examples=40, deadline=None)
    @given(distributions(), st.data())
    def test_lemma_3_7_reconstruction(self, data, picker):
        """Any marginal equals its Barak-et-al. coefficient reconstruction."""
        d, distribution = data
        beta = picker.draw(st.integers(min_value=1, max_value=(1 << d) - 1))
        domain = Domain.binary(d)
        coefficients = hadamard.scaled_coefficients(distribution)
        expected = marginal_operator(distribution, beta, domain).values
        reconstructed = hadamard.marginal_from_scaled_coefficients(beta, coefficients)
        np.testing.assert_allclose(reconstructed, expected, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(distributions())
    def test_transform_linearity(self, data):
        _, distribution = data
        other = np.roll(distribution, 1)
        combined = 0.5 * distribution + 0.5 * other
        lhs = hadamard.scaled_coefficients(combined)
        rhs = 0.5 * hadamard.scaled_coefficients(distribution) + 0.5 * hadamard.scaled_coefficients(other)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)
