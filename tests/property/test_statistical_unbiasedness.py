"""Seeded unbiasedness checks: mean estimates converge to the true marginal.

The conformance matrix proves the parallel path is *identical* to the serial
one, but both could share a silent bias (say, a future vectorisation bug
de-biasing with the wrong count).  These tests pin statistical correctness
itself: for every registered protocol the mean marginal estimate over ``R``
independent seeded runs must land within a tolerance of the dataset's true
marginal.

Two tolerances are used:

* for the six core protocols the paper gives total-variation error bounds
  (Table 2, evaluated by :func:`repro.theory.bounds.error_bound`); averaging
  ``R`` independent unbiased runs shrinks the error by ``sqrt(R)``, so the
  mean must satisfy ``TV <= 1.5 * error_bound / sqrt(R)`` — comfortably wide
  for an unbiased estimator (observed margins are >= 2x under these seeds)
  and far too tight for a biased one to slip through;
* for every protocol (including the baselines, which have no worst-case
  bound) a per-cell z-test: ``|mean - truth| <= 4.5 * SEM`` where SEM is the
  empirical standard error of the mean.  That catches any bias large
  relative to the protocol's own noise.

Everything is seeded, so the suite is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.privacy import PrivacyBudget
from repro.core.rng import spawn_rngs
from repro.datasets import BinaryDataset
from repro.protocols.registry import PROTOCOL_CLASSES, make_protocol
from repro.theory.bounds import error_bound

LN3 = float(np.log(3.0))

N, D, WIDTH = 2048, 4, 2
REPEATS = 32
BETA = 0b0011

#: The InpHTCMS sketch is biased by hash collisions when it is much smaller
#: than the domain; a 1024-wide sketch over 2^4 cells makes collisions (and
#: therefore the bias) negligible at test scale.
PROTOCOL_OPTIONS = {"InpHTCMS": {"num_hashes": 5, "width": 1024}}

#: Protocols with a Table 2 error bound (the paper's own six).
BOUNDED_PROTOCOLS = ("InpRR", "InpPS", "InpHT", "MargRR", "MargPS", "MargHT")

ALL_PROTOCOLS = sorted(PROTOCOL_CLASSES)


@pytest.fixture(scope="module")
def dataset() -> BinaryDataset:
    rng = np.random.default_rng(123)
    marginal_probs = rng.random(D) * 0.6 + 0.2
    records = (rng.random((N, D)) < marginal_probs).astype(np.int8)
    return BinaryDataset.from_records(records)


@pytest.fixture(scope="module")
def repeated_estimates(dataset):
    """``(R, 2^WIDTH)`` per-protocol estimate stacks for the BETA marginal."""
    stacks = {}
    for name in ALL_PROTOCOLS:
        # A per-protocol name-seeded stream: each protocol's repeats stay
        # pinned to the same seeds no matter what else joins the registry.
        master = np.random.default_rng([20260729, *name.encode("ascii")])
        protocol = make_protocol(
            name, PrivacyBudget(LN3), WIDTH, **PROTOCOL_OPTIONS.get(name, {})
        )
        stacks[name] = np.array(
            [
                protocol.run(dataset, rng=child).query(BETA).values
                for child in spawn_rngs(master, REPEATS)
            ]
        )
    return stacks


@pytest.fixture(scope="module")
def truth(dataset) -> np.ndarray:
    return dataset.marginal(BETA).values


@pytest.mark.parametrize("name", BOUNDED_PROTOCOLS)
def test_mean_estimate_within_paper_error_bound(name, repeated_estimates, truth):
    mean_estimate = repeated_estimates[name].mean(axis=0)
    tv = 0.5 * np.abs(mean_estimate - truth).sum()
    tolerance = 1.5 * error_bound(name, D, WIDTH, LN3, N) / np.sqrt(REPEATS)
    assert tv <= tolerance, (
        f"{name}: TV of the {REPEATS}-run mean is {tv:.4f}, exceeding the "
        f"bound-derived tolerance {tolerance:.4f} — the estimator looks biased"
    )


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_mean_estimate_unbiased_per_cell(name, repeated_estimates, truth):
    stack = repeated_estimates[name]
    mean_estimate = stack.mean(axis=0)
    sem = stack.std(axis=0, ddof=1) / np.sqrt(REPEATS)
    z = np.abs(mean_estimate - truth) / np.maximum(sem, 1e-12)
    assert np.max(z) <= 4.5, (
        f"{name}: cell deviations {np.abs(mean_estimate - truth)} are "
        f"{np.max(z):.2f} standard errors from the true marginal"
    )


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_estimates_are_finite_with_unit_mass_on_average(name, repeated_estimates):
    """Tables are finite, and their total mass is 1 in expectation.

    A single run's mass fluctuates with the unbiased noise (several tenths
    at this N/eps), but the mean over ``R`` runs must concentrate at 1 —
    a direct check of the de-biasing normalisation.
    """
    stack = repeated_estimates[name]
    assert np.isfinite(stack).all()
    mean_mass = float(stack.sum(axis=1).mean())
    assert abs(mean_mass - 1.0) <= 0.1, (
        f"{name}: mean table mass {mean_mass:.3f} is not concentrating at 1"
    )
