"""Property-based tests for mechanism unbiasedness and protocol invariants."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.privacy import PrivacyBudget
from repro.mechanisms.direct_encoding import DirectEncoding
from repro.mechanisms.randomized_response import (
    BitRandomizedResponse,
    SignRandomizedResponse,
)
from repro.mechanisms.unary_encoding import UnaryEncoding

epsilons = st.floats(min_value=0.2, max_value=4.0, allow_nan=False)
frequencies = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestExactUnbiasingIdentities:
    """The de-biasing transforms invert the perturbation *in expectation*,
    which is an algebraic identity we can check without sampling."""

    @given(epsilons, frequencies)
    def test_bit_rr_identity(self, epsilon, frequency):
        mechanism = BitRandomizedResponse.from_budget(PrivacyBudget(epsilon))
        p = mechanism.keep_probability
        expected_observed = p * frequency + (1 - p) * (1 - frequency)
        assert np.isclose(mechanism.unbias_mean(expected_observed), frequency)

    @given(epsilons, st.floats(min_value=-1.0, max_value=1.0, allow_nan=False))
    def test_sign_rr_identity(self, epsilon, value):
        mechanism = SignRandomizedResponse.from_budget(PrivacyBudget(epsilon))
        expected_observed = mechanism.attenuation * value
        assert np.isclose(mechanism.unbias_mean(expected_observed), value)

    @given(epsilons, frequencies, st.booleans())
    def test_unary_encoding_identity(self, epsilon, frequency, optimized):
        mechanism = UnaryEncoding.from_budget(PrivacyBudget(epsilon), optimized=optimized)
        p = mechanism.probability_keep_one
        q = mechanism.probability_zero_to_one
        expected_observed = frequency * p + (1 - frequency) * q
        assert np.isclose(mechanism.unbias_mean(expected_observed), frequency)

    @given(epsilons, frequencies, st.integers(min_value=2, max_value=64))
    def test_direct_encoding_identity(self, epsilon, frequency, domain_size):
        mechanism = DirectEncoding.from_budget(PrivacyBudget(epsilon), domain_size)
        p = mechanism.keep_probability
        q = mechanism.lie_probability
        expected_observed = frequency * p + (1 - frequency) * q
        assert np.isclose(
            mechanism.unbias_frequencies(np.array([expected_observed]))[0], frequency
        )

    @given(epsilons)
    def test_mechanism_epsilon_roundtrip(self, epsilon):
        budget = PrivacyBudget(epsilon)
        assert np.isclose(BitRandomizedResponse.from_budget(budget).epsilon, epsilon)
        assert np.isclose(SignRandomizedResponse.from_budget(budget).epsilon, epsilon)
        assert np.isclose(UnaryEncoding.optimized(budget).epsilon, epsilon)
        assert np.isclose(UnaryEncoding.symmetric(budget).epsilon, epsilon)
        assert np.isclose(
            DirectEncoding.from_budget(budget, 10).epsilon, epsilon
        )


class TestProtocolInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from(["InpHT", "InpPS", "MargPS", "MargHT", "MargRR"]),
        st.integers(min_value=3, max_value=6),
        epsilons,
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_released_marginals_are_finite_and_near_normalised(
        self, name, dimension, epsilon, seed
    ):
        from repro.datasets.synthetic import uniform_dataset
        from repro.protocols.registry import make_protocol

        rng = np.random.default_rng(seed)
        dataset = uniform_dataset(512, dimension, rng=rng)
        protocol = make_protocol(name, PrivacyBudget(epsilon), 2)
        estimator = protocol.run(dataset, rng=rng)
        table = estimator.query(dataset.attribute_names[:2])
        assert np.isfinite(table.values).all()
        # Unbiased estimates need not be exact distributions, but their total
        # mass stays bounded around 1.  The spread grows as epsilon shrinks
        # and as the N=512 users are split over the C(d, 2) marginals (the
        # Marg* protocols' per-cell noise scales like 1/(eps sqrt(users per
        # marginal)) for small eps), so the tolerance must scale the same
        # way or sampling finds legitimate >1.5 deviations at eps ~ 0.5.
        users_per_marginal = 512 / math.comb(dimension, 2)
        tolerance = 1.0 + 25.0 / (epsilon * math.sqrt(users_per_marginal))
        assert abs(table.values.sum() - 1.0) < tolerance

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=2**31 - 1))
    def test_normalized_query_is_a_distribution(self, dimension, seed):
        from repro.datasets.synthetic import uniform_dataset
        from repro.protocols.inp_ht import InpHT

        rng = np.random.default_rng(seed)
        dataset = uniform_dataset(256, dimension, rng=rng)
        estimator = InpHT(PrivacyBudget(1.0), 2).run(dataset, rng=rng)
        table = estimator.query(dataset.attribute_names[:2]).normalized()
        assert table.values.min() >= 0
        assert np.isclose(table.values.sum(), 1.0)
