"""Property tests: streaming accumulators are mergeable and shard-invariant.

For every registered protocol the aggregation state must behave like a
mergeable summary: folding report batches ``x`` and ``y`` into two separate
accumulators and merging them has to finalise into *exactly* the estimates of
a single accumulator fed ``x`` then ``y``, and the number of shards used by
``run_streaming`` must be invisible in the estimates.  All accumulated
statistics are integer-valued sums (counts, 0/1 bit sums, ``+/-1`` sign
sums), so these equalities hold bit-for-bit, not just approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.privacy import PrivacyBudget
from repro.datasets import BinaryDataset
from repro.protocols.registry import PROTOCOL_CLASSES, make_protocol

LN3 = float(np.log(3.0))

#: Smaller sketch so the InpHTCMS cases stay fast at test scale.
PROTOCOL_OPTIONS = {"InpHTCMS": {"num_hashes": 3, "width": 32}}

ALL_PROTOCOLS = sorted(PROTOCOL_CLASSES)


@pytest.fixture(scope="module")
def dataset() -> BinaryDataset:
    rng = np.random.default_rng(97)
    marginals_prob = rng.random(5) * 0.6 + 0.2
    records = (rng.random((1536, 5)) < marginals_prob).astype(np.int8)
    return BinaryDataset.from_records(records)


def build(name: str):
    options = PROTOCOL_OPTIONS.get(name, {})
    return make_protocol(name, PrivacyBudget(LN3), 2, **options)


def all_tables(estimator):
    return {beta: table.values for beta, table in estimator.query_all().items()}


def assert_identical_estimates(left, right):
    left_tables, right_tables = all_tables(left), all_tables(right)
    assert left_tables.keys() == right_tables.keys()
    for beta in left_tables:
        np.testing.assert_array_equal(left_tables[beta], right_tables[beta])


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_merge_matches_single_pass_aggregation(name, dataset):
    """merge(A.update(x), B.update(y)).finalize() == single pass over x + y."""
    protocol = build(name)
    rng = np.random.default_rng(20180610)
    half = dataset.size // 2
    x = protocol.encode_batch(dataset.records[:half], rng=rng)
    y = protocol.encode_batch(dataset.records[half:], rng=rng)

    single = protocol.accumulator(dataset.domain).update(x).update(y).finalize()
    shard_a = protocol.accumulator(dataset.domain).update(x)
    shard_b = protocol.accumulator(dataset.domain).update(y)
    merged = shard_a.merge(shard_b).finalize()

    assert shard_a.num_reports == dataset.size
    assert_identical_estimates(single, merged)


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_merge_is_commutative(name, dataset):
    """merge(B, A) finalises to the same estimates as merge(A, B)."""
    protocol = build(name)
    rng = np.random.default_rng(4)
    third = dataset.size // 3
    x = protocol.encode_batch(dataset.records[:third], rng=rng)
    y = protocol.encode_batch(dataset.records[third:], rng=rng)

    ab = (
        protocol.accumulator(dataset.domain)
        .update(x)
        .merge(protocol.accumulator(dataset.domain).update(y))
        .finalize()
    )
    ba = (
        protocol.accumulator(dataset.domain)
        .update(y)
        .merge(protocol.accumulator(dataset.domain).update(x))
        .finalize()
    )
    assert_identical_estimates(ab, ba)


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_sharded_streaming_reproduces_run(name, dataset):
    """Explicit encode -> update -> finalize equals the legacy run() path."""
    protocol = build(name)
    legacy = protocol.run(dataset, rng=np.random.default_rng(11))

    rng = np.random.default_rng(11)
    reports = protocol.encode_batch(dataset.records, rng=rng)
    streamed = protocol.accumulator(dataset.domain).update(reports).finalize()
    assert_identical_estimates(legacy, streamed)


@pytest.mark.parametrize("name", ALL_PROTOCOLS)
def test_shard_count_does_not_change_estimates(name, dataset):
    """For a fixed seed and batch size, shards are invisible in the output."""
    protocol = build(name)
    one = protocol.run_streaming(
        dataset, rng=np.random.default_rng(5), batch_size=256, shards=1
    )
    many = protocol.run_streaming(
        dataset, rng=np.random.default_rng(5), batch_size=256, shards=4
    )
    assert_identical_estimates(one, many)
