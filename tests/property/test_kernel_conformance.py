"""Property tests: the vectorised kernel fast paths equal their references.

Every optimised kernel keeps its pre-optimisation implementation around
(`popcount_reference`, `fwht_reference`, `support_counts_reference`, raw
noisy records for EM) and this suite proves the fast paths bit-for-bit
equal — or, for the end-to-end protocol decodes, that the finalized
estimates are exactly unchanged across kernels, batch sizes, shard counts
and execution backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bitops, hadamard
from repro.core.privacy import PrivacyBudget
from repro.datasets import BinaryDataset
from repro.execution import make_executor
from repro.mechanisms.local_hashing import OptimizedLocalHashing
from repro.protocols.inp_em import EMEstimator, InpEM
from repro.protocols.inp_olh import InpOLH
from repro.protocols.registry import make_protocol

LN3 = float(np.log(3.0))


@pytest.fixture(scope="module")
def dataset() -> BinaryDataset:
    rng = np.random.default_rng(97)
    marginals_prob = rng.random(5) * 0.6 + 0.2
    records = (rng.random((1536, 5)) < marginals_prob).astype(np.int8)
    return BinaryDataset.from_records(records)


def all_tables(estimator):
    return {beta: table.values for beta, table in estimator.query_all().items()}


def assert_identical_estimates(left, right):
    left_tables, right_tables = all_tables(left), all_tables(right)
    assert left_tables.keys() == right_tables.keys()
    for beta in left_tables:
        np.testing.assert_array_equal(left_tables[beta], right_tables[beta])


class TestBitopsConformance:
    def test_popcount_random_words(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            width = int(rng.integers(1, 64))
            values = rng.integers(0, 1 << width, size=int(rng.integers(1, 2000)))
            np.testing.assert_array_equal(
                bitops.popcount(values), bitops.popcount_reference(values)
            )

    def test_parity_random_words(self):
        rng = np.random.default_rng(6)
        for _ in range(20):
            values = rng.integers(0, 2**64, size=1000, dtype=np.uint64)
            np.testing.assert_array_equal(
                bitops.parity(values), bitops.parity_reference(values)
            )

    def test_inner_product_sign_small_domain_exhaustive(self):
        i = np.arange(256)[:, None]
        j = np.arange(256)[None, :]
        signs = bitops.inner_product_sign(i, j)
        expected = 1 - 2 * (bitops.popcount_reference(i & j) & 1)
        np.testing.assert_array_equal(signs, expected)


class TestFwhtConformance:
    def test_fwht_random_vectors(self):
        rng = np.random.default_rng(8)
        for d in range(11):
            vector = rng.normal(size=1 << d)
            np.testing.assert_array_equal(
                hadamard.fwht(vector), hadamard.fwht_reference(vector)
            )

    def test_fwht_rows_random_matrices(self):
        rng = np.random.default_rng(9)
        for rows, n in ((1, 1), (7, 64), (31, 256)):
            matrix = rng.normal(size=(rows, n))
            expected = np.stack([hadamard.fwht_reference(row) for row in matrix])
            np.testing.assert_array_equal(hadamard.fwht_rows(matrix), expected)


class TestOLHSupportConformance:
    @pytest.fixture(scope="class")
    def reports(self):
        rng = np.random.default_rng(12)
        oracle = OptimizedLocalHashing(domain_size=1 << 8, budget=PrivacyBudget(LN3))
        values = rng.integers(0, oracle.domain_size, size=3000)
        seeds, noisy = oracle.perturb(values, rng=rng)
        return oracle, seeds, noisy

    def test_fast_matches_reference(self, reports):
        oracle, seeds, noisy = reports
        reference = oracle.support_counts_reference(seeds, noisy)
        np.testing.assert_array_equal(
            oracle.support_counts(seeds, noisy), reference
        )

    @pytest.mark.parametrize("batch_size", [1, 3, 17, 256, 4096])
    def test_batch_size_is_invisible(self, reports, batch_size):
        oracle, seeds, noisy = reports
        np.testing.assert_array_equal(
            oracle.support_counts(seeds, noisy, batch_size=batch_size),
            oracle.support_counts_reference(seeds, noisy),
        )

    def test_empty_reports(self, reports):
        oracle, _, _ = reports
        empty = np.zeros(0, dtype=np.int64)
        np.testing.assert_array_equal(
            oracle.support_counts(empty, empty),
            np.zeros(oracle.domain_size),
        )

    @pytest.mark.parametrize("decode_batch_size", [1, 7, 100, 10_000])
    def test_protocol_decode_batch_size_is_invisible(
        self, dataset, decode_batch_size
    ):
        baseline = InpOLH(PrivacyBudget(LN3), 2).run(
            dataset, rng=np.random.default_rng(42)
        )
        tuned = InpOLH(
            PrivacyBudget(LN3), 2, decode_batch_size=decode_batch_size
        ).run(dataset, rng=np.random.default_rng(42))
        assert_identical_estimates(baseline, tuned)


class TestEMSufficientStatisticConformance:
    def test_histogram_decode_matches_record_decode(self, dataset):
        """The accumulator's 2^d histogram loses nothing the EM decode uses."""
        protocol = InpEM(PrivacyBudget(2.0))
        reports = protocol.encode_batch(dataset, rng=np.random.default_rng(3))
        domain = dataset.domain

        streamed = (
            protocol.accumulator(domain).update(reports).finalize()
        )
        from_records = EMEstimator.from_noisy_records(
            protocol.workload_for(domain),
            reports.noisy_records,
            keep_probability=protocol.per_attribute_mechanism(
                domain.dimension
            ).keep_probability,
            convergence_threshold=protocol.convergence_threshold,
            max_iterations=10000,
        )
        np.testing.assert_array_equal(
            streamed.pattern_counts, from_records.pattern_counts
        )
        for beta in streamed.workload.marginals():
            ours = streamed.query_with_diagnostics(beta)
            theirs = from_records.query_with_diagnostics(beta)
            np.testing.assert_array_equal(ours.table.values, theirs.table.values)
            assert ours.iterations == theirs.iterations
            assert ours.converged == theirs.converged
            assert ours.failed == theirs.failed

    def test_accumulator_memory_is_constant_in_users(self, dataset):
        """State is one 2^d int64 histogram regardless of report volume."""
        protocol = InpEM(PrivacyBudget(1.0))
        accumulator = protocol.accumulator(dataset.domain)
        rng = np.random.default_rng(4)
        for _ in range(5):
            accumulator.update(protocol.encode_batch(dataset, rng=rng))
        state = accumulator.state_dict()
        assert set(state) == {"pattern_counts", "num_reports"}
        assert state["pattern_counts"].shape == (dataset.domain.size,)
        assert state["pattern_counts"].dtype == np.int64
        assert state["pattern_counts"].sum() == 5 * dataset.size
        assert state["num_reports"] == 5 * dataset.size

    def test_likelihood_matrix_is_cached_across_queries(self, dataset):
        protocol = InpEM(PrivacyBudget(2.0))
        estimator = protocol.run(dataset, rng=np.random.default_rng(5))
        marginals = list(estimator.workload.marginals(2))
        estimator.query_with_diagnostics(marginals[0])
        cached = estimator._likelihood(2)
        for beta in marginals[1:]:
            estimator.query_with_diagnostics(beta)
        assert estimator._likelihood(2) is cached


class TestProtocolExecutorConformance:
    """The kernel fast paths are invisible across streaming/parallel drivers."""

    @pytest.mark.parametrize("name", ["InpEM", "InpOLH", "MargHT", "InpHTCMS"])
    @pytest.mark.parametrize("executor_name", ["serial", "thread", "process"])
    def test_streaming_parallel_unchanged(self, name, executor_name, dataset):
        options = {"InpHTCMS": {"num_hashes": 3, "width": 32}}.get(name, {})
        protocol = make_protocol(name, PrivacyBudget(LN3), 2, **options)
        baseline = protocol.run_streaming(
            dataset, rng=np.random.default_rng(20180610), batch_size=257, shards=3
        )
        with make_executor(executor_name, 2) as executor:
            parallel = protocol.run_streaming(
                dataset,
                rng=np.random.default_rng(20180610),
                batch_size=257,
                shards=3,
                executor=executor,
            )
        assert_identical_estimates(baseline, parallel)
