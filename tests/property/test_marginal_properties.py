"""Property-based tests for marginal-algebra invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitops
from repro.core.domain import Domain
from repro.core.marginals import marginal_operator, total_variation_distance


@st.composite
def distributions_with_masks(draw):
    d = draw(st.integers(min_value=2, max_value=6))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1 << d,
            max_size=1 << d,
        )
    )
    values = np.asarray(weights, dtype=np.float64)
    if values.sum() <= 0:
        values = np.ones(1 << d)
    distribution = values / values.sum()
    beta = draw(st.integers(min_value=1, max_value=(1 << d) - 1))
    return d, distribution, beta


class TestMarginalOperatorProperties:
    @settings(max_examples=60, deadline=None)
    @given(distributions_with_masks())
    def test_mass_preservation(self, data):
        d, distribution, beta = data
        table = marginal_operator(distribution, beta, Domain.binary(d))
        assert np.isclose(table.values.sum(), 1.0)
        assert np.all(table.values >= -1e-12)

    @settings(max_examples=60, deadline=None)
    @given(distributions_with_masks(), st.data())
    def test_marginalisation_commutes(self, data, picker):
        """C_{beta'}(t) == marginalise(C_beta(t)) for any beta' ⪯ beta."""
        d, distribution, beta = data
        domain = Domain.binary(d)
        submasks = [m for m in bitops.submasks(beta) if m not in (0,)]
        sub = picker.draw(st.sampled_from(submasks))
        direct = marginal_operator(distribution, sub, domain)
        via_parent = marginal_operator(distribution, beta, domain).marginalize(sub)
        np.testing.assert_allclose(direct.values, via_parent.values, atol=1e-10)

    @settings(max_examples=60, deadline=None)
    @given(distributions_with_masks())
    def test_marginalisation_is_contraction_in_tv(self, data):
        """Post-processing (marginalising) never increases TV distance."""
        d, distribution, beta = data
        domain = Domain.binary(d)
        other = np.roll(distribution, 3)
        full_distance = total_variation_distance(distribution, other)
        table_first = marginal_operator(distribution, beta, domain)
        table_second = marginal_operator(other, beta, domain)
        marginal_distance = table_first.total_variation_distance(table_second)
        assert marginal_distance <= full_distance + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(distributions_with_masks())
    def test_normalized_is_idempotent(self, data):
        d, distribution, beta = data
        table = marginal_operator(distribution, beta, Domain.binary(d))
        once = table.normalized()
        twice = once.normalized()
        np.testing.assert_allclose(once.values, twice.values, atol=1e-12)
