"""Unit tests for the heavy-hitter discovery walk and the HH protocol.

The generic pipeline suites (mergeability, wire round-trip, sessions,
sockets, topology invariance) already enroll ``HH`` through the registry;
these tests pin the discovery-specific behaviour: the level plan, the
prune/expand walk, the adaptive thresholds, the keep-the-top fallback,
and the itemset readings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.core.exceptions import ProtocolConfigurationError
from repro.core.marginals import MarginalWorkload
from repro.core.privacy import PrivacyBudget
from repro.datasets import BinaryDataset
from repro.heavyhitters import (
    DiscoveryConfig,
    HeavyHitterEstimator,
    HeavyHitters,
    exact_top_k,
    precision_recall,
)
from repro.service import AggregationSession

LN3 = float(np.log(3.0))


def skewed_records(n: int, d: int, hot: int, share: float, seed: int = 5):
    """``share`` of the users sit on cell ``hot``, the rest are uniform."""
    rng = np.random.default_rng(seed)
    indices = np.where(
        rng.random(n) < share, hot, rng.integers(0, 1 << d, size=n)
    )
    bits = (indices[:, None] >> np.arange(d)[None, :]) & 1
    return BinaryDataset.from_records(bits.astype(np.int8))


class TestLevelPlan:
    def test_fanout_two_over_eight_bits(self):
        protocol = HeavyHitters(PrivacyBudget(LN3), 2, fanout=2)
        assert protocol.level_plan(8) == (2, 4, 6, 8)

    def test_ragged_last_level(self):
        protocol = HeavyHitters(PrivacyBudget(LN3), 2, fanout=3)
        assert protocol.level_plan(8) == (3, 6, 8)

    def test_single_level_when_fanout_covers_domain(self):
        protocol = HeavyHitters(PrivacyBudget(LN3), 2, fanout=8)
        assert protocol.level_plan(4) == (4,)

    def test_bad_config_raises(self):
        with pytest.raises(ProtocolConfigurationError):
            HeavyHitters(PrivacyBudget(LN3), 2, oracle="InpRR")
        with pytest.raises(ProtocolConfigurationError):
            HeavyHitters(PrivacyBudget(LN3), 2, fanout=0)
        with pytest.raises(ProtocolConfigurationError):
            HeavyHitters(PrivacyBudget(LN3), 2, threshold=1.5)
        with pytest.raises(ProtocolConfigurationError):
            HeavyHitters(PrivacyBudget(LN3), 2, top_k=0)

    def test_communication_bits_positive(self):
        for oracle in ("InpOLH", "InpHT", "InpHTCMS"):
            protocol = HeavyHitters(PrivacyBudget(LN3), 2, oracle=oracle)
            assert protocol.communication_bits(8) > 0


class TestExactTopK:
    def test_ranks_by_count_then_index(self):
        records = np.array(
            [[1, 0], [1, 0], [1, 0], [0, 1], [0, 1], [1, 1]], dtype=np.int8
        )
        # cell 1 (=attr0) x3, cell 2 (=attr1) x2, cell 3 x1, cell 0 x0.
        assert exact_top_k(records, 3) == (1, 2, 3)
        assert exact_top_k(records, 10) == (1, 2, 3, 0)

    def test_rejects_bad_k(self):
        with pytest.raises(ProtocolConfigurationError):
            exact_top_k(np.zeros((4, 2), dtype=np.int8), 0)

    def test_precision_recall(self):
        assert precision_recall((1, 2, 3), (1, 2, 4, 5)) == (2 / 3, 0.5)
        assert precision_recall((), (1,)) == (0.0, 0.0)
        assert precision_recall((1,), ()) == (0.0, 0.0)


def synthetic_estimator(
    level_distributions, level_bits, level_reports, threshold=0.0, top_k=2
):
    domain = Domain.binary(level_bits[-1])
    workload = MarginalWorkload(domain, max_width=2)
    config = DiscoveryConfig(
        oracle="InpOLH",
        epsilon=LN3,
        fanout=level_bits[0],
        threshold=threshold,
        top_k=top_k,
        num_hashes=5,
        width=256,
    )
    return HeavyHitterEstimator(
        workload, level_bits, level_distributions, level_reports, config
    )


class TestDiscoveryWalk:
    def test_fixed_threshold_prunes_and_expands(self):
        # Level 0 (2 bits): only prefix 0b01 is hot.  Level 1 (4 bits):
        # its children 0b0101 and 0b1001 split the mass.
        level0 = np.array([0.05, 0.80, 0.05, 0.10])
        level1 = np.zeros(16)
        level1[0b0101] = 0.55
        level1[0b1001] = 0.25
        estimator = synthetic_estimator(
            [level0, level1], (2, 4), (50, 50), threshold=0.2
        )
        result = estimator.discover(top_k=2)
        assert result.indices == (0b0101, 0b1001)
        assert result.candidates_per_level == (4, 4)
        assert result.survivors_per_level == (1, 2)
        assert result.thresholds == (0.2, 0.2)

    def test_harsh_threshold_falls_back_to_keep_the_top(self):
        level0 = np.array([0.4, 0.3, 0.2, 0.1])
        estimator = synthetic_estimator(
            [level0], (2,), (50,), threshold=0.9, top_k=2
        )
        result = estimator.discover()
        # Nothing clears 0.9; the top-2 survive anyway.
        assert result.indices == (0, 1)
        assert result.survivors_per_level == (2,)

    def test_empty_level_gets_infinite_threshold(self):
        level0 = np.array([0.4, 0.3, 0.2, 0.1])
        estimator = synthetic_estimator([level0], (2,), (0,), top_k=2)
        result = estimator.discover()
        assert result.thresholds == (np.inf,)
        assert result.indices == (0, 1)  # keep-the-top fallback

    def test_discover_validates_arguments(self):
        estimator = synthetic_estimator(
            [np.full(4, 0.25)], (2,), (10,)
        )
        with pytest.raises(ProtocolConfigurationError):
            estimator.discover(top_k=0)
        with pytest.raises(ProtocolConfigurationError):
            estimator.discover(threshold=-0.1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ProtocolConfigurationError):
            synthetic_estimator([np.zeros(3)], (2,), (10,))
        with pytest.raises(ProtocolConfigurationError):
            synthetic_estimator([np.zeros(4), np.zeros(16)], (2,), (10,))


class TestEndToEnd:
    @pytest.mark.parametrize("oracle", ["InpOLH", "InpHT", "InpHTCMS"])
    def test_planted_hitter_is_discovered(self, oracle):
        dataset = skewed_records(6000, 6, hot=0b100101, share=0.5)
        protocol = HeavyHitters(
            PrivacyBudget(3.0), 2, oracle=oracle, fanout=2, top_k=4
        )
        estimator = protocol.run_streaming(
            dataset, np.random.default_rng(17), batch_size=1500
        )
        result = estimator.discover()
        assert result.indices[0] == 0b100101
        top = result.hitters[0]
        assert top.half_width > 0
        assert abs(top.frequency - 0.5) < 3 * top.half_width

    def test_confidence_widens_the_interval(self):
        dataset = skewed_records(2000, 4, hot=0b1010, share=0.6)
        protocol = HeavyHitters(PrivacyBudget(LN3), 2, fanout=2)
        estimator = protocol.run_streaming(
            dataset, np.random.default_rng(3)
        )
        narrow = estimator.discover(confidence=0.8)
        wide = estimator.discover(confidence=0.99)
        assert wide.hitters[0].half_width > narrow.hitters[0].half_width
        # A higher confidence also raises the adaptive pruning cut, so the
        # survivor *lists* may differ — but the planted cell tops both.
        assert narrow.indices[0] == wide.indices[0] == 0b1010

    def test_itemset_frequencies_follow_the_planted_cell(self):
        dataset = skewed_records(8000, 4, hot=0b0011, share=0.7, seed=9)
        protocol = HeavyHitters(PrivacyBudget(3.0), 2, fanout=2)
        estimator = protocol.run_streaming(
            dataset, np.random.default_rng(23)
        )
        pair = estimator.itemset_frequency(["attr0", "attr1"])
        assert pair > 0.5  # ~0.7 plus the uniform background
        itemsets = estimator.frequent_itemsets(min_frequency=0.4)
        names = [names for names, _ in itemsets]
        assert ("attr0", "attr1") in names
        frequencies = [frequency for _, frequency in itemsets]
        assert frequencies == sorted(frequencies, reverse=True)
        with pytest.raises(ProtocolConfigurationError):
            estimator.frequent_itemsets(0.1, max_size=3)  # width is 2


class TestSessionDeterminism:
    def test_discovery_is_invariant_to_frame_grouping(self):
        """The satellite bar: any split of the same frames over sessions
        merges to a bit-for-bit identical DiscoveryResult."""
        dataset = skewed_records(900, 6, hot=0b110001, share=0.5, seed=13)
        protocol = HeavyHitters(PrivacyBudget(LN3), 2, fanout=3, top_k=4)
        rng = np.random.default_rng(41)
        from repro.core.rng import spawn_rngs

        frames = [
            protocol.encode_batch(chunk, rng=child).to_bytes()
            for chunk, child in zip(
                dataset.iter_batches(100), spawn_rngs(rng, 9)
            )
        ]
        domain = Domain.binary(6)

        single = AggregationSession(protocol.spec(), domain)
        for frame in frames:
            single.submit(frame)

        left = AggregationSession(protocol.spec(), domain)
        right = AggregationSession(protocol.spec(), domain)
        for index, frame in enumerate(frames):
            (left if index % 2 else right).submit(frame)
        left.merge(right)

        baseline = single.snapshot().discover().to_dict()
        assert left.snapshot().discover().to_dict() == baseline

    def test_discovery_survives_checkpoint_restore(self, tmp_path):
        dataset = skewed_records(600, 4, hot=0b0110, share=0.5, seed=29)
        protocol = HeavyHitters(PrivacyBudget(LN3), 2, fanout=2, top_k=3)
        session = AggregationSession(protocol.spec(), Domain.binary(4))
        session.submit(
            protocol.encode_batch(
                dataset.records, rng=np.random.default_rng(7)
            ).to_bytes()
        )
        baseline = session.snapshot().discover().to_dict()
        path = tmp_path / "hh.npz"
        session.checkpoint(path)
        restored = AggregationSession.restore(path)
        assert restored.snapshot().discover().to_dict() == baseline
