"""CLI tests for the ``repro hh`` verbs and the discovery listing role."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestListing:
    def test_json_listing_carries_the_discovery_role(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entry = payload["protocols"]["HH"]
        assert entry["role"] == "discovery"
        assert entry["core"] is False
        for option in ("oracle", "fanout", "threshold", "top_k"):
            assert option in entry["options"]
        assert payload["protocols"]["InpHT"]["role"] == "core"
        assert payload["protocols"]["InpOLH"]["role"] == "baseline"

    def test_human_table_shows_the_discovery_family(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "HH" in output
        assert "discovery" in output
        assert "baseline" in output


class TestEncodeAggregate:
    def test_round_trip_discovers_and_checkpoints(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        frames_path = tmp_path / "frames.bin"
        checkpoint = tmp_path / "ckpt.npz"
        json_path = tmp_path / "hh.json"
        assert main([
            "hh", "encode",
            "--epsilon", "1.4",
            "-n", "3000", "-d", "6", "--seed", "11",
            "--batch-size", "1000",
            "--spec-out", str(spec_path),
            "--output", str(frames_path),
        ]) == 0
        capsys.readouterr()
        spec = json.loads(spec_path.read_text())
        assert spec["protocol"] == "HH"
        assert main([
            "hh", "aggregate",
            "--spec", str(spec_path), "-d", "6",
            "--input", str(frames_path),
            "--checkpoint", str(checkpoint),
            "--json", str(json_path),
        ]) == 0
        output = capsys.readouterr().out
        assert "heavy hitters" in output
        payload = json.loads(json_path.read_text())
        assert payload["num_reports"] == 3000
        hitters = payload["discovery"]["hitters"]
        assert hitters, "discovery returned no hitters"
        baseline = payload["discovery"]

        # Restoring the checkpoint re-discovers the identical result.
        json_again = tmp_path / "again.json"
        assert main([
            "hh", "aggregate",
            "--restore", str(checkpoint),
            "--input", "none",
            "--json", str(json_again),
        ]) == 0
        capsys.readouterr()
        assert json.loads(json_again.read_text())["discovery"] == baseline

    def test_top_k_override_at_discovery_time(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        frames_path = tmp_path / "frames.bin"
        assert main([
            "hh", "encode", "--epsilon", "1.4", "-n", "1000", "-d", "4",
            "--top-k", "6",
            "--spec-out", str(spec_path), "--output", str(frames_path),
        ]) == 0
        capsys.readouterr()
        json_path = tmp_path / "k2.json"
        assert main([
            "hh", "aggregate", "--spec", str(spec_path), "-d", "4",
            "--input", str(frames_path), "--top-k", "2",
            "--json", str(json_path),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(json_path.read_text())
        assert len(payload["discovery"]["hitters"]) == 2

    def test_non_hh_spec_is_rejected(self, tmp_path, capsys):
        spec_path = tmp_path / "inpht.json"
        frames_path = tmp_path / "frames.bin"
        assert main([
            "encode", "--protocol", "InpHT", "--epsilon", "1.0",
            "--width", "2", "-n", "100", "-d", "4",
            "--spec-out", str(spec_path), "--output", str(frames_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "hh", "aggregate", "--spec", str(spec_path), "-d", "4",
            "--input", str(frames_path),
        ]) == 2
        assert "not the HH discovery protocol" in capsys.readouterr().err

    def test_restore_excludes_contract_flags(self, tmp_path, capsys):
        assert main([
            "hh", "aggregate", "--restore", "nowhere.npz",
            "--spec", "also-a-spec.json",
        ]) == 2
        assert "--restore carries" in capsys.readouterr().err


class TestDiscover:
    def test_local_discovery_scores_against_exact_top_k(
        self, tmp_path, capsys
    ):
        json_path = tmp_path / "discover.json"
        assert main([
            "hh", "discover",
            "--epsilon", "3.0", "--dataset", "skewed",
            "-n", "20000", "-d", "6", "--fanout", "3",
            "--seed", "7", "--top-k", "4",
            "--json", str(json_path),
        ]) == 0
        output = capsys.readouterr().out
        assert "precision" in output and "recall" in output
        payload = json.loads(json_path.read_text())
        assert payload["mode"] == "local"
        assert payload["num_reports"] == 20000
        assert len(payload["exact_top_k"]) == 4
        assert 0.0 <= payload["precision"] <= 1.0
        assert 0.0 <= payload["recall"] <= 1.0
        # Skewed data at eps=3 with 20k users is an easy instance; anything
        # below this bar means discovery (not noise) is broken.
        assert payload["recall"] >= 0.5

    def test_epsilon_required_without_topology(self, capsys):
        assert main(["hh", "discover", "-n", "100", "-d", "4"]) == 2
        assert "--epsilon is required" in capsys.readouterr().err

    def test_topology_mode_rejects_inline_epsilon(self, capsys):
        assert main([
            "hh", "discover", "--topology", "somewhere",
            "--epsilon", "1.0",
        ]) == 2
        assert "manifest" in capsys.readouterr().err
