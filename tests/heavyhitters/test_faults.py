"""Heavy-hitter discovery under faults.

Two satellite bars from the issue:

* the discovered top-k is **bit-for-bit identical** through a mid-stream
  collector SIGKILL (failover + durable-checkpoint recovery), compared
  against the flat ``run_streaming`` ground truth;
* a flipped byte in a *per-level* checkpoint array (``levelNN__*``) is
  detected at restore and the damaged checkpoint is quarantined, never
  silently folded into a discovery.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.core.exceptions import CheckpointIntegrityError
from repro.resilience.chaos import corrupt_checkpoint_array
from repro.resilience.integrity import quarantine_checkpoint
from repro.service import AggregationSession

from ..service.util import (
    SEED,
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)
from ..topology.harness import (
    KillPlan,
    collect_with_pull_faults,
    drive_fleet,
    flat_estimates,
    spawn_tree,
)

BATCH = 8  # 96 records -> 12 frames -> 12 single-frame groups


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


def hh_protocol():
    return build("HH")


class TestTopologyKill:
    def test_top_k_identical_through_collector_sigkill(
        self, dataset, tmp_path
    ):
        """Kill collector 1 mid-stream; the fan-in's DiscoveryResult must
        equal the flat streaming run field for field, bit for bit."""
        protocol = hh_protocol()
        domain = Domain.binary(dataset.dimension)
        frames = encode_frames(protocol, dataset, BATCH)
        assert len(frames) == 12

        async def scenario():
            with spawn_tree(protocol, domain, tmp_path) as supervisor:
                report = await drive_fleet(
                    supervisor,
                    protocol,
                    domain,
                    frames,
                    kill=KillPlan(
                        collector_index=1, client_id=0, group_index=1
                    ),
                )
                aggregator = await collect_with_pull_faults(supervisor)
                return report, aggregator

        report, aggregator = asyncio.run(scenario())
        assert report.acked_reports == dataset.size
        assert report.retries > 0, "no group ever hit the dead collector"
        assert "c1" in aggregator.collector_ids

        merged = aggregator.merged_session()
        assert merged.num_reports == dataset.size
        flat = protocol.run_streaming(
            dataset, np.random.default_rng(SEED), batch_size=BATCH
        )
        assert (
            merged.snapshot().discover().to_dict()
            == flat.discover().to_dict()
        )
        # Discovery equality must not come at the marginals' expense: the
        # generic ground truth the other suites use still holds too.
        assert_estimates_equal(
            estimates_of(merged.snapshot()),
            flat_estimates(protocol, dataset, BATCH),
        )


class TestPerLevelBitFlip:
    def test_flipped_level_array_is_detected_and_quarantined(
        self, dataset, tmp_path
    ):
        """Corrupt one byte in every per-level state array in turn."""
        protocol = hh_protocol()
        session = AggregationSession(
            protocol.spec(), Domain.binary(dataset.dimension)
        )
        for frame in encode_frames(protocol, dataset, 48):
            session.submit(frame)
        path = tmp_path / "hh-checkpoint.npz"
        session.checkpoint(path)
        pristine = path.read_bytes()
        with np.load(path, allow_pickle=False) as archive:
            level_arrays = [
                name
                for name in archive.files
                if name.startswith("state__level")
            ]
        # One namespaced array per level at least (HH over d=4, fanout=2
        # has levels 00 and 01).
        assert any("level00__" in name for name in level_arrays)
        assert any("level01__" in name for name in level_arrays)
        rng = np.random.default_rng(20260808)
        for array_name in level_arrays:
            path.write_bytes(pristine)
            corrupt_checkpoint_array(path, array_name, rng)
            with pytest.raises(
                CheckpointIntegrityError, match="failed integrity"
            ):
                AggregationSession.restore(path)
            quarantined, report = quarantine_checkpoint(
                path, f"hh chaos test flipped a byte in {array_name}"
            )
            assert quarantined is not None and quarantined.exists()
            assert array_name in report.read_text()
