"""Tests for the network collection service (repro.server)."""
