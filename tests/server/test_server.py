"""CollectionServer end to end: sockets, shards, faults, checkpoints.

The acceptance bar of the subsystem: for **every** protocol, reports
collected over real TCP connections — multiple shards, clients connecting,
churning and disconnecting concurrently — finalize to estimates bit-for-bit
identical to ``run_streaming`` on the same encoded reports, and the server
survives malformed frames and spec-mismatched clients with per-connection
rejection, not process death.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.backends import use_backend
from repro.core.domain import Domain
from repro.core.exceptions import (
    CollectionServiceError,
    ProtocolConfigurationError,
)
from repro.server import (
    ACK,
    ERR,
    FIN,
    HELLO,
    OK,
    CollectionServer,
    ControlMessage,
    FrameDecoder,
    LoadGenerator,
    encode_control,
    hello_payload,
    merge_checkpoints,
)
from repro.service import ProtocolSpec

from ..service.util import (
    ALL_PROTOCOLS,
    SEED,
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)

BATCH_SIZE = 16  # 96 records -> 6 frames


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


def collect_over_sockets(protocol, frames, domain, **kwargs):
    """Run a server + fleet round trip in one event loop; return the server."""
    loadgen_kwargs = {
        key: kwargs.pop(key)
        for key in (
            "num_clients",
            "frames_per_connection",
            "malformed_connections",
        )
        if key in kwargs
    }

    async def session():
        server = CollectionServer(
            protocol.spec(), domain, port=0, **kwargs
        )
        await server.start()
        fleet = LoadGenerator(
            protocol.spec(),
            domain,
            "127.0.0.1",
            server.port,
            frames=frames,
            **loadgen_kwargs,
        )
        report = await fleet.run()
        await server.stop()
        return server, report

    return asyncio.run(session())


async def raw_exchange(port, payloads):
    """Open one raw connection, send the byte strings, return the replies."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    decoder = FrameDecoder()
    replies = []
    try:
        for payload in payloads:
            writer.write(payload)
            await writer.drain()
            chunk = await asyncio.wait_for(reader.read(1 << 16), 10.0)
            if not chunk:
                replies.append(None)
                break
            replies.extend(decoder.feed(chunk))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return replies


class TestEndToEndEquality:
    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_socket_collection_matches_run_streaming(self, name, dataset):
        """The headline proof, per protocol: shards + concurrent clients +
        connection churn over real sockets == in-process run_streaming."""
        protocol = build(name)
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        server, report = collect_over_sockets(
            protocol,
            frames,
            dataset.domain,
            shards=3,
            num_clients=4,
            frames_per_connection=1,  # maximal churn: one frame per connection
        )
        assert report.acked_frames == len(frames)
        assert report.acked_reports == dataset.size
        assert server.num_reports == dataset.size
        expected = estimates_of(
            protocol.run_streaming(
                dataset,
                rng=np.random.default_rng(SEED),
                batch_size=BATCH_SIZE,
            )
        )
        assert_estimates_equal(estimates_of(server.finalize()), expected)

    @pytest.mark.parametrize("backend", ["numpy", "threaded"])
    def test_olh_socket_equality_per_kernel_backend(self, backend, dataset):
        """The headline proof holds under every kernel backend.

        The baseline runs under the ambient (auto) backend and the socket
        collection under an explicitly pinned one, so this also proves
        cross-backend equality: backend choice is a pure performance knob,
        invisible in the estimates.
        """
        protocol = build("InpOLH")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        expected = estimates_of(
            protocol.run_streaming(
                dataset,
                rng=np.random.default_rng(SEED),
                batch_size=BATCH_SIZE,
            )
        )
        with use_backend(backend):
            server, report = collect_over_sockets(
                protocol, frames, dataset.domain, shards=2, num_clients=3
            )
            assert report.acked_reports == dataset.size
            observed = estimates_of(server.finalize())
        assert_estimates_equal(observed, expected)

    def test_shard_counts_cover_all_sessions(self, dataset):
        protocol = build("InpRR")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        server, _ = collect_over_sockets(
            protocol,
            frames,
            dataset.domain,
            shards=3,
            num_clients=6,
            frames_per_connection=1,
        )
        shard_reports = server.stats()["shard_reports"]
        assert len(shard_reports) == 3
        assert sum(shard_reports) == dataset.size
        assert all(count > 0 for count in shard_reports)


class TestFaultTolerance:
    def test_malformed_frames_reject_connection_not_server(self, dataset):
        """Poison connections get ERR'd; the well-formed fleet's estimates
        still match the in-process baseline bit-for-bit."""
        protocol = build("InpHT")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        server, report = collect_over_sockets(
            protocol,
            frames,
            dataset.domain,
            shards=2,
            num_clients=3,
            malformed_connections=4,
        )
        assert report.rejected_connections == 4
        assert server.stats()["connections"]["rejected"] == 4
        expected = estimates_of(
            protocol.run_streaming(
                dataset,
                rng=np.random.default_rng(SEED),
                batch_size=BATCH_SIZE,
            )
        )
        assert_estimates_equal(estimates_of(server.finalize()), expected)

    def test_corrupt_payload_mid_stream_rejects_connection(self, dataset):
        """A frame whose npz payload is corrupted raises WireFormatError at
        submit; the server answers ERR and keeps serving."""
        protocol = build("InpHT")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        # Keep the valid frame header but replace the npz payload with
        # noise: the frame still parses at the transport layer, then fails
        # payload validation inside submit().
        from repro.protocols.wire import _parse_frame_header

        _, header_end, frame_end = _parse_frame_header(frames[0], 0)
        corrupted = frames[0][:header_end] + bytes(frame_end - header_end)

        async def session():
            server = CollectionServer(protocol.spec(), dataset.domain, port=0)
            await server.start()
            hello = encode_control(
                HELLO, hello_payload(protocol.spec(), dataset.domain.attributes)
            )
            replies = await raw_exchange(server.port, [hello, corrupted])
            # A well-formed client right after still completes.
            fleet = LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "127.0.0.1",
                server.port,
                frames=frames,
                num_clients=2,
            )
            report = await fleet.run()
            await server.stop()
            return server, report, replies

        server, report, replies = asyncio.run(session())
        assert replies[0].kind == OK
        errors = [
            reply
            for reply in replies[1:]
            if isinstance(reply, ControlMessage) and reply.kind == ERR
        ]
        assert errors and "corrupted" in errors[0].payload["error"]
        assert report.acked_reports == dataset.size
        assert server.num_reports == dataset.size  # corrupt frame added nothing

    def test_spec_mismatch_rejected_with_diff(self, dataset):
        protocol = build("InpHT", epsilon=1.1)
        mismatched = ProtocolSpec(protocol="InpHT", epsilon=0.5, max_width=2)

        async def session():
            server = CollectionServer(protocol.spec(), dataset.domain, port=0)
            await server.start()
            hello = encode_control(
                HELLO, hello_payload(mismatched, dataset.domain.attributes)
            )
            replies = await raw_exchange(server.port, [hello])
            # The mismatched client is gone; a matching fleet still works.
            frames = encode_frames(protocol, dataset, BATCH_SIZE)
            fleet = LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "127.0.0.1",
                server.port,
                frames=frames,
                num_clients=2,
            )
            report = await fleet.run()
            await server.stop()
            return server, report, replies

        server, report, replies = asyncio.run(session())
        (error,) = [r for r in replies if isinstance(r, ControlMessage)]
        assert error.kind == ERR
        assert error.payload["error"] == "spec mismatch"
        assert any("epsilon" in line for line in error.payload["diff"])
        assert report.acked_reports == dataset.size
        assert server.stats()["connections"]["rejected"] == 1

    def test_shape_mismatched_reports_rejected_per_connection(self, dataset):
        """Frames that decode fine but don't fit the domain (client encoded
        over a different dimension) earn an ERR, not a crashed handler."""
        protocol = build("InpRR")
        wrong_dimension = encode_frames(protocol, small_dataset(n=32, d=5), None)

        async def session():
            server = CollectionServer(protocol.spec(), dataset.domain, port=0)
            await server.start()
            hello = encode_control(
                HELLO, hello_payload(protocol.spec(), dataset.domain.attributes)
            )
            replies = await raw_exchange(
                server.port, [hello, wrong_dimension[0]]
            )
            # The server is still healthy for well-shaped clients.
            frames = encode_frames(protocol, dataset, BATCH_SIZE)
            fleet = LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "127.0.0.1",
                server.port,
                frames=frames,
                num_clients=2,
            )
            report = await fleet.run()
            await server.stop()
            return server, report, replies

        server, report, replies = asyncio.run(session())
        assert replies[0].kind == OK
        errors = [
            reply
            for reply in replies[1:]
            if isinstance(reply, ControlMessage) and reply.kind == ERR
        ]
        assert errors and "shape" in errors[0].payload["error"]
        assert server.stats()["connections"]["rejected"] == 1
        assert report.acked_reports == dataset.size
        assert server.num_reports == dataset.size

    def test_hostile_spec_values_rejected_per_connection(self, dataset):
        """A HELLO whose spec raises outside ProtocolConfigurationError
        (negative epsilon -> PrivacyBudgetError) still earns an ERR, not a
        silently crashed handler."""
        protocol = build("InpHT")
        hostile = protocol.spec().to_dict()
        hostile["epsilon"] = -1.0

        async def session():
            server = CollectionServer(protocol.spec(), dataset.domain, port=0)
            await server.start()
            hello = encode_control(
                HELLO,
                {"spec": hostile, "attributes": list(dataset.domain.attributes)},
            )
            replies = await raw_exchange(server.port, [hello])
            await server.stop()
            return server, replies

        server, replies = asyncio.run(session())
        (error,) = [r for r in replies if isinstance(r, ControlMessage)]
        assert error.kind == ERR
        assert any("spec:" in line for line in error.payload["diff"])
        assert server.stats()["connections"]["rejected"] == 1

    def test_loadgen_surfaces_spec_rejection(self, dataset):
        protocol = build("InpHT", epsilon=1.1)
        mismatched = ProtocolSpec(protocol="InpHT", epsilon=0.5, max_width=2)
        frames = encode_frames(protocol, dataset, BATCH_SIZE)

        async def session():
            server = CollectionServer(protocol.spec(), dataset.domain, port=0)
            await server.start()
            fleet = LoadGenerator(
                mismatched,
                dataset.domain,
                "127.0.0.1",
                server.port,
                frames=frames,
                num_clients=1,
            )
            try:
                with pytest.raises(
                    CollectionServiceError, match="rejected the HELLO"
                ):
                    await fleet.run()
            finally:
                await server.stop()

        asyncio.run(session())

    def test_report_frame_before_hello_rejected(self, dataset):
        protocol = build("InpRR")
        frames = encode_frames(protocol, dataset, None)

        async def session():
            server = CollectionServer(protocol.spec(), dataset.domain, port=0)
            await server.start()
            replies = await raw_exchange(server.port, [frames[0]])
            await server.stop()
            return server, replies

        server, replies = asyncio.run(session())
        (error,) = [r for r in replies if isinstance(r, ControlMessage)]
        assert error.kind == ERR
        assert "before HELLO" in error.payload["error"]
        assert server.num_reports == 0

    def test_client_vanishing_mid_frame_is_dropped_quietly(self, dataset):
        protocol = build("InpRR")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)

        async def session():
            server = CollectionServer(protocol.spec(), dataset.domain, port=0)
            await server.start()
            hello = encode_control(
                HELLO, hello_payload(protocol.spec(), dataset.domain.attributes)
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(hello)
            await writer.drain()
            await asyncio.wait_for(reader.read(1 << 16), 10.0)  # OK
            writer.write(frames[0][: len(frames[0]) // 2])
            await writer.drain()
            writer.close()  # vanish mid-frame, no FIN
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            # The server must still serve a full well-formed collection.
            fleet = LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "127.0.0.1",
                server.port,
                frames=frames,
                num_clients=2,
            )
            report = await fleet.run()
            await server.stop()
            return server, report

        server, report = asyncio.run(session())
        assert report.acked_reports == dataset.size
        assert server.num_reports == dataset.size
        assert server.stats()["connections"]["dropped"] == 1


class TestLifecycle:
    def test_stop_after_reports_shuts_down(self, dataset):
        protocol = build("InpRR")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)

        async def session():
            server = CollectionServer(
                protocol.spec(),
                dataset.domain,
                port=0,
                stop_after_reports=dataset.size,
            )
            await server.start()
            serve_task = asyncio.create_task(server.serve_until_stopped())
            fleet = LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "127.0.0.1",
                server.port,
                frames=frames,
                num_clients=3,
            )
            report = await fleet.run()
            await asyncio.wait_for(serve_task, 10.0)
            return server, report

        server, report = asyncio.run(session())
        assert server.stop_requested
        assert report.acked_reports == dataset.size

    def test_checkpoints_periodic_and_on_shutdown(self, dataset, tmp_path):
        protocol = build("InpHT")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)

        async def session():
            server = CollectionServer(
                protocol.spec(),
                dataset.domain,
                port=0,
                shards=2,
                checkpoint_dir=tmp_path,
                checkpoint_interval=0.05,
            )
            await server.start()
            fleet = LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "127.0.0.1",
                server.port,
                frames=frames,
                num_clients=2,
            )
            report = await fleet.run()
            await asyncio.sleep(0.2)  # let the periodic task fire
            await server.stop()
            return server, report

        server, _ = asyncio.run(session())
        assert server.stats()["checkpoints_written"] >= 2
        paths = sorted(tmp_path.glob("shard-*.npz"))
        assert len(paths) == 2
        assert not list(tmp_path.glob("*.tmp"))  # atomic writes leave no litter
        restored = merge_checkpoints(paths)
        assert restored.num_reports == dataset.size
        assert_estimates_equal(
            estimates_of(restored.snapshot()),
            estimates_of(server.finalize()),
        )

    def test_server_restarts_after_stop(self, dataset):
        """A stopped server may start again; the stale stop request from
        the first round must not make the second round exit immediately."""
        protocol = build("InpRR")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)

        async def session():
            server = CollectionServer(protocol.spec(), dataset.domain, port=0)
            await server.start()
            server.request_stop()
            await server.serve_until_stopped()
            # Second round: must actually serve, not bail on the old event.
            await server.start()
            assert not server.stop_requested
            fleet = LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "127.0.0.1",
                server.port,
                frames=frames,
                num_clients=2,
            )
            report = await fleet.run()
            await server.stop()
            return server, report

        server, report = asyncio.run(session())
        assert report.acked_reports == dataset.size
        assert server.num_reports == dataset.size

    def test_stats_snapshot(self, dataset):
        protocol = build("InpRR")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        server, report = collect_over_sockets(
            protocol, frames, dataset.domain, shards=2, num_clients=2
        )
        stats = server.stats()
        assert stats["frames"] == len(frames)
        assert stats["reports"] == dataset.size
        assert stats["bytes"] == sum(len(frame) for frame in frames)
        assert stats["connections"]["completed"] == 2
        assert stats["connections"]["active"] == 0
        assert stats["uptime_seconds"] > 0
        assert stats["reports_per_second"] > 0

    def test_constructor_validation(self, dataset):
        spec = build("InpRR").spec()
        with pytest.raises(ProtocolConfigurationError, match="shard count"):
            CollectionServer(spec, dataset.domain, shards=0)
        with pytest.raises(
            ProtocolConfigurationError, match="requires checkpoint_dir"
        ):
            CollectionServer(spec, dataset.domain, checkpoint_interval=5.0)
        with pytest.raises(
            ProtocolConfigurationError, match="stop_after_reports"
        ):
            CollectionServer(spec, dataset.domain, stop_after_reports=0)
        # max_frame_bytes fails at construction, never per connection.
        with pytest.raises(ProtocolConfigurationError, match="max_frame_bytes"):
            CollectionServer(spec, dataset.domain, max_frame_bytes=0)
        with pytest.raises(ProtocolConfigurationError, match="max_frame_bytes"):
            CollectionServer(spec, dataset.domain, max_frame_bytes=2 << 30)

    def test_checkpoint_without_dir_refused(self, dataset):
        server = CollectionServer(build("InpRR").spec(), dataset.domain)
        with pytest.raises(ProtocolConfigurationError, match="checkpoint_dir"):
            server.checkpoint()

    def test_merge_checkpoints_needs_paths(self):
        with pytest.raises(ProtocolConfigurationError, match="at least one"):
            merge_checkpoints([])
