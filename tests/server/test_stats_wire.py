"""The live STATS control frame and the HTTP scrape endpoint.

One server, real sockets: a fleet delivers reports, then a ``STATS``
probe (the same client ``repro watch`` uses) must answer with the
operational counters *and* a mergeable metrics snapshot, and the
Prometheus endpoint must serve a text exposition whose counters agree
with the stats and only ever move forward between scrapes.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.observability import MetricsSnapshot
from repro.observability.watch import request_stats, sample_targets
from repro.server import CollectionServer, LoadGenerator

from ..service.util import build, encode_frames, small_dataset

BATCH_SIZE = 16


async def http_get(host, port, path):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode("latin-1"))
    await writer.drain()
    blob = await reader.read()
    writer.close()
    head, _, body = blob.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    headers = {
        line.split(b":", 1)[0].decode().lower(): line.split(b":", 1)[1].strip().decode()
        for line in head.split(b"\r\n")[1:]
        if b":" in line
    }
    return status, headers, body.decode("utf-8")


def scrape_value(text, name):
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            return float(line.rsplit(" ", 1)[1])
    return None


@pytest.fixture(scope="module")
def probe_results():
    """One served collection, probed over STATS and the scrape endpoint."""
    dataset = small_dataset()
    protocol = build("InpRR")
    frames = encode_frames(protocol, dataset, BATCH_SIZE)

    async def session():
        server = CollectionServer(
            protocol.spec(),
            dataset.domain,
            port=0,
            shards=2,
            metrics_port=0,
        )
        await server.start()
        empty_scrape = await http_get(
            "127.0.0.1", server.metrics_port, "/metrics"
        )
        fleet = LoadGenerator(
            protocol.spec(),
            dataset.domain,
            "127.0.0.1",
            server.port,
            frames=frames,
            num_clients=3,
        )
        await fleet.run()
        stats_payload = await request_stats("127.0.0.1", server.port)
        sampled = await sample_targets(
            [("127.0.0.1", server.port), ("127.0.0.1", 1)], timeout=2.0
        )
        loaded_scrape = await http_get(
            "127.0.0.1", server.metrics_port, "/metrics"
        )
        health = await http_get("127.0.0.1", server.metrics_port, "/healthz")
        lost = await http_get("127.0.0.1", server.metrics_port, "/nope")
        await server.stop()
        return {
            "num_frames": len(frames),
            "num_reports": dataset.size,
            "empty_scrape": empty_scrape,
            "stats": stats_payload,
            "sampled": sampled,
            "loaded_scrape": loaded_scrape,
            "health": health,
            "lost": lost,
        }

    return asyncio.run(session())


def test_stats_answer_carries_operational_counters(probe_results):
    stats = probe_results["stats"]["stats"]
    assert stats["reports"] == probe_results["num_reports"]
    assert stats["frames"] == probe_results["num_frames"]
    assert sum(stats["shard_reports"]) == probe_results["num_reports"]
    assert stats["spec"]["protocol"] == "InpRR"
    assert stats["num_attributes"] == 4


def test_stats_answer_carries_a_mergeable_snapshot(probe_results):
    snapshot = MetricsSnapshot.from_state_dict(
        probe_results["stats"]["metrics"]
    )
    assert snapshot.total("repro_server_reports_total") == (
        probe_results["num_reports"]
    )
    # Mergeable exactly like checkpoints: doubling the snapshot doubles
    # the counters.
    doubled = snapshot.merge(snapshot)
    assert doubled.total("repro_server_reports_total") == (
        2 * probe_results["num_reports"]
    )


def test_sample_targets_mixes_answers_and_errors(probe_results):
    reachable, unreachable = probe_results["sampled"]
    assert reachable["stats"]["reports"] == probe_results["num_reports"]
    assert "error" in unreachable
    assert unreachable["target"] == "127.0.0.1:1"


def test_scrape_serves_prometheus_text(probe_results):
    status, headers, body = probe_results["loaded_scrape"]
    assert status == 200
    assert headers["content-type"].startswith("text/plain")
    assert "# TYPE repro_server_reports_total counter" in body
    assert scrape_value(body, "repro_server_reports_total") == (
        probe_results["num_reports"]
    )


def test_scrape_counters_are_monotonic(probe_results):
    # Before the first report the family exists but has no series yet
    # (a counter child materializes on its first increment), so an
    # absent sample reads as zero.
    before = scrape_value(
        probe_results["empty_scrape"][2], "repro_server_reports_total"
    ) or 0.0
    after = scrape_value(
        probe_results["loaded_scrape"][2], "repro_server_reports_total"
    )
    assert before == 0
    assert after == probe_results["num_reports"]
    assert after >= before


def test_health_and_unknown_paths(probe_results):
    assert probe_results["health"][0] == 200
    assert probe_results["health"][2] == "ok\n"
    assert probe_results["lost"][0] == 404
