"""MultiProcessCollector end to end: SO_REUSEPORT fleet, merged estimates.

The acceptance bar of the multi-process tier: for **every** protocol,
reports collected by two worker processes sharing one port — the kernel
load-balancing connections between them — merge (through the worker
checkpoints) to estimates bit-for-bit identical to ``run_streaming`` on
the same encoded reports.  Process count, like shard count and kernel
backend, must be invisible in the estimates.
"""

from __future__ import annotations

import asyncio
import socket

import numpy as np
import pytest

from repro.core.exceptions import (
    CollectionServiceError,
    ProtocolConfigurationError,
)
from repro.server import LoadGenerator, MultiProcessCollector

from ..service.util import (
    ALL_PROTOCOLS,
    SEED,
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="the multi-process tier needs SO_REUSEPORT",
)

BATCH_SIZE = 16  # 96 records -> 6 frames


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


def collect_multiprocess(
    protocol, frames, domain, checkpoint_dir, *, processes, **kwargs
):
    """Full round trip: worker fleet up, client fleet run, merge, return."""
    collector = MultiProcessCollector(
        protocol.spec(),
        domain,
        processes=processes,
        checkpoint_dir=checkpoint_dir,
        port=0,
        **kwargs,
    )
    collector.start()
    try:
        fleet = LoadGenerator(
            protocol.spec(),
            domain,
            "127.0.0.1",
            collector.port,
            frames=frames,
            num_clients=4,
            frames_per_connection=1,  # churn: every frame reconnects, so the
            # kernel can spread connections over both workers
        )
        report = asyncio.run(fleet.run())
    finally:
        # Every frame is ACKed (or the fleet raised), so every report is in
        # some worker's sessions; stopping now loses nothing.
        collector.stop()
    merged = collector.join(timeout=30.0)
    return merged, report


class TestMergedEquality:
    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_two_process_collection_matches_run_streaming(
        self, name, dataset, tmp_path
    ):
        """The headline proof, per protocol, at processes=2."""
        protocol = build(name)
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        merged, report = collect_multiprocess(
            protocol, frames, dataset.domain, tmp_path, processes=2
        )
        assert report.acked_frames == len(frames)
        assert report.acked_reports == dataset.size
        assert merged.num_reports == dataset.size
        expected = estimates_of(
            protocol.run_streaming(
                dataset,
                rng=np.random.default_rng(SEED),
                batch_size=BATCH_SIZE,
            )
        )
        assert_estimates_equal(estimates_of(merged.snapshot()), expected)

    @pytest.mark.parametrize("name", ["InpRR", "InpOLH"])
    def test_single_process_collector_matches_run_streaming(
        self, name, dataset, tmp_path
    ):
        """processes=1 runs the same machinery (degenerate fleet of one)."""
        protocol = build(name)
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        merged, report = collect_multiprocess(
            protocol, frames, dataset.domain, tmp_path, processes=1, shards=2
        )
        assert report.acked_reports == dataset.size
        expected = estimates_of(
            protocol.run_streaming(
                dataset,
                rng=np.random.default_rng(SEED),
                batch_size=BATCH_SIZE,
            )
        )
        assert_estimates_equal(estimates_of(merged.snapshot()), expected)


class TestStopAfterReports:
    def test_fleet_stops_at_target(self, dataset, tmp_path):
        """The shared counter shuts the whole fleet down at the target and
        the merged session holds at least that many reports."""
        protocol = build("InpRR")
        frames = encode_frames(protocol, dataset, BATCH_SIZE)
        collector = MultiProcessCollector(
            protocol.spec(),
            dataset.domain,
            processes=2,
            checkpoint_dir=tmp_path,
            port=0,
            stop_after_reports=dataset.size,
        )
        collector.start()
        fleet = LoadGenerator(
            protocol.spec(),
            dataset.domain,
            "127.0.0.1",
            collector.port,
            frames=frames,
            num_clients=2,
        )
        asyncio.run(fleet.run())
        merged = collector.join(timeout=30.0)
        assert merged.num_reports == dataset.size
        assert collector.num_reports == dataset.size


class TestValidation:
    def test_rejects_bad_process_count(self, dataset, tmp_path):
        protocol = build("InpRR")
        with pytest.raises(ProtocolConfigurationError, match="process count"):
            MultiProcessCollector(
                protocol.spec(),
                dataset.domain,
                processes=0,
                checkpoint_dir=tmp_path,
            )

    def test_rejects_bad_stop_after(self, dataset, tmp_path):
        protocol = build("InpRR")
        with pytest.raises(
            ProtocolConfigurationError, match="stop_after_reports"
        ):
            MultiProcessCollector(
                protocol.spec(),
                dataset.domain,
                processes=1,
                checkpoint_dir=tmp_path,
                stop_after_reports=0,
            )

    def test_join_before_start_refused(self, dataset, tmp_path):
        protocol = build("InpRR")
        collector = MultiProcessCollector(
            protocol.spec(), dataset.domain, processes=1, checkpoint_dir=tmp_path
        )
        with pytest.raises(ProtocolConfigurationError, match="never started"):
            collector.join()

    def test_double_start_refused(self, dataset, tmp_path):
        protocol = build("InpRR")
        collector = MultiProcessCollector(
            protocol.spec(), dataset.domain, processes=1, checkpoint_dir=tmp_path
        )
        collector.start()
        try:
            with pytest.raises(
                ProtocolConfigurationError, match="already started"
            ):
                collector.start()
        finally:
            collector.stop()
            collector.join(timeout=30.0)

    def test_join_without_checkpoints_raises(self, dataset, tmp_path):
        """A fleet that collected nothing still checkpoints (empty sessions);
        this guards the no-files-at-all corruption case instead."""
        protocol = build("InpRR")
        collector = MultiProcessCollector(
            protocol.spec(), dataset.domain, processes=1, checkpoint_dir=tmp_path
        )
        collector.start()
        collector.stop()
        merged = collector.join(timeout=30.0)
        assert merged.num_reports == 0
