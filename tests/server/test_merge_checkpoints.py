"""``merge_checkpoints`` error reporting for missing/partial directories.

The recovery path runs when an operator is already having a bad day — a
collector died and its checkpoint directory may be absent, empty, or half
written.  Every failure here must *name the shard files found versus
expected* instead of leaking a raw ``numpy.load`` traceback.
"""

from __future__ import annotations

import pytest

from repro.core.domain import Domain
from repro.core.exceptions import ProtocolConfigurationError, WireFormatError
from repro.server import merge_checkpoints
from repro.service.session import AggregationSession

from ..service.util import (
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)


@pytest.fixture(scope="module")
def setting():
    protocol = build("InpPS")
    dataset = small_dataset()
    domain = Domain.binary(dataset.dimension)
    frames = encode_frames(protocol, dataset, batch_size=12)
    return protocol, domain, frames


def _write_shards(setting, directory, num_shards):
    """Shard the frames round-robin and checkpoint each shard session."""
    protocol, domain, frames = setting
    directory.mkdir(parents=True, exist_ok=True)
    flat = AggregationSession(protocol.spec(), domain)
    for shard in range(num_shards):
        session = AggregationSession(protocol.spec(), domain)
        for frame in frames[shard::num_shards]:
            session.submit(frame)
            flat.submit(frame)
        session.checkpoint(directory / f"shard-{shard:02d}.npz")
    return flat


class TestHappyPath:
    def test_merges_a_directory_exactly(self, setting, tmp_path):
        flat = _write_shards(setting, tmp_path, num_shards=2)
        merged = merge_checkpoints(tmp_path, expected_shards=2)
        assert merged.num_reports == flat.num_reports
        assert_estimates_equal(
            estimates_of(merged.snapshot()), estimates_of(flat.snapshot())
        )

    def test_accepts_explicit_paths_in_any_order(self, setting, tmp_path):
        flat = _write_shards(setting, tmp_path, num_shards=2)
        paths = sorted(tmp_path.glob("shard-*.npz"), reverse=True)
        merged = merge_checkpoints(paths)
        assert merged.num_reports == flat.num_reports


class TestReadableFailures:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(
            ProtocolConfigurationError, match="not a directory"
        ):
            merge_checkpoints(tmp_path / "never-created")

    def test_empty_directory_says_so(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(
            ProtocolConfigurationError, match="an empty directory"
        ):
            merge_checkpoints(empty)

    def test_directory_without_shards_lists_what_is_there(self, tmp_path):
        decoy = tmp_path / "decoys"
        decoy.mkdir()
        (decoy / "state.npz").write_bytes(b"not a shard")
        (decoy / "notes.txt").write_text("hello")
        with pytest.raises(ProtocolConfigurationError) as excinfo:
            merge_checkpoints(decoy)
        message = str(excinfo.value)
        assert "shard-NN.npz" in message
        assert "state.npz" in message and "notes.txt" in message

    def test_partial_directory_names_found_shards(self, setting, tmp_path):
        _write_shards(setting, tmp_path, num_shards=2)
        (tmp_path / "shard-01.npz").unlink()
        with pytest.raises(ProtocolConfigurationError) as excinfo:
            merge_checkpoints(tmp_path, expected_shards=2)
        message = str(excinfo.value)
        assert "expected 2 shard checkpoint(s) but found 1" in message
        assert "shard-00.npz" in message
        assert "partial" in message

    def test_empty_path_sequence(self):
        with pytest.raises(
            ProtocolConfigurationError, match="at least one"
        ):
            merge_checkpoints([])

    def test_corrupted_shard_names_its_siblings(self, setting, tmp_path):
        _write_shards(setting, tmp_path, num_shards=2)
        (tmp_path / "shard-01.npz").write_bytes(b"\x00garbage\x00")
        with pytest.raises(WireFormatError) as excinfo:
            merge_checkpoints(tmp_path, expected_shards=2)
        message = str(excinfo.value)
        assert "shard-01.npz" in message
        assert "shard-00.npz" in message  # the sibling that *is* readable
        assert "Traceback" not in message
