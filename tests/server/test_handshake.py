"""The HELLO spec agreement: hashes, payloads, readable rejections."""

from __future__ import annotations

import pytest

from repro.core.domain import Domain
from repro.server.handshake import check_hello, hello_payload, spec_hash
from repro.service import ProtocolSpec


@pytest.fixture
def spec():
    return ProtocolSpec(protocol="InpOLH", epsilon=1.1, max_width=2)


@pytest.fixture
def domain():
    return Domain.binary(4)


def _server_side(spec):
    protocol = spec.build()
    return ProtocolSpec.from_protocol(protocol), protocol.tuning_options()


class TestSpecHash:
    def test_stable_across_instances(self, spec):
        clone = ProtocolSpec.from_dict(spec.to_dict())
        assert spec_hash(spec) == spec_hash(clone)

    def test_canonicalisation_unifies_spelled_defaults(self, spec):
        # The raw spec omits defaults, the canonical one spells them out —
        # their raw hashes differ but the canonical hashes agree.
        assert spec_hash(spec) != spec_hash(spec.canonical())
        assert spec_hash(spec.canonical()) == spec_hash(
            spec.canonical().canonical()
        )

    def test_different_specs_hash_differently(self, spec):
        other = ProtocolSpec(protocol="InpOLH", epsilon=0.9, max_width=2)
        assert spec_hash(spec) != spec_hash(other)


class TestHelloPayload:
    def test_carries_spec_hash_and_attributes(self, spec, domain):
        payload = hello_payload(spec, domain.attributes)
        assert payload["spec"] == spec.to_dict()
        assert payload["spec_hash"] == spec_hash(spec.canonical())
        assert payload["attributes"] == list(domain.attributes)


class TestCheckHello:
    def test_accepts_identical_contract(self, spec, domain):
        server_spec, tuning = _server_side(spec)
        payload = hello_payload(spec, domain.attributes)
        assert check_hello(payload, server_spec, tuning, domain.attributes) == []

    def test_accepts_tuning_only_difference(self, spec, domain):
        """A client tuned for different hardware still speaks the contract."""
        server_spec, tuning = _server_side(spec)
        client = ProtocolSpec(
            protocol="InpOLH",
            epsilon=1.1,
            max_width=2,
            options={"decode_batch_size": 64},
        )
        payload = hello_payload(client, domain.attributes)
        assert check_hello(payload, server_spec, tuning, domain.attributes) == []

    def test_rejects_epsilon_mismatch_with_diff(self, spec, domain):
        server_spec, tuning = _server_side(spec)
        client = ProtocolSpec(protocol="InpOLH", epsilon=0.7, max_width=2)
        payload = hello_payload(client, domain.attributes)
        problems = check_hello(payload, server_spec, tuning, domain.attributes)
        assert any("epsilon" in line for line in problems)

    def test_rejects_protocol_mismatch(self, spec, domain):
        server_spec, tuning = _server_side(spec)
        client = ProtocolSpec(protocol="InpRR", epsilon=1.1, max_width=2)
        payload = hello_payload(client, domain.attributes)
        problems = check_hello(payload, server_spec, tuning, domain.attributes)
        assert any("protocol" in line for line in problems)

    def test_rejects_attribute_mismatch(self, spec, domain):
        server_spec, tuning = _server_side(spec)
        payload = hello_payload(spec, ["x", "y", "z", "w"])
        problems = check_hello(payload, server_spec, tuning, domain.attributes)
        assert any("attributes" in line for line in problems)

    def test_rejects_malformed_spec_payload(self, spec, domain):
        server_spec, tuning = _server_side(spec)
        problems = check_hello(
            {"spec": {"bogus": True}, "attributes": list(domain.attributes)},
            server_spec,
            tuning,
            domain.attributes,
        )
        assert problems and problems[0].startswith("spec:")

    def test_rejects_missing_attributes(self, spec, domain):
        server_spec, tuning = _server_side(spec)
        payload = {"spec": spec.to_dict()}
        problems = check_hello(payload, server_spec, tuning, domain.attributes)
        assert any("attributes" in line for line in problems)

    def test_rejects_invalid_epsilon_as_reason_not_crash(self, spec, domain):
        """Any ReproError a hostile spec raises (here PrivacyBudgetError)
        becomes a rejection line, never an escaping exception."""
        server_spec, tuning = _server_side(spec)
        hostile = spec.to_dict()
        hostile["epsilon"] = -1.0
        problems = check_hello(
            {"spec": hostile, "attributes": list(domain.attributes)},
            server_spec,
            tuning,
            domain.attributes,
        )
        assert problems and problems[0].startswith("spec:")

    def test_rejects_wrong_spec_hash(self, spec, domain):
        server_spec, tuning = _server_side(spec)
        payload = hello_payload(spec, domain.attributes)
        payload["spec_hash"] = "0" * 64
        problems = check_hello(payload, server_spec, tuning, domain.attributes)
        assert any("spec_hash" in line for line in problems)

    def test_accepts_hello_without_spec_hash(self, spec, domain):
        server_spec, tuning = _server_side(spec)
        payload = hello_payload(spec, domain.attributes)
        del payload["spec_hash"]
        assert check_hello(payload, server_spec, tuning, domain.attributes) == []
