"""FrameDecoder and control-frame codec: reassembly and rejection.

The satellite acceptance bar: wire frames split at *every* byte boundary
reassemble identically through the incremental decoder, and truncated or
corrupted mid-stream frames raise ``WireFormatError`` immediately instead
of buffering unbounded garbage.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.core.exceptions import WireFormatError
from repro.server.framing import (
    ACK,
    CONTROL_KINDS,
    ERR,
    FIN,
    HELLO,
    MAX_CONTROL_BYTES,
    MAX_STATE_BYTES,
    OK,
    POISON_FRAME,
    PULL,
    SERVER_PROTOCOL_VERSION,
    STATE,
    ControlMessage,
    FrameDecoder,
    FrameDecoderReference,
    encode_control,
)

from ..service.util import build, encode_frames, small_dataset


@pytest.fixture(scope="module")
def report_frames():
    """Two real InpHT report frames (different batch sizes)."""
    return encode_frames(build("InpHT"), small_dataset(n=48, d=4), 24)


@pytest.fixture(scope="module")
def mixed_stream(report_frames):
    """A full session byte stream: HELLO, two report frames, FIN."""
    items = [
        ControlMessage(HELLO, {"spec": {"protocol": "InpHT"}, "attributes": []}),
        report_frames[0],
        report_frames[1],
        ControlMessage(FIN, {}),
    ]
    stream = b"".join(
        encode_control(item.kind, item.payload)
        if isinstance(item, ControlMessage)
        else item
        for item in items
    )
    return stream, items


def _assert_items_equal(observed, expected):
    assert len(observed) == len(expected)
    for seen, wanted in zip(observed, expected):
        if isinstance(wanted, ControlMessage):
            assert isinstance(seen, ControlMessage)
            assert seen.kind == wanted.kind
            assert seen.payload == wanted.payload
        else:
            assert isinstance(seen, bytes)
            assert seen == wanted


class TestControlCodec:
    @pytest.mark.parametrize("kind", sorted(CONTROL_KINDS))
    def test_round_trip(self, kind):
        payload = {"value": 7, "nested": {"list": [1, 2, 3]}}
        decoder = FrameDecoder()
        (message,) = decoder.feed(encode_control(kind, payload))
        assert message == ControlMessage(kind, payload)
        assert decoder.at_frame_boundary

    def test_empty_payload_defaults_to_object(self):
        decoder = FrameDecoder()
        (message,) = decoder.feed(encode_control(FIN))
        assert message == ControlMessage(FIN, {})

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(WireFormatError, match="unknown control kind"):
            encode_control("NOPE", {})

    def test_unserializable_payload_rejected(self):
        with pytest.raises(WireFormatError, match="not JSON-serializable"):
            encode_control(OK, {"oops": object()})


class TestReassembly:
    def test_whole_stream_at_once(self, mixed_stream):
        stream, expected = mixed_stream
        decoder = FrameDecoder()
        _assert_items_equal(decoder.feed(stream), expected)
        assert decoder.at_frame_boundary

    def test_byte_at_a_time(self, mixed_stream):
        """Feeding single bytes crosses every split boundary in the stream."""
        stream, expected = mixed_stream
        decoder = FrameDecoder()
        observed = []
        for position in range(len(stream)):
            observed.extend(decoder.feed(stream[position : position + 1]))
        _assert_items_equal(observed, expected)
        assert decoder.at_frame_boundary

    def test_every_two_part_split(self, report_frames):
        """One frame cut at every byte offset reassembles identically."""
        frame = report_frames[0]
        for split in range(len(frame) + 1):
            decoder = FrameDecoder()
            observed = decoder.feed(frame[:split])
            observed += decoder.feed(frame[split:])
            assert observed == [frame], f"split at byte {split}"

    def test_random_chunkings(self, mixed_stream):
        stream, expected = mixed_stream
        rng = np.random.default_rng(7)
        for _ in range(25):
            decoder = FrameDecoder()
            observed = []
            position = 0
            while position < len(stream):
                step = int(rng.integers(1, 4096))
                observed.extend(decoder.feed(stream[position : position + step]))
                position += step
            _assert_items_equal(observed, expected)

    def test_partial_frame_stays_buffered(self, report_frames):
        frame = report_frames[0]
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert not decoder.at_frame_boundary
        assert decoder.buffered_bytes == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [frame]
        assert decoder.at_frame_boundary


class TestRejection:
    def test_bad_magic(self):
        # POISON_FRAME is the exact garbage LoadGenerator's poison
        # connections send, so this is the server-side rejection in vitro.
        decoder = FrameDecoder()
        with pytest.raises(WireFormatError, match="magic"):
            decoder.feed(POISON_FRAME)

    def test_bad_magic_mid_stream(self, report_frames):
        """Corruption raises even when a complete frame precedes it.

        The whole chunk is condemned: a connection whose stream corrupts is
        rejected, and frames without an ACK carry no delivery guarantee.
        """
        decoder = FrameDecoder()
        with pytest.raises(WireFormatError, match="magic"):
            decoder.feed(report_frames[0] + b"GARBAGEG")
        good = FrameDecoder().feed(report_frames[0])
        assert good == [report_frames[0]]

    def test_wrong_report_version(self, report_frames):
        frame = bytearray(report_frames[0])
        frame[4] ^= 0xFF  # version u16 little-endian low byte
        decoder = FrameDecoder()
        with pytest.raises(WireFormatError, match="version"):
            decoder.feed(bytes(frame))

    def test_wrong_control_version(self):
        frame = bytearray(encode_control(OK, {}))
        frame[4] ^= 0xFF
        decoder = FrameDecoder()
        with pytest.raises(WireFormatError, match="version"):
            decoder.feed(bytes(frame))

    def test_oversized_report_payload_rejected_early(self):
        """A forged length field fails before any payload arrives."""
        kind = b"InpHT"
        header = (
            struct.pack("<4sHH", b"RPRB", 1, len(kind))
            + kind
            + struct.pack("<Q", 1 << 40)
        )
        decoder = FrameDecoder(max_frame_bytes=1 << 20)
        with pytest.raises(WireFormatError, match="limit"):
            decoder.feed(header)

    def test_oversized_control_payload_rejected_early(self):
        kind = b"HELLO"
        header = (
            struct.pack("<4sHH", b"RPRC", SERVER_PROTOCOL_VERSION, len(kind))
            + kind
            + struct.pack("<Q", MAX_CONTROL_BYTES + 1)
        )
        decoder = FrameDecoder()
        with pytest.raises(WireFormatError, match="limit"):
            decoder.feed(header)

    def test_non_json_control_payload(self):
        frame = bytearray(encode_control(ACK, {"frames": 1}))
        frame[-6:] = b"not-js"
        decoder = FrameDecoder()
        with pytest.raises(WireFormatError, match="JSON"):
            decoder.feed(bytes(frame))

    def test_non_object_control_payload(self):
        body = json.dumps([1, 2, 3]).encode()
        kind = b"ACK"
        frame = (
            struct.pack("<4sHH", b"RPRC", SERVER_PROTOCOL_VERSION, len(kind))
            + kind
            + struct.pack("<Q", len(body))
            + body
        )
        decoder = FrameDecoder()
        with pytest.raises(WireFormatError, match="JSON object"):
            decoder.feed(frame)

    def test_unknown_control_kind(self):
        body = b"{}"
        kind = b"WHAT"
        frame = (
            struct.pack("<4sHH", b"RPRC", SERVER_PROTOCOL_VERSION, len(kind))
            + kind
            + struct.pack("<Q", len(body))
            + body
        )
        decoder = FrameDecoder()
        with pytest.raises(WireFormatError, match="unknown control kind"):
            decoder.feed(frame)

    def test_poisoned_decoder_stays_poisoned(self, report_frames):
        decoder = FrameDecoder()
        with pytest.raises(WireFormatError):
            decoder.feed(POISON_FRAME)
        with pytest.raises(WireFormatError):
            decoder.feed(report_frames[0])

    def test_bad_max_frame_bytes(self):
        with pytest.raises(WireFormatError, match="max_frame_bytes"):
            FrameDecoder(max_frame_bytes=0)


def _materialize(item):
    """Normalize a decoded item for cross-decoder comparison."""
    if isinstance(item, memoryview):
        return bytes(item)
    return item


def _drain_pair(fast, reference, chunk):
    """Feed one chunk to both decoders, returning (items, items).

    Raises whatever either decoder raises; the caller asserts the two
    failure modes agree.
    """
    fast.absorb(chunk)
    observed = [_materialize(item) for item in fast.frames()]
    expected = reference.feed(chunk)
    return observed, expected


class TestReferenceConformance:
    """The zero-copy decoder is byte-for-byte the old (reference) decoder.

    ``FrameDecoderReference`` is the pre-optimization implementation kept
    verbatim as ground truth; these properties prove the head-offset /
    lazy-compaction rewrite changes nothing observable.
    """

    def test_byte_at_a_time_equivalence(self, mixed_stream):
        """Single-byte feeds cross every split boundary in the stream."""
        stream, _ = mixed_stream
        fast, reference = FrameDecoder(), FrameDecoderReference()
        for position in range(len(stream)):
            chunk = stream[position : position + 1]
            observed, expected = _drain_pair(fast, reference, chunk)
            assert observed == expected
            assert fast.buffered_bytes == reference.buffered_bytes
            assert fast.at_frame_boundary == reference.at_frame_boundary

    def test_every_two_part_split_equivalence(self, report_frames):
        frame = report_frames[0]
        for split in range(len(frame) + 1):
            fast, reference = FrameDecoder(), FrameDecoderReference()
            for chunk in (frame[:split], frame[split:]):
                observed, expected = _drain_pair(fast, reference, chunk)
                assert observed == expected, f"split at byte {split}"

    def test_random_chunkings_equivalence(self, mixed_stream):
        """Interleaved control/report frames under arbitrary fragmentation."""
        stream, _ = mixed_stream
        rng = np.random.default_rng(20180610)
        for _ in range(25):
            fast, reference = FrameDecoder(), FrameDecoderReference()
            position = 0
            while position < len(stream):
                step = int(rng.integers(1, 1024))
                chunk = stream[position : position + step]
                observed, expected = _drain_pair(fast, reference, chunk)
                assert observed == expected
                assert fast.buffered_bytes == reference.buffered_bytes
                position += step

    def test_oversized_frame_rejection_parity(self):
        kind = b"InpHT"
        header = (
            struct.pack("<4sHH", b"RPRB", 1, len(kind))
            + kind
            + struct.pack("<Q", 1 << 40)
        )
        fast = FrameDecoder(max_frame_bytes=1 << 20)
        reference = FrameDecoderReference(max_frame_bytes=1 << 20)
        with pytest.raises(WireFormatError) as fast_error:
            fast.absorb(header)
            list(fast.frames())
        with pytest.raises(WireFormatError) as reference_error:
            reference.feed(header)
        assert str(fast_error.value) == str(reference_error.value)

    def test_poisoning_parity(self, report_frames):
        fast, reference = FrameDecoder(), FrameDecoderReference()
        bad = POISON_FRAME
        with pytest.raises(WireFormatError) as fast_error:
            _drain_pair(fast, reference, bad)
        with pytest.raises(WireFormatError) as reference_error:
            reference.feed(bad)
        assert str(fast_error.value) == str(reference_error.value)
        for decoder in (fast, reference):
            with pytest.raises(WireFormatError):
                decoder.feed(report_frames[0])

    def test_absorb_frames_yields_zero_copy_views(self, report_frames):
        """The fast path hands out memoryviews over the internal buffer."""
        frame = report_frames[0]
        decoder = FrameDecoder()
        decoder.absorb(frame)
        (item,) = list(decoder.frames())
        assert isinstance(item, memoryview)
        assert bytes(item) == frame

    def test_feed_still_returns_bytes(self, report_frames):
        """The compatibility wrapper keeps the old bytes-based contract."""
        decoder = FrameDecoder()
        (item,) = decoder.feed(report_frames[0])
        assert isinstance(item, bytes)


class TestDecodedFramesStillDecode:
    def test_report_frame_passthrough_is_bitwise(self, report_frames):
        """The decoder relays report frames byte-identically, so the wire
        codec decodes them exactly as if they never crossed a socket."""
        protocol = build("InpHT")
        decoder = FrameDecoder()
        for frame in report_frames:
            (relayed,) = decoder.feed(frame)
            assert relayed == frame
            reports = protocol.decode_reports(relayed)
            assert reports.num_users > 0


class TestPullStateConformance:
    """Satellite: the conformance replay extended to the fan-in frames.

    ``PULL``/``STATE`` reuse the report codec's header layout but STATE
    answers carry base64 session checkpoints that can exceed the generic
    control cap — a kind-dependent limit the zero-copy and reference
    decoders must apply identically at every split boundary.
    """

    @pytest.fixture(scope="class")
    def pull_state_stream(self):
        """A full fan-in exchange: state pull, stats pull, answers."""
        import base64

        blob = base64.b64encode(bytes(range(256)) * 16).decode("ascii")
        items = [
            ControlMessage(PULL, {"what": "state"}),
            ControlMessage(
                STATE,
                {
                    "what": "state",
                    "collector_id": "c1",
                    "acked_tokens": {"load/c0/g0": {"frames": 2, "reports": 64}},
                    "state_b64": blob,
                },
            ),
            ControlMessage(PULL, {"what": "stats"}),
            ControlMessage(STATE, {"what": "stats", "stats": {"reports": 64}}),
        ]
        stream = b"".join(
            encode_control(item.kind, item.payload) for item in items
        )
        return stream, items

    def test_pull_state_round_trip(self, pull_state_stream):
        stream, items = pull_state_stream
        decoder = FrameDecoder()
        _assert_items_equal(decoder.feed(stream), items)
        assert decoder.at_frame_boundary

    def test_byte_at_a_time_equivalence(self, pull_state_stream):
        stream, items = pull_state_stream
        fast, reference = FrameDecoder(), FrameDecoderReference()
        collected = []
        for position in range(len(stream)):
            chunk = stream[position : position + 1]
            observed, expected = _drain_pair(fast, reference, chunk)
            assert observed == expected
            assert fast.buffered_bytes == reference.buffered_bytes
            assert fast.at_frame_boundary == reference.at_frame_boundary
            collected.extend(observed)
        _assert_items_equal(collected, items)

    def test_random_chunkings_equivalence(self, pull_state_stream):
        stream, items = pull_state_stream
        rng = np.random.default_rng(20180610)
        for _ in range(25):
            fast, reference = FrameDecoder(), FrameDecoderReference()
            collected = []
            position = 0
            while position < len(stream):
                step = int(rng.integers(1, 256))
                chunk = stream[position : position + step]
                observed, expected = _drain_pair(fast, reference, chunk)
                assert observed == expected
                assert fast.buffered_bytes == reference.buffered_bytes
                collected.extend(observed)
                position += step
            _assert_items_equal(collected, items)

    def test_state_exceeding_control_cap_accepted(self):
        """A decoder that opts into MAX_STATE_BYTES (the pull client's
        shape) accepts a STATE answer past the generic control cap — an
        equally large generic control frame is still rejected — and the
        two decoders agree at every split boundary."""
        oversized = "x" * (MAX_CONTROL_BYTES + 1024)
        state = encode_control(STATE, {"state_b64": oversized})
        assert len(state) > MAX_CONTROL_BYTES
        rng = np.random.default_rng(7)
        for _ in range(5):
            fast = FrameDecoder(max_state_bytes=MAX_STATE_BYTES)
            reference = FrameDecoderReference(max_state_bytes=MAX_STATE_BYTES)
            collected = []
            position = 0
            while position < len(state):
                step = int(rng.integers(1, 1 << 18))
                chunk = state[position : position + step]
                observed, expected = _drain_pair(fast, reference, chunk)
                assert observed == expected
                collected.extend(observed)
                position += step
            assert len(collected) == 1
            assert collected[0].payload["state_b64"] == oversized

    def test_oversized_generic_control_rejection_parity(self):
        """The same payload under kind OK trips the generic cap in both
        decoders with the same message (encode-side refuses to build it,
        so the wire bytes are forged by patching the kind)."""
        oversized = "x" * (MAX_CONTROL_BYTES + 1024)
        with pytest.raises(WireFormatError, match="control payload"):
            encode_control(OK, {"state_b64": oversized})
        state = encode_control(STATE, {"state_b64": oversized})
        kind_start = struct.calcsize("<4sHH")
        forged = (
            state[:kind_start]
            + b"OK" + b"   "
            + state[kind_start + len(STATE) :]
        )
        # Keep the kind-length field honest for the forged 5-byte kind.
        forged = (
            struct.pack("<4sHH", forged[:4], SERVER_PROTOCOL_VERSION, 5)
            + forged[kind_start:]
        )
        fast, reference = FrameDecoder(), FrameDecoderReference()
        with pytest.raises(WireFormatError) as fast_error:
            fast.absorb(forged)
            list(fast.frames())
        with pytest.raises(WireFormatError) as reference_error:
            reference.feed(forged)
        assert str(fast_error.value) == str(reference_error.value)

    def test_oversized_state_still_capped(self):
        """STATE is capped too — at MAX_STATE_BYTES — even in decoders
        that opted into the larger cap."""
        kind = STATE.encode("ascii")
        header = (
            struct.pack("<4sHH", b"RPRC", SERVER_PROTOCOL_VERSION, len(kind))
            + kind
            + struct.pack("<Q", MAX_STATE_BYTES + 1)
        )
        fast = FrameDecoder(max_state_bytes=MAX_STATE_BYTES)
        reference = FrameDecoderReference(max_state_bytes=MAX_STATE_BYTES)
        with pytest.raises(WireFormatError) as fast_error:
            fast.absorb(header)
            list(fast.frames())
        with pytest.raises(WireFormatError) as reference_error:
            reference.feed(header)
        assert str(fast_error.value) == str(reference_error.value)

    def test_default_decoder_rejects_oversized_state(self):
        """Server-side decoders never expect inbound STATE frames, so by
        default STATE rides the generic 1 MiB control cap: a hostile
        client cannot make a server buffer a 64 MiB \"checkpoint\"."""
        oversized = "x" * (MAX_CONTROL_BYTES + 1024)
        state = encode_control(STATE, {"state_b64": oversized})
        fast, reference = FrameDecoder(), FrameDecoderReference()
        with pytest.raises(WireFormatError) as fast_error:
            fast.absorb(state)
            list(fast.frames())
        with pytest.raises(WireFormatError) as reference_error:
            reference.feed(state)
        assert str(fast_error.value) == str(reference_error.value)
        assert str(MAX_CONTROL_BYTES) in str(fast_error.value)

    @pytest.mark.parametrize(
        "bad", [0, MAX_CONTROL_BYTES - 1, MAX_STATE_BYTES + 1]
    )
    def test_state_cap_out_of_range_rejected(self, bad):
        for decoder_class in (FrameDecoder, FrameDecoderReference):
            with pytest.raises(WireFormatError, match="max_state_bytes"):
                decoder_class(max_state_bytes=bad)
