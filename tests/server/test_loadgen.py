"""LoadGenerator: frame preparation, determinism, churn, fault injection."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.exceptions import (
    CollectionServiceError,
    ProtocolConfigurationError,
)
from repro.server import CollectionServer, LoadGenerator

from ..service.util import (
    SEED,
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


@pytest.fixture(scope="module")
def protocol():
    return build("InpRR")


class TestFramePreparation:
    def test_frames_for_dataset_matches_streaming_discipline(
        self, protocol, dataset
    ):
        """frames_for_dataset spawns the same per-batch generators as
        run_streaming, so its frames equal the reference encoding."""
        observed = LoadGenerator.frames_for_dataset(
            protocol.spec(),
            dataset,
            16,
            rng=np.random.default_rng(SEED),
        )
        assert observed == encode_frames(protocol, dataset, 16, seed=SEED)

    def test_provided_frames_dealt_round_robin(self, protocol, dataset):
        frames = encode_frames(protocol, dataset, 16)
        fleet = LoadGenerator(
            protocol.spec(),
            dataset.domain,
            "127.0.0.1",
            1,
            frames=frames,
            num_clients=4,
        )
        per_client = fleet.client_frames()
        assert per_client == [
            [frames[0], frames[4]],
            [frames[1], frames[5]],
            [frames[2]],
            [frames[3]],
        ]

    def test_synthetic_frames_deterministic_in_seed(self, protocol, dataset):
        def fleet():
            return LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "127.0.0.1",
                1,
                num_clients=3,
                records_per_client=32,
                batch_size=8,
                seed=123,
            )

        assert fleet().client_frames() == fleet().client_frames()
        other = LoadGenerator(
            protocol.spec(),
            dataset.domain,
            "127.0.0.1",
            1,
            num_clients=3,
            records_per_client=32,
            batch_size=8,
            seed=124,
        )
        assert other.client_frames() != fleet().client_frames()

    def test_validation(self, protocol, dataset):
        with pytest.raises(ProtocolConfigurationError, match="num_clients"):
            LoadGenerator(
                protocol.spec(), dataset.domain, "h", 1, num_clients=0
            )
        with pytest.raises(
            ProtocolConfigurationError, match="records_per_client"
        ):
            LoadGenerator(
                protocol.spec(), dataset.domain, "h", 1, records_per_client=0
            )
        with pytest.raises(
            ProtocolConfigurationError, match="frames_per_connection"
        ):
            LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "h",
                1,
                frames_per_connection=0,
            )
        with pytest.raises(
            ProtocolConfigurationError, match="malformed_connections"
        ):
            LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "h",
                1,
                malformed_connections=-1,
            )


class TestFleetRuns:
    def test_synthetic_fleet_end_to_end(self, protocol, dataset):
        """Self-encoding clients: the server aggregates exactly the records
        the fleet synthesized, verified against an in-process session."""

        async def session():
            server = CollectionServer(protocol.spec(), dataset.domain, port=0)
            await server.start()
            fleet = LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "127.0.0.1",
                server.port,
                num_clients=3,
                records_per_client=32,
                batch_size=8,
                seed=42,
            )
            report = await fleet.run()
            await server.stop()
            return server, fleet, report

        server, fleet, report = asyncio.run(session())
        assert report.acked_reports == 3 * 32
        assert report.frames == 3 * 4
        baseline = protocol.session(dataset.domain)
        for frames in fleet.client_frames():
            for frame in frames:
                baseline.submit(frame)
        assert_estimates_equal(
            estimates_of(server.finalize()),
            estimates_of(baseline.snapshot()),
        )

    def test_report_accounting(self, protocol, dataset):
        frames = encode_frames(protocol, dataset, 16)

        async def session():
            server = CollectionServer(protocol.spec(), dataset.domain, port=0)
            await server.start()
            fleet = LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "127.0.0.1",
                server.port,
                frames=frames,
                num_clients=2,
                frames_per_connection=2,
            )
            report = await fleet.run()
            await server.stop()
            return report

        report = asyncio.run(session())
        assert report.clients == 2
        assert report.frames == len(frames)
        assert report.acked_frames == len(frames)
        assert report.bytes == sum(len(frame) for frame in frames)
        assert report.connections == 4  # 3 frames per client, 2 per connection
        assert report.duration_seconds > 0
        assert report.reports_per_second > 0
        payload = report.to_dict()
        assert payload["acked_reports"] == dataset.size
        assert len(payload["per_client"]) == 2

    def test_vanishing_server_raises_collection_service_error(
        self, protocol, dataset
    ):
        """A server that dies mid-session surfaces as the documented
        CollectionServiceError on every client path (handshake, writes,
        reads) — never as a raw ConnectionResetError."""
        from repro.server import OK, encode_control

        frames = encode_frames(protocol, dataset, 16)

        async def session():
            async def accept_then_die(reader, writer):
                await reader.read(1 << 16)  # the HELLO
                writer.write(encode_control(OK, {}))
                await writer.drain()
                writer.close()  # vanish before any frame is acknowledged

            fake = await asyncio.start_server(
                accept_then_die, "127.0.0.1", 0
            )
            port = fake.sockets[0].getsockname()[1]
            try:
                fleet = LoadGenerator(
                    protocol.spec(),
                    dataset.domain,
                    "127.0.0.1",
                    port,
                    frames=frames,
                    num_clients=1,
                )
                with pytest.raises(CollectionServiceError):
                    await fleet.run()
            finally:
                fake.close()
                await fake.wait_closed()

        asyncio.run(session())

    def test_out_of_protocol_server_raises_collection_service_error(
        self, protocol, dataset
    ):
        """A peer speaking something other than the collection protocol
        surfaces as CollectionServiceError, not a raw WireFormatError."""

        async def session():
            async def speak_garbage(reader, writer):
                await reader.read(1 << 16)
                writer.write(b"HTTP/1.1 400 Bad Request\r\n\r\n")
                await writer.drain()
                writer.close()

            fake = await asyncio.start_server(speak_garbage, "127.0.0.1", 0)
            port = fake.sockets[0].getsockname()[1]
            try:
                fleet = LoadGenerator(
                    protocol.spec(),
                    dataset.domain,
                    "127.0.0.1",
                    port,
                    num_clients=1,
                    records_per_client=8,
                )
                with pytest.raises(
                    CollectionServiceError, match="out of protocol"
                ):
                    await fleet.run()
            finally:
                fake.close()
                await fake.wait_closed()

        asyncio.run(session())

    def test_connect_timeout_raises_quickly(self, protocol, dataset):
        async def session():
            # A port nothing listens on; bounded retry then a clear error.
            fleet = LoadGenerator(
                protocol.spec(),
                dataset.domain,
                "127.0.0.1",
                1,  # port 1: connection refused
                num_clients=1,
                records_per_client=8,
                connect_timeout=0.2,
            )
            with pytest.raises(CollectionServiceError, match="cannot connect"):
                await fleet.run()

        asyncio.run(session())


TARGETS = [("127.0.0.1", 9001), ("127.0.0.1", 9002), ("127.0.0.1", 9003)]


class TestFailoverRouting:
    """Exactly-once delivery discipline of _deliver_group.

    These drive the retry loop directly with a stubbed _send_group — no
    sockets — because the property under test is *which address* each
    attempt goes to, not the wire exchange.
    """

    def fleet(self, protocol, dataset, **kwargs):
        kwargs.setdefault("failover", lambda address: {"dead": False})
        kwargs.setdefault("retry_backoff", 0.0)
        return LoadGenerator(
            protocol.spec(),
            dataset.domain,
            targets=TARGETS,
            routing="round-robin",
            token_prefix="t",
            num_clients=1,
            records_per_client=8,
            **kwargs,
        )

    def test_transient_retries_pin_the_routed_address(
        self, protocol, dataset
    ):
        """A retry after a lost ACK must go back to the SAME collector —
        the only one that has seen the group's idempotency token.  A
        round-robin router advances on every route() call, so routing
        per attempt would fold the group twice on a different collector."""
        fleet = self.fleet(protocol, dataset, max_retries=3)
        attempts = []

        async def send_group(result, frames, address, token=None):
            attempts.append(address)
            if len(attempts) < 3:
                raise CollectionServiceError("ACK lost")

        fleet._send_group = send_group
        from repro.server.loadgen import ClientResult

        result = ClientResult(client_id=0)
        asyncio.run(fleet._deliver_group(result, 0, [b"frame"]))
        assert len(attempts) == 3
        assert len(set(attempts)) == 1, (
            f"transient retries switched collectors: {attempts}"
        )
        assert result.retries == 2

    def test_dead_verdict_reroutes_to_a_survivor(self, protocol, dataset):
        dead_address = None
        verdicts = []

        def oracle(address):
            verdicts.append(address)
            return {"dead": address == dead_address, "acked_tokens": {}}

        fleet = self.fleet(protocol, dataset, failover=oracle)
        attempts = []

        async def send_group(result, frames, address, token=None):
            attempts.append(address)
            if address == dead_address:
                raise CollectionServiceError("connection refused")

        fleet._send_group = send_group
        from repro.server.loadgen import ClientResult

        dead_address = fleet.router.targets[0]
        result = ClientResult(client_id=0)
        asyncio.run(fleet._deliver_group(result, 0, [b"frame"]))
        assert attempts[0] == dead_address
        assert attempts[1] != dead_address
        assert verdicts == [dead_address]
        assert dead_address in fleet.router.dead

    def test_first_contact_gets_the_full_connect_timeout(
        self, protocol, dataset
    ):
        """With an oracle configured, only addresses that have already
        accepted a connection take the short reconnect path; a collector
        still binding its socket keeps the full grace window."""
        fleet = self.fleet(
            protocol,
            dataset,
            connect_timeout=0.3,
            retry_backoff=0.1,
        )
        address = ("127.0.0.1", 1)  # connection refused

        async def attempt():
            with pytest.raises(
                CollectionServiceError, match=r"within 0\.3s"
            ):
                await fleet._connect(address)
            fleet._contacted.add(address)
            with pytest.raises(
                CollectionServiceError, match=r"within 0\.1s"
            ):
                await fleet._connect(address)

        asyncio.run(attempt())
