"""Unit tests for the BinaryDataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.core.exceptions import DatasetError
from repro.datasets.base import BinaryDataset


class TestConstruction:
    def test_from_records(self):
        records = np.array([[0, 1, 0], [1, 1, 1], [0, 0, 0]])
        dataset = BinaryDataset.from_records(records)
        assert dataset.size == 3
        assert dataset.dimension == 3
        assert dataset.attribute_names == ["attr0", "attr1", "attr2"]

    def test_from_records_with_names(self):
        dataset = BinaryDataset.from_records(
            np.array([[1, 0]]), attribute_names=["x", "y"]
        )
        assert dataset.attribute_names == ["x", "y"]

    def test_from_indices_roundtrip(self, rng):
        domain = Domain.binary(5)
        indices = rng.integers(0, 32, size=200)
        dataset = BinaryDataset.from_indices(indices, domain)
        np.testing.assert_array_equal(dataset.indices(), indices)

    def test_rejects_non_binary_values(self):
        with pytest.raises(DatasetError):
            BinaryDataset.from_records(np.array([[0, 2]]))

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            BinaryDataset.from_records(np.zeros((0, 3)))

    def test_rejects_wrong_dimension_against_domain(self):
        with pytest.raises(DatasetError):
            BinaryDataset(Domain.binary(4), np.array([[0, 1]]))

    def test_rejects_1d_records(self):
        with pytest.raises(DatasetError):
            BinaryDataset.from_records(np.array([0, 1, 1]))

    def test_from_indices_rejects_out_of_range(self):
        with pytest.raises(DatasetError):
            BinaryDataset.from_indices(np.array([8]), Domain.binary(3))


class TestViews:
    def test_indices_encoding(self):
        # Attribute j maps to bit j: record [1, 0, 1] -> index 0b101.
        dataset = BinaryDataset.from_records(np.array([[1, 0, 1], [0, 1, 0]]))
        assert dataset.indices().tolist() == [0b101, 0b010]

    def test_full_distribution_sums_to_one(self, tiny_dataset):
        distribution = tiny_dataset.full_distribution()
        assert distribution.shape == (16,)
        assert distribution.sum() == pytest.approx(1.0)

    def test_marginal_by_names(self, tiny_dataset):
        table = tiny_dataset.marginal(["a", "b"])
        assert table.values.sum() == pytest.approx(1.0)
        # a and b were planted to agree 85% of the time.
        agreement = table.cell({"a": 0, "b": 0}) + table.cell({"a": 1, "b": 1})
        assert agreement > 0.7

    def test_attribute_column(self, tiny_dataset):
        column = tiny_dataset.attribute_column("a")
        assert column.shape == (tiny_dataset.size,)
        assert set(np.unique(column)).issubset({0, 1})
        assert column.mean() == pytest.approx(0.6, abs=0.05)

    def test_len(self, tiny_dataset):
        assert len(tiny_dataset) == tiny_dataset.size


class TestResampling:
    def test_sample_with_replacement(self, tiny_dataset, rng):
        sample = tiny_dataset.sample(10_000, rng=rng)
        assert sample.size == 10_000
        assert sample.domain == tiny_dataset.domain

    def test_sample_without_replacement_limits(self, tiny_dataset, rng):
        with pytest.raises(DatasetError):
            tiny_dataset.sample(tiny_dataset.size + 1, rng=rng, replace=False)
        sample = tiny_dataset.sample(100, rng=rng, replace=False)
        assert sample.size == 100

    def test_sample_rejects_nonpositive(self, tiny_dataset, rng):
        with pytest.raises(DatasetError):
            tiny_dataset.sample(0, rng=rng)

    def test_project(self, tiny_dataset):
        projected = tiny_dataset.project(["c", "a"])
        assert projected.attribute_names == ["c", "a"]
        np.testing.assert_array_equal(
            projected.attribute_column("a"), tiny_dataset.attribute_column("a")
        )
        with pytest.raises(DatasetError):
            tiny_dataset.project([])

    def test_duplicate_attributes(self, tiny_dataset):
        doubled = tiny_dataset.duplicate_attributes(1)
        assert doubled.dimension == 8
        np.testing.assert_array_equal(
            doubled.attribute_column("a"), doubled.attribute_column("a_dup1")
        )

    def test_widen_to(self, tiny_dataset):
        widened = tiny_dataset.widen_to(7)
        assert widened.dimension == 7
        # The duplicated columns replicate the originals round-robin.
        np.testing.assert_array_equal(
            widened.records[:, 4], tiny_dataset.records[:, 0]
        )
        assert tiny_dataset.widen_to(4) is tiny_dataset
        with pytest.raises(DatasetError):
            tiny_dataset.widen_to(3)
