"""Unit tests for the generic synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import DatasetError
from repro.datasets.synthetic import (
    independent_dataset,
    latent_class_dataset,
    skewed_dataset,
    uniform_dataset,
)


class TestUniformAndIndependent:
    def test_uniform_marginals(self, rng):
        dataset = uniform_dataset(50_000, 4, rng=rng)
        for name in dataset.attribute_names:
            assert dataset.attribute_column(name).mean() == pytest.approx(0.5, abs=0.02)

    def test_independent_biases(self, rng):
        probabilities = [0.1, 0.5, 0.9]
        dataset = independent_dataset(50_000, probabilities, rng=rng)
        for name, probability in zip(dataset.attribute_names, probabilities):
            assert dataset.attribute_column(name).mean() == pytest.approx(
                probability, abs=0.02
            )

    def test_independent_attributes_uncorrelated(self, rng):
        dataset = independent_dataset(50_000, [0.5, 0.5], rng=rng)
        table = dataset.marginal(["attr0", "attr1"]).values
        # P[both] should be close to P[a] * P[b] = 0.25.
        assert table[3] == pytest.approx(0.25, abs=0.02)

    def test_rejects_bad_probabilities(self, rng):
        with pytest.raises(DatasetError):
            independent_dataset(10, [1.5], rng=rng)
        with pytest.raises(DatasetError):
            independent_dataset(10, [], rng=rng)
        with pytest.raises(DatasetError):
            independent_dataset(0, [0.5], rng=rng)


class TestSkewed:
    def test_shape_and_reproducibility(self):
        first = skewed_dataset(5000, 5, rng=3)
        second = skewed_dataset(5000, 5, rng=3)
        np.testing.assert_array_equal(first.records, second.records)
        assert first.dimension == 5

    def test_skew_concentrates_mass(self, rng):
        heavy = skewed_dataset(20_000, 6, skew=2.5, rng=rng)
        light = skewed_dataset(20_000, 6, skew=0.0, rng=rng)
        assert heavy.full_distribution().max() > light.full_distribution().max()

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(DatasetError):
            skewed_dataset(0, 4, rng=rng)
        with pytest.raises(DatasetError):
            skewed_dataset(10, 0, rng=rng)
        with pytest.raises(DatasetError):
            skewed_dataset(10, 4, skew=-1, rng=rng)


class TestLatentClass:
    def test_plants_positive_correlation(self, rng):
        # Two attributes driven by the same latent class are positively correlated.
        dataset = latent_class_dataset(
            50_000,
            class_probabilities=[0.5, 0.5],
            conditional_probabilities=np.array([[0.9, 0.9], [0.1, 0.1]]),
            rng=rng,
        )
        table = dataset.marginal(["attr0", "attr1"]).values
        p_both = table[3]
        p_first = table[1] + table[3]
        p_second = table[2] + table[3]
        assert p_both > p_first * p_second + 0.05

    def test_named_attributes(self, rng):
        dataset = latent_class_dataset(
            100,
            class_probabilities=[1.0],
            conditional_probabilities=np.array([[0.5, 0.5]]),
            attribute_names=["left", "right"],
            rng=rng,
        )
        assert dataset.attribute_names == ["left", "right"]

    def test_validates_inputs(self, rng):
        with pytest.raises(DatasetError):
            latent_class_dataset(
                10, [0.5, 0.6], np.array([[0.5], [0.5]]), rng=rng
            )
        with pytest.raises(DatasetError):
            latent_class_dataset(10, [1.0], np.array([[1.5]]), rng=rng)
        with pytest.raises(DatasetError):
            latent_class_dataset(10, [1.0], np.array([0.5]), rng=rng)
        with pytest.raises(DatasetError):
            latent_class_dataset(0, [1.0], np.array([[0.5]]), rng=rng)
