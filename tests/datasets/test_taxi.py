"""Unit tests for the synthetic NYC-taxi-like generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.correlation import correlation_matrix
from repro.datasets.taxi import (
    DEPENDENT_PAIRS,
    INDEPENDENT_PAIRS,
    TAXI_ATTRIBUTES,
    TaxiDataGenerator,
    make_taxi_dataset,
)


class TestSchema:
    def test_attribute_names_match_paper(self):
        dataset = make_taxi_dataset(100, rng=1)
        assert tuple(dataset.attribute_names) == TAXI_ATTRIBUTES
        assert dataset.dimension == 8

    def test_reproducible_from_seed(self):
        first = make_taxi_dataset(1000, rng=5)
        second = make_taxi_dataset(1000, rng=5)
        np.testing.assert_array_equal(first.records, second.records)


class TestCorrelationStructure:
    @pytest.fixture(scope="class")
    def correlations(self):
        dataset = TaxiDataGenerator().generate(60_000, rng=11)
        matrix = correlation_matrix(dataset)
        names = dataset.attribute_names
        return {
            (names[i], names[j]): matrix[i, j]
            for i in range(len(names))
            for j in range(len(names))
        }

    @pytest.mark.parametrize("pair", DEPENDENT_PAIRS)
    def test_documented_dependent_pairs_are_strong(self, correlations, pair):
        assert correlations[pair] > 0.3

    @pytest.mark.parametrize("pair", INDEPENDENT_PAIRS)
    def test_documented_independent_pairs_are_weak(self, correlations, pair):
        assert abs(correlations[pair]) < 0.1

    def test_manhattan_trips_dominate(self):
        # Figure 2: most trips start and end inside Manhattan.
        dataset = make_taxi_dataset(50_000, rng=3)
        table = dataset.marginal(["M_pick", "M_drop"])
        assert table.cell({"M_pick": 1, "M_drop": 1}) > 0.5


class TestWidening:
    def test_widen_to_larger_d(self):
        dataset = make_taxi_dataset(2000, d=12, rng=2)
        assert dataset.dimension == 12
        # Duplicated columns keep the original 8 as a prefix.
        assert list(dataset.attribute_names[:8]) == list(TAXI_ATTRIBUTES)

    def test_project_to_smaller_d(self):
        dataset = make_taxi_dataset(2000, d=4, rng=2)
        assert dataset.dimension == 4
        assert tuple(dataset.attribute_names) == TAXI_ATTRIBUTES[:4]

    def test_default_d_unchanged(self):
        assert make_taxi_dataset(500, d=8, rng=2).dimension == 8
