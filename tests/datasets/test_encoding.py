"""Unit tests for categorical-to-binary encodings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import EncodingError
from repro.datasets.encoding import (
    CategoricalDomain,
    compact_binary_dimension,
    decode_compact,
    encode_compact,
    encode_onehot,
)


@pytest.fixture
def domain() -> CategoricalDomain:
    return CategoricalDomain(["colour", "size", "flag"], [5, 3, 2])


@pytest.fixture
def records(rng, domain) -> np.ndarray:
    return np.stack(
        [rng.integers(0, card, size=500) for card in domain.cardinalities], axis=1
    )


class TestCategoricalDomain:
    def test_bits_per_attribute(self, domain):
        assert domain.bits_per_attribute() == [3, 2, 1]
        assert compact_binary_dimension(domain) == 6

    def test_validation(self):
        with pytest.raises(EncodingError):
            CategoricalDomain([], [])
        with pytest.raises(EncodingError):
            CategoricalDomain(["a"], [1])
        with pytest.raises(EncodingError):
            CategoricalDomain(["a", "a"], [2, 2])
        with pytest.raises(EncodingError):
            CategoricalDomain(["a", "b"], [2])

    def test_index_of(self, domain):
        assert domain.index_of("size") == 1
        with pytest.raises(EncodingError):
            domain.index_of("missing")


class TestCompactEncoding:
    def test_roundtrip(self, domain, records):
        encoded = encode_compact(records, domain)
        decoded = decode_compact(encoded)
        np.testing.assert_array_equal(decoded, records)

    def test_binary_dimension(self, domain, records):
        encoded = encode_compact(records, domain)
        assert encoded.binary_dataset.dimension == 6

    def test_bit_groups_partition(self, domain, records):
        encoded = encode_compact(records, domain)
        all_bits = [bit for group in encoded.bit_groups for bit in group]
        assert sorted(all_bits) == list(range(6))

    def test_rejects_out_of_range_values(self, domain):
        bad = np.array([[5, 0, 0]])
        with pytest.raises(EncodingError):
            encode_compact(bad, domain)

    def test_rejects_wrong_shape(self, domain):
        with pytest.raises(EncodingError):
            encode_compact(np.array([[0, 0]]), domain)
        with pytest.raises(EncodingError):
            encode_compact(np.zeros((0, 3), dtype=int), domain)

    def test_binary_mask_for(self, domain, records):
        encoded = encode_compact(records, domain)
        mask = encoded.binary_mask_for(["colour", "flag"])
        # colour occupies bits 0-2, flag bit 5.
        assert mask == 0b100111
        with pytest.raises(EncodingError):
            encoded.binary_mask_for([])


class TestCategoricalMarginal:
    def test_marginal_folds_back_to_categories(self, domain, records):
        encoded = encode_compact(records, domain)
        binary = encoded.binary_dataset
        mask = encoded.binary_mask_for(["size", "flag"])
        binary_marginal = binary.marginal(mask).values
        categorical = encoded.categorical_marginal(["size", "flag"], binary_marginal)
        assert categorical.shape == (3, 2)
        assert categorical.sum() == pytest.approx(1.0)
        # Compare one cell against a direct count.
        direct = np.mean((records[:, 1] == 2) & (records[:, 2] == 1))
        assert categorical[2, 1] == pytest.approx(direct)

    def test_marginal_rejects_wrong_length(self, domain, records):
        encoded = encode_compact(records, domain)
        with pytest.raises(EncodingError):
            encoded.categorical_marginal(["size", "flag"], np.ones(4))


class TestOneHotEncoding:
    def test_onehot_dimension_and_recovery(self, domain, records):
        encoded = encode_onehot(records, domain)
        assert encoded.binary_dataset.dimension == 5 + 3 + 2
        # Each record has exactly one indicator set per attribute.
        sums = encoded.binary_dataset.records.sum(axis=1)
        assert set(sums.tolist()) == {3}

    def test_onehot_columns_match_counts(self, domain, records):
        encoded = encode_onehot(records, domain)
        binary = encoded.binary_dataset
        for value in range(5):
            expected = float(np.mean(records[:, 0] == value))
            assert binary.attribute_column(f"colour_is{value}").mean() == pytest.approx(
                expected
            )
