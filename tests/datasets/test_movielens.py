"""Unit tests for the synthetic MovieLens-like generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.correlation import correlation_matrix
from repro.core.exceptions import DatasetError
from repro.datasets.movielens import (
    MOVIE_GENRES,
    MovieLensDataGenerator,
    make_movielens_dataset,
)


class TestSchema:
    def test_genre_names(self):
        dataset = make_movielens_dataset(100, d=10, rng=1)
        assert tuple(dataset.attribute_names) == MOVIE_GENRES[:10]

    def test_dimension_control(self):
        assert make_movielens_dataset(100, d=4, rng=1).dimension == 4
        assert make_movielens_dataset(100, d=16, rng=1).dimension == 16

    def test_widening_beyond_genre_count(self):
        dataset = make_movielens_dataset(100, d=20, rng=1)
        assert dataset.dimension == 20

    def test_generator_validation(self):
        with pytest.raises(DatasetError):
            MovieLensDataGenerator(num_genres=0)
        with pytest.raises(DatasetError):
            MovieLensDataGenerator(num_genres=99)
        with pytest.raises(DatasetError):
            MovieLensDataGenerator(activity_strength=-1)
        with pytest.raises(DatasetError):
            MovieLensDataGenerator().generate(0, rng=1)

    def test_reproducible(self):
        first = make_movielens_dataset(500, d=6, rng=9)
        second = make_movielens_dataset(500, d=6, rng=9)
        np.testing.assert_array_equal(first.records, second.records)


class TestCorrelationStructure:
    def test_most_pairs_positively_correlated(self):
        # The paper's documented property of the movielens preference data.
        dataset = MovieLensDataGenerator(num_genres=10).generate(40_000, rng=4)
        matrix = correlation_matrix(dataset)
        off_diagonal = matrix[np.triu_indices(10, k=1)]
        assert (off_diagonal > 0).mean() > 0.9
        assert off_diagonal.mean() > 0.05

    def test_popular_genres_more_prevalent(self):
        dataset = MovieLensDataGenerator(num_genres=10).generate(40_000, rng=4)
        drama = dataset.attribute_column("Drama").mean()
        film_noir = dataset.attribute_column("FilmNoir").mean()
        assert drama > film_noir

    def test_activity_strength_increases_correlation(self):
        weak = MovieLensDataGenerator(num_genres=6, activity_strength=0.1)
        strong = MovieLensDataGenerator(num_genres=6, activity_strength=1.5)
        weak_corr = correlation_matrix(weak.generate(30_000, rng=5))
        strong_corr = correlation_matrix(strong.generate(30_000, rng=5))
        assert strong_corr[np.triu_indices(6, k=1)].mean() > weak_corr[
            np.triu_indices(6, k=1)
        ].mean()
