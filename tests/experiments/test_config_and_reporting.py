"""Unit tests for sweep configuration and text reporting."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ProtocolConfigurationError
from repro.experiments.config import LN3, SweepConfig
from repro.experiments.reporting import format_series, format_table


class TestSweepConfig:
    def test_grid_size(self):
        config = SweepConfig(
            protocols=("InpHT", "MargPS"),
            population_sizes=(100, 200),
            dimensions=(4,),
            widths=(1, 2),
            epsilons=(0.5, 1.0),
            repetitions=3,
        )
        assert config.grid_size() == 2 * 2 * 1 * 2 * 2 * 3

    def test_default_epsilon_is_ln3(self):
        import math

        assert LN3 == pytest.approx(math.log(3))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"protocols": ()},
            {"protocols": ("InpHT",), "repetitions": 0},
            {"protocols": ("InpHT",), "population_sizes": (0,)},
            {"protocols": ("InpHT",), "dimensions": (0,)},
            {"protocols": ("InpHT",), "widths": (0,)},
            {"protocols": ("InpHT",), "epsilons": (0.0,)},
            {"protocols": ("InpHT",), "executor": "gpu"},
            {"protocols": ("InpHT",), "workers": 0},
            {"protocols": ("InpHT",), "executor": "serial", "workers": 4},
            # workers > 1 with a single shard: the extra workers would idle.
            {"protocols": ("InpHT",), "executor": "process", "workers": 2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ProtocolConfigurationError):
            SweepConfig(**kwargs)

    def test_parallel_executor_accepts_workers(self):
        config = SweepConfig(
            protocols=("InpHT",),
            batch_size=256,
            shards=4,
            executor="process",
            workers=4,
        )
        assert config.executor == "process"
        assert config.workers == 4


class TestFormatTable:
    def test_renders_columns_and_rows(self):
        rows = [
            {"method": "InpHT", "error": 0.0123},
            {"method": "MargPS", "error": 0.0456},
        ]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "InpHT" in text and "MargPS" in text
        assert "0.0123" in text

    def test_handles_missing_cells(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_scientific_notation_for_extremes(self):
        text = format_table([{"value": 123456.789}, {"value": 0.0000001}])
        assert "e+" in text or "E+" in text
        assert "e-" in text or "E-" in text


class TestFormatSeries:
    def test_merges_curves_on_shared_x(self):
        series = {
            "InpHT": [(100, 0.1, 0.01), (200, 0.05, 0.01)],
            "MargPS": [(100, 0.2, 0.02), (200, 0.1, 0.02)],
        }
        text = format_series(series, x_label="N", y_label="tv", title="curves")
        assert "curves" in text
        lines = text.splitlines()
        assert any("100" in line and "0.1" in line and "0.2" in line for line in lines)

    def test_handles_missing_points(self):
        series = {"A": [(1, 0.5, 0.0)], "B": [(2, 0.25, 0.0)]}
        text = format_series(series, x_label="x", y_label="y")
        assert "0.5" in text and "0.25" in text


class TestSweepConfigFromSpecs:
    """The spec-based construction path of the sweep configuration."""

    def _specs(self, epsilon=LN3, width=2):
        from repro.service import ProtocolSpec

        return [
            ProtocolSpec(protocol="InpHT", epsilon=epsilon, max_width=width),
            ProtocolSpec(
                protocol="InpHTCMS",
                epsilon=epsilon,
                max_width=width,
                options={"num_hashes": 3, "width": 32},
            ),
        ]

    def test_from_specs_builds_the_grid(self):
        config = SweepConfig.from_specs(self._specs(), repetitions=2)
        assert config.protocols == ("InpHT", "InpHTCMS")
        assert config.epsilons == (LN3,)
        assert config.widths == (2,)
        assert config.protocol_options == {
            "InpHTCMS": {"num_hashes": 3, "width": 32}
        }
        assert config.repetitions == 2

    def test_specs_reflection_round_trips(self):
        specs = self._specs()
        config = SweepConfig.from_specs(specs)
        assert config.specs() == specs

    def test_from_specs_rejects_epsilon_disagreement(self):
        from repro.service import ProtocolSpec

        specs = [
            ProtocolSpec(protocol="InpHT", epsilon=1.0, max_width=2),
            ProtocolSpec(protocol="MargPS", epsilon=2.0, max_width=2),
        ]
        with pytest.raises(ProtocolConfigurationError, match="epsilon"):
            SweepConfig.from_specs(specs)
        # ... unless the epsilon axis is overridden explicitly.
        config = SweepConfig.from_specs(specs, epsilons=(1.0, 2.0))
        assert config.epsilons == (1.0, 2.0)

    def test_from_specs_rejects_width_disagreement(self):
        from repro.service import ProtocolSpec

        specs = [
            ProtocolSpec(protocol="InpHT", epsilon=1.0, max_width=2),
            ProtocolSpec(protocol="MargPS", epsilon=1.0, max_width=3),
        ]
        with pytest.raises(ProtocolConfigurationError, match="max_width"):
            SweepConfig.from_specs(specs)
        assert SweepConfig.from_specs(specs, widths=(2, 3)).widths == (2, 3)

    def test_from_specs_rejects_duplicates_and_non_specs(self):
        from repro.service import ProtocolSpec

        spec = ProtocolSpec(protocol="InpHT", epsilon=1.0, max_width=2)
        with pytest.raises(ProtocolConfigurationError, match="duplicated"):
            SweepConfig.from_specs([spec, spec])
        with pytest.raises(ProtocolConfigurationError, match="ProtocolSpec"):
            SweepConfig.from_specs(["InpHT"])
        with pytest.raises(ProtocolConfigurationError, match="at least one"):
            SweepConfig.from_specs([])

    def test_from_specs_feeds_the_sweep_harness(self):
        from repro.experiments.harness import run_sweep

        config = SweepConfig.from_specs(
            self._specs(epsilon=1.0),
            dataset="uniform",
            population_sizes=(256,),
            dimensions=(4,),
            repetitions=1,
        )
        result = run_sweep(config)
        assert {point.protocol for point in result.points} == {
            "InpHT",
            "InpHTCMS",
        }
