"""Smoke and shape tests for the per-figure experiment modules.

Each module is run with a configuration much smaller than its quick preset so
the whole file stays fast; the assertions check structure (and the weakest
shape properties), not the paper-scale numbers — those live in benchmarks and
EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    categorical,
    fig3_taxi_heatmap,
    fig4_vary_n,
    fig5_vary_k,
    fig6_vary_d_em,
    fig7_chi2,
    fig8_chow_liu,
    fig9_vary_eps,
    fig10_freq_oracles,
    table2_bounds,
    table3_em_failures,
)
from repro.experiments.config import SweepConfig


def tiny_sweep(module, **overrides) -> SweepConfig:
    base = module.default_config(quick=True)
    defaults = dict(
        protocols=base.protocols,
        dataset=base.dataset,
        population_sizes=(2048,),
        dimensions=(4,),
        widths=(2,),
        epsilons=(1.0,),
        repetitions=1,
        protocol_options=base.protocol_options,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


class TestSweepFigures:
    def test_fig4_runs_and_renders(self):
        result = fig4_vary_n.run(tiny_sweep(fig4_vary_n, population_sizes=(1024, 2048)))
        assert len(result.points) == 6 * 2
        text = fig4_vary_n.render(result)
        assert "Figure 4" in text and "InpHT" in text

    def test_fig5_runs_and_renders(self):
        result = fig5_vary_k.run(tiny_sweep(fig5_vary_k, widths=(1, 2)))
        text = fig5_vary_k.render(result)
        assert "Figure 5" in text

    def test_fig9_runs_and_renders(self):
        result = fig9_vary_eps.run(tiny_sweep(fig9_vary_eps, epsilons=(0.5, 1.0)))
        text = fig9_vary_eps.render(result)
        assert "Figure 9" in text

    def test_fig6_runs_and_renders(self):
        result = fig6_vary_d_em.run(
            tiny_sweep(fig6_vary_d_em, dimensions=(6,), epsilons=(1.0,))
        )
        assert {point.protocol for point in result.points} == set(fig6_vary_d_em.PROTOCOLS)
        assert "Figure 6" in fig6_vary_d_em.render(result)

    def test_fig10_runs_and_renders(self):
        result = fig10_freq_oracles.run(tiny_sweep(fig10_freq_oracles, dimensions=(4,)))
        assert "Figure 10" in fig10_freq_oracles.render(result)


class TestDescriptiveAndApplicationFigures:
    def test_fig3_heatmap(self):
        result = fig3_taxi_heatmap.run(fig3_taxi_heatmap.HeatmapConfig(population=4096))
        assert result.correlations.shape == (8, 8)
        assert result.correlation("Night_pick", "Night_drop") > 0.3
        assert ("Night_pick", "Night_drop") in result.strongly_dependent_pairs()
        assert "Figure 3" in fig3_taxi_heatmap.render(result)

    def test_fig7_chi2(self):
        result = fig7_chi2.run(fig7_chi2.Chi2Config(population=4096, protocols=("InpHT",)))
        comparisons = result.comparisons["InpHT"]
        assert len(comparisons) == 6
        # The three dependent pairs must be detected by the private test.
        assert all(entry.private.dependent for entry in comparisons[:3])
        assert 0 <= result.agreement_rate("InpHT") <= 1
        assert "Figure 7" in fig7_chi2.render(result)

    def test_fig8_chow_liu(self):
        config = fig8_chow_liu.ChowLiuConfig(
            population=4096, dimension=6, epsilons=(1.0,), repetitions=1
        )
        result = fig8_chow_liu.run(config)
        assert result.exact_total_mi > 0
        assert ("InpHT", 1.0) in result.private_total_mi
        assert 0 <= result.relative_quality("InpHT", 1.0) <= 1.5
        assert "Figure 8" in fig8_chow_liu.render(result)


class TestTables:
    def test_table2(self):
        result = table2_bounds.run(table2_bounds.Table2Config(population=2048))
        assert len(result.rows) == 6
        row = result.row("InpHT")
        assert row["comm_bits_analytic"] == row["comm_bits_protocol"]
        with pytest.raises(KeyError):
            result.row("Nope")
        assert "Table 2" in table2_bounds.render(result)

    def test_table3(self):
        config = table3_em_failures.Table3Config(
            settings=(table3_em_failures.EMFailureSetting(1024, 8, 2, 0.1),)
        )
        result = table3_em_failures.run(config)
        setting, failed, total = result.failures[0]
        assert total == 28
        assert 0 <= failed <= total
        assert result.failure_rate(setting) == pytest.approx(failed / total)
        assert "Table 3" in table3_em_failures.render(result)

    def test_categorical(self):
        result = categorical.run(categorical.CategoricalConfig(population=2048))
        assert result.binary_dimension == 7
        assert len(result.errors) == 6
        assert result.mean_error >= 0
        assert "Corollary 6.1" in categorical.render(result)


class TestAblations:
    def test_oue_ablation(self):
        config = ablations.OUEAblationConfig(population=2048, repetitions=1)
        result = ablations.run_oue_ablation(config)
        assert len(result.errors) == 4
        assert np.isfinite(result.relative_difference("InpRR"))
        assert "Ablation" in ablations.render_oue_ablation(result)

    def test_sample_vs_split(self):
        result = ablations.run_sample_vs_split()
        for m in result.config.num_items:
            if m > 1:
                assert result.advantage(m) > 1
        assert "Ablation" in ablations.render_sample_vs_split(result)

    def test_projection_ablation(self):
        config = ablations.ProjectionAblationConfig(
            population=2048, repetitions=1, protocols=("InpHT",)
        )
        result = ablations.run_projection_ablation(config)
        assert ("InpHT", "raw") in result.errors
        assert ("InpHT", "projected") in result.errors
        assert np.isfinite(result.improvement("InpHT"))
        assert "Ablation" in ablations.render_projection_ablation(result)
