"""Unit tests for the experiment error metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import MarginalQueryError
from repro.core.marginals import MarginalWorkload
from repro.core.privacy import PrivacyBudget
from repro.experiments.metrics import (
    marginal_errors,
    mean_total_variation,
    mean_total_variation_by_width,
)
from repro.protocols.base import DistributionEstimator
from repro.protocols.inp_ht import InpHT


class TestWithExactEstimator:
    """An estimator built from the exact distribution must have zero error."""

    @pytest.fixture
    def exact_estimator(self, tiny_dataset):
        workload = MarginalWorkload(tiny_dataset.domain, 3)
        return DistributionEstimator(workload, tiny_dataset.full_distribution())

    def test_zero_error(self, tiny_dataset, exact_estimator):
        assert mean_total_variation(tiny_dataset, exact_estimator, widths=[1, 2, 3]) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_reports_cover_all_marginals(self, tiny_dataset, exact_estimator):
        reports = marginal_errors(tiny_dataset, exact_estimator, widths=[1, 2])
        assert len(reports) == 4 + 6
        assert all(report.total_variation == pytest.approx(0.0) for report in reports)
        assert {report.width for report in reports} == {1, 2}

    def test_explicit_beta_list(self, tiny_dataset, exact_estimator):
        reports = marginal_errors(
            tiny_dataset, exact_estimator, betas=[["a", "b"], ["c"]]
        )
        assert len(reports) == 2
        assert reports[0].width == 2 and reports[1].width == 1


class TestWithNoisyEstimator:
    def test_by_width_breakdown(self, tiny_dataset, rng):
        estimator = InpHT(PrivacyBudget(1.0), 2).run(tiny_dataset, rng=rng)
        by_width = mean_total_variation_by_width(tiny_dataset, estimator, widths=[1, 2])
        assert set(by_width) == {1, 2}
        assert all(value >= 0 for value in by_width.values())
        overall = mean_total_variation(tiny_dataset, estimator, widths=[1, 2])
        weighted = (4 * by_width[1] + 6 * by_width[2]) / 10
        assert overall == pytest.approx(weighted)

    def test_width_outside_workload_rejected(self, tiny_dataset, rng):
        estimator = InpHT(PrivacyBudget(1.0), 2).run(tiny_dataset, rng=rng)
        with pytest.raises(MarginalQueryError):
            mean_total_variation(tiny_dataset, estimator, widths=[3])

    def test_max_cell_error_at_most_double_tv(self, tiny_dataset, rng):
        estimator = InpHT(PrivacyBudget(1.0), 2).run(tiny_dataset, rng=rng)
        for report in marginal_errors(tiny_dataset, estimator, widths=[2]):
            assert report.max_cell_error <= 2 * report.total_variation + 1e-12
