"""Unit tests for the sweep harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ProtocolConfigurationError
from repro.experiments.config import SweepConfig
from repro.experiments.harness import make_dataset, run_sweep


class TestMakeDataset:
    @pytest.mark.parametrize("name", ["taxi", "movielens", "skewed", "uniform"])
    def test_known_datasets(self, name, rng):
        dataset = make_dataset(name, 500, 6, rng)
        assert dataset.size == 500
        assert dataset.dimension == 6

    def test_unknown_dataset(self, rng):
        with pytest.raises(ProtocolConfigurationError):
            make_dataset("census", 100, 4, rng)


class TestRunSweep:
    @pytest.fixture(scope="class")
    def result(self):
        config = SweepConfig(
            protocols=("InpHT", "InpPS"),
            dataset="uniform",
            population_sizes=(1024, 4096),
            dimensions=(4,),
            widths=(1, 2),
            epsilons=(1.0,),
            repetitions=2,
            seed=7,
        )
        return run_sweep(config)

    def test_point_count(self, result):
        # 2 protocols x 2 populations x 1 dimension x 2 widths x 1 epsilon.
        assert len(result.points) == 8

    def test_points_have_all_repetitions(self, result):
        assert all(len(point.errors) == 2 for point in result.points)
        for point in result.points:
            assert point.mean_error == pytest.approx(np.mean(point.errors))
            assert point.std_error == pytest.approx(np.std(point.errors))

    def test_filter_and_series(self, result):
        filtered = result.filter(protocol="InpHT", width=2)
        assert len(filtered) == 2
        series = result.series("InpHT", "population", width=2)
        assert [x for x, *_ in series] == [1024.0, 4096.0]

    def test_best_protocol(self, result):
        best = result.best_protocol(population=4096, width=2)
        assert best in {"InpHT", "InpPS"}

    def test_best_protocol_rejects_empty_selection(self, result):
        with pytest.raises(ProtocolConfigurationError):
            result.best_protocol(population=999)

    def test_rows_serialisable(self, result):
        rows = result.as_rows()
        assert len(rows) == len(result.points)
        assert {"protocol", "N", "d", "k", "epsilon", "mean_tv", "std_tv"} <= set(
            rows[0]
        )

    def test_reproducible_with_same_seed(self):
        config = SweepConfig(
            protocols=("InpHT",),
            dataset="uniform",
            population_sizes=(2048,),
            dimensions=(4,),
            widths=(2,),
            epsilons=(1.0,),
            repetitions=2,
            seed=99,
        )
        first = run_sweep(config)
        second = run_sweep(config)
        assert [p.mean_error for p in first.points] == [
            p.mean_error for p in second.points
        ]

    @pytest.mark.parametrize("batch_size, shards", [(256, 2), (None, 1)])
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executor_backend_is_invisible_in_sweep_errors(
        self, executor, batch_size, shards
    ):
        """A sweep's errors are identical whichever backend runs the shards.

        The unbatched case matters: there the caller's repetition generator
        itself encodes each protocol's single batch, so backend-identical
        errors require the process backend to fast-forward it correctly.
        """
        import dataclasses

        base = SweepConfig(
            protocols=("InpHT", "MargPS"),
            dataset="uniform",
            population_sizes=(1024,),
            dimensions=(4,),
            widths=(2,),
            epsilons=(1.0,),
            repetitions=2,
            seed=13,
            batch_size=batch_size,
            shards=shards,
        )
        workers = 2 if executor != "serial" and shards > 1 else 1
        parallel = dataclasses.replace(base, executor=executor, workers=workers)
        assert [p.errors for p in run_sweep(base).points] == [
            p.errors for p in run_sweep(parallel).points
        ]

    def test_width_larger_than_dimension_skipped(self):
        config = SweepConfig(
            protocols=("InpHT",),
            dataset="uniform",
            population_sizes=(512,),
            dimensions=(2,),
            widths=(2, 3),
            epsilons=(1.0,),
            repetitions=1,
        )
        result = run_sweep(config)
        assert all(point.width <= 2 for point in result.points)
