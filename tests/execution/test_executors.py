"""Unit tests for the execution backends and the accumulator state contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import AggregationError, ExecutionError
from repro.core.privacy import PrivacyBudget
from repro.datasets import BinaryDataset
from repro.execution import (
    EXECUTOR_CLASSES,
    ProcessExecutor,
    SerialExecutor,
    ShardWork,
    ThreadExecutor,
    available_executors,
    execute_shard,
    execute_shard_state,
    make_executor,
    resolve_executor,
)
from repro.protocols.registry import PROTOCOL_CLASSES, make_protocol

LN3 = float(np.log(3.0))

#: Smaller sketch so the InpHTCMS cases stay fast at test scale.
PROTOCOL_OPTIONS = {"InpHTCMS": {"num_hashes": 3, "width": 32}}

ALL_PROTOCOLS = sorted(PROTOCOL_CLASSES)


def build(name: str):
    options = PROTOCOL_OPTIONS.get(name, {})
    return make_protocol(name, PrivacyBudget(LN3), 2, **options)


@pytest.fixture(scope="module")
def dataset() -> BinaryDataset:
    rng = np.random.default_rng(41)
    records = (rng.random((400, 4)) < 0.5).astype(np.int8)
    return BinaryDataset.from_records(records)


def make_works(protocol, dataset, num_shards=2, batches_per_shard=2):
    """Carve the dataset into shard work units with per-batch generators."""
    chunk = dataset.size // (num_shards * batches_per_shard)
    works = []
    seed = 0
    for shard in range(num_shards):
        batches, rngs = [], []
        for _ in range(batches_per_shard):
            start = seed * chunk
            batches.append(dataset.records[start : start + chunk])
            rngs.append(np.random.default_rng(1000 + seed))
            seed += 1
        works.append(
            ShardWork(
                protocol=protocol,
                domain=dataset.domain,
                batches=tuple(batches),
                rngs=tuple(rngs),
            )
        )
    return works


class TestRegistry:
    def test_available_executors(self):
        assert available_executors() == ["process", "serial", "thread"]

    def test_make_executor_by_name(self):
        for name, cls in EXECUTOR_CLASSES.items():
            executor = make_executor(name, workers=2)
            assert isinstance(executor, cls)
            assert executor.workers == 2
            executor.close()

    def test_make_executor_rejects_unknown_name(self):
        with pytest.raises(ExecutionError, match="unknown executor"):
            make_executor("gpu")

    def test_worker_count_must_be_positive(self):
        for name in available_executors():
            with pytest.raises(ExecutionError, match="worker count"):
                make_executor(name, workers=0)

    def test_resolve_executor(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        instance = SerialExecutor()
        assert resolve_executor(instance) is instance
        with pytest.raises(ExecutionError):
            resolve_executor(42)

    def test_process_executor_rejects_unknown_start_method(self):
        with pytest.raises(ExecutionError, match="start method"):
            ProcessExecutor(workers=1, start_method="teleport")


class TestShardWork:
    def test_rejects_empty_work(self, dataset):
        protocol = build("InpPS")
        with pytest.raises(ExecutionError, match="at least one batch"):
            ShardWork(
                protocol=protocol, domain=dataset.domain, batches=(), rngs=()
            )

    def test_rejects_mismatched_generators(self, dataset):
        protocol = build("InpPS")
        with pytest.raises(ExecutionError, match="its own generator"):
            ShardWork(
                protocol=protocol,
                domain=dataset.domain,
                batches=(dataset.records,),
                rngs=(),
            )

    def test_execute_shard_folds_batches_in_order(self, dataset):
        protocol = build("InpPS")
        work = make_works(protocol, dataset, num_shards=1, batches_per_shard=4)[0]
        accumulator = execute_shard(work)
        assert accumulator.num_reports == sum(len(b) for b in work.batches)

        # Same batches, same per-batch seeds -> bit-identical estimates.
        reference = protocol.accumulator(dataset.domain)
        for position, batch in enumerate(work.batches):
            reference.update(
                protocol.encode_batch(
                    batch, rng=np.random.default_rng(1000 + position)
                )
            )
        for beta, table in reference.finalize().query_all().items():
            np.testing.assert_array_equal(
                table.values, accumulator.finalize().query(beta).values
            )


class TestRunShards:
    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_backends_match_direct_evaluation(self, dataset, name):
        protocol = build("MargPS")
        # Two identical work lists: generators are stateful and consumed by
        # evaluation, so each side gets its own copies seeded the same way.
        expected = [
            execute_shard(work) for work in make_works(protocol, dataset)
        ]
        with make_executor(name, workers=2) as executor:
            observed = executor.run_shards(make_works(protocol, dataset))
        assert len(observed) == len(expected)
        for left, right in zip(expected, observed):
            assert left.num_reports == right.num_reports
            for beta, table in left.finalize().query_all().items():
                np.testing.assert_array_equal(
                    table.values, right.finalize().query(beta).values
                )

    def test_empty_work_list_is_rejected(self):
        with pytest.raises(ExecutionError, match="at least one work unit"):
            SerialExecutor().run_shards([])

    def test_close_is_idempotent_and_pool_restarts(self, dataset):
        protocol = build("InpHT")
        works = make_works(protocol, dataset)
        executor = ThreadExecutor(workers=2)
        executor.run_shards(works)
        executor.close()
        executor.close()
        # A closed executor lazily re-creates its pool on the next call.
        assert len(executor.run_shards(works)) == len(works)
        executor.close()


class TestStateContract:
    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_state_round_trip_preserves_estimates(self, name, dataset):
        protocol = build(name)
        rng = np.random.default_rng(7)
        original = protocol.accumulator(dataset.domain).update(
            protocol.encode_batch(dataset.records, rng=rng)
        )
        state = original.state_dict()
        assert state["num_reports"] == dataset.size
        restored = protocol.accumulator(dataset.domain).load_state(state)
        assert restored.num_reports == original.num_reports
        for beta, table in original.finalize().query_all().items():
            np.testing.assert_array_equal(
                table.values, restored.finalize().query(beta).values
            )

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_state_survives_pickling(self, name, dataset):
        import pickle

        protocol = build(name)
        rng = np.random.default_rng(7)
        original = protocol.accumulator(dataset.domain).update(
            protocol.encode_batch(dataset.records, rng=rng)
        )
        blob = pickle.dumps(original.state_dict())
        restored = protocol.accumulator(dataset.domain).load_state(
            pickle.loads(blob)
        )
        for beta, table in original.finalize().query_all().items():
            np.testing.assert_array_equal(
                table.values, restored.finalize().query(beta).values
            )

    def test_load_state_requires_fresh_accumulator(self, dataset):
        protocol = build("InpPS")
        rng = np.random.default_rng(7)
        used = protocol.accumulator(dataset.domain).update(
            protocol.encode_batch(dataset.records, rng=rng)
        )
        with pytest.raises(AggregationError, match="fresh accumulator"):
            used.load_state(used.state_dict())

    def test_load_state_rejects_missing_report_count(self, dataset):
        protocol = build("InpPS")
        state = protocol.accumulator(dataset.domain).state_dict()
        del state["num_reports"]
        with pytest.raises(AggregationError, match="num_reports"):
            protocol.accumulator(dataset.domain).load_state(state)

    def test_load_state_rejects_negative_report_count(self, dataset):
        protocol = build("InpPS")
        state = protocol.accumulator(dataset.domain).state_dict()
        state["num_reports"] = -3
        with pytest.raises(AggregationError, match="negative"):
            protocol.accumulator(dataset.domain).load_state(state)

    def test_load_state_rejects_wrong_shape(self, dataset):
        protocol = build("InpPS")
        rng = np.random.default_rng(7)
        state = (
            protocol.accumulator(dataset.domain)
            .update(protocol.encode_batch(dataset.records, rng=rng))
            .state_dict()
        )
        state["counts"] = state["counts"][:-1]
        with pytest.raises(AggregationError, match="shape"):
            protocol.accumulator(dataset.domain).load_state(state)

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_load_state_rejects_missing_field(self, name, dataset):
        """Every protocol reports a gutted state as an AggregationError."""
        protocol = build(name)
        state = protocol.accumulator(dataset.domain).state_dict()
        field = next(key for key in state if key != "num_reports")
        del state[field]
        with pytest.raises(AggregationError, match="missing the field"):
            protocol.accumulator(dataset.domain).load_state(state)

    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_caller_generator_side_effects_match_serial(self, dataset, name):
        """Backends are interchangeable even for the caller's rng state.

        With ``batch_size=None`` the caller's own generator encodes the
        single batch.  The process backend consumes a pickled copy in the
        worker, so it must fast-forward the driver-side generator to the
        worker's final state — otherwise a caller reusing the generator
        (e.g. the sweep harness, protocol after protocol) would diverge
        from the serial backend.
        """
        protocol = build("InpHT")
        baseline = np.random.default_rng(5)
        protocol.run_streaming(dataset, rng=baseline)
        other = np.random.default_rng(5)
        with make_executor(name, workers=2) as executor:
            protocol.run_streaming(dataset, rng=other, executor=executor)
        assert baseline.bit_generator.state == other.bit_generator.state
        assert baseline.integers(0, 2**31) == other.integers(0, 2**31)

    def test_execute_shard_state_is_restorable(self, dataset):
        protocol = build("MargHT")
        state = execute_shard_state(
            make_works(protocol, dataset, num_shards=1)[0]
        )
        restored = protocol.accumulator(dataset.domain).load_state(state)
        direct = execute_shard(make_works(protocol, dataset, num_shards=1)[0])
        for beta, table in direct.finalize().query_all().items():
            np.testing.assert_array_equal(
                table.values, restored.finalize().query(beta).values
            )
