"""Unit tests for the Efron–Stein decomposition and the InpES protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import (
    EncodingError,
    MarginalQueryError,
    ProtocolConfigurationError,
)
from repro.core.privacy import PrivacyBudget
from repro.datasets.encoding import CategoricalDomain
from repro.extensions.efron_stein import (
    AttributeBasis,
    EfronSteinDecomposition,
    InpES,
)


@pytest.fixture
def domain() -> CategoricalDomain:
    return CategoricalDomain(["colour", "size", "flag"], [4, 3, 2])


@pytest.fixture
def records(rng, domain) -> np.ndarray:
    """Correlated categorical records: size follows colour with noise."""
    n = 30_000
    colour = rng.choice(4, size=n, p=[0.4, 0.3, 0.2, 0.1])
    size = np.clip(colour // 2 + rng.integers(0, 2, size=n), 0, 2)
    flag = (rng.random(n) < 0.3 + 0.1 * (colour == 0)).astype(np.int64)
    return np.stack([colour, size, flag], axis=1)


def empirical_marginal(records: np.ndarray, columns, cards) -> np.ndarray:
    counts = np.zeros(cards, dtype=np.float64)
    for row in records:
        counts[tuple(row[c] for c in columns)] += 1
    return counts / records.shape[0]


class TestAttributeBasis:
    @pytest.mark.parametrize("cardinality", [2, 3, 4, 7])
    def test_helmert_is_orthonormal_with_constant_row(self, cardinality):
        basis = AttributeBasis.helmert(cardinality)
        assert basis.is_orthonormal()
        np.testing.assert_allclose(
            basis.matrix[0], np.full(cardinality, 1 / np.sqrt(cardinality))
        )

    def test_binary_case_matches_hadamard_signs(self):
        basis = AttributeBasis.helmert(2)
        scaled = np.sqrt(2) * basis.matrix[1]
        np.testing.assert_allclose(scaled, [1.0, -1.0])

    def test_rejects_small_cardinality(self):
        with pytest.raises(EncodingError):
            AttributeBasis.helmert(1)

    def test_rejects_bad_matrix_shape(self):
        with pytest.raises(EncodingError):
            AttributeBasis(3, np.eye(2))


class TestDecomposition:
    def test_coefficient_counts(self, domain):
        decomposition = EfronSteinDecomposition(domain)
        singles = decomposition.coefficient_indices(1)
        assert len(singles) == (4 - 1) + (3 - 1) + (2 - 1)
        pairs = decomposition.coefficient_indices(2)
        expected_pairs = 3 * 2 + 3 * 1 + 2 * 1
        assert len(pairs) == len(singles) + expected_pairs

    def test_coefficients_for_marginal(self, domain):
        decomposition = EfronSteinDecomposition(domain)
        needed = decomposition.coefficients_for_marginal(["colour", "flag"])
        assert len(needed) == 4 * 2
        # All returned indices are constant on the "size" attribute.
        assert all(index[1] == 0 for index in needed)

    def test_constant_coefficient_is_one(self, domain, records):
        decomposition = EfronSteinDecomposition(domain)
        coefficients = decomposition.coefficients_of(records, max_support=1)
        assert coefficients[(0, 0, 0)] == pytest.approx(1.0)

    def test_exact_reconstruction_of_marginals(self, domain, records):
        decomposition = EfronSteinDecomposition(domain)
        coefficients = decomposition.coefficients_of(records, max_support=2)
        for attributes, columns, cards in (
            (["colour", "size"], (0, 1), (4, 3)),
            (["size", "flag"], (1, 2), (3, 2)),
            (["colour"], (0,), (4,)),
        ):
            reconstructed = decomposition.marginal_from_coefficients(
                attributes, coefficients
            )
            expected = empirical_marginal(records, columns, cards)
            np.testing.assert_allclose(reconstructed, expected, atol=1e-10)

    def test_binary_domain_matches_hadamard(self, rng):
        """On an all-binary domain the ES coefficients equal the scaled
        Hadamard coefficients of the one-hot distribution."""
        from repro.core.hadamard import scaled_coefficients

        domain = CategoricalDomain(["a", "b", "c"], [2, 2, 2])
        records = rng.integers(0, 2, size=(5000, 3))
        decomposition = EfronSteinDecomposition(domain)
        es = decomposition.coefficients_of(records, max_support=3)
        indices = records[:, 0] + 2 * records[:, 1] + 4 * records[:, 2]
        distribution = np.bincount(indices, minlength=8) / records.shape[0]
        hadamard = scaled_coefficients(distribution)
        for index, value in es.items():
            mask = sum(1 << position for position, bit in enumerate(index) if bit)
            assert value == pytest.approx(hadamard[mask], abs=1e-9)

    def test_value_bound_holds(self, domain, records):
        decomposition = EfronSteinDecomposition(domain)
        for index in decomposition.coefficient_indices(2):
            bound = decomposition.value_bound(index)
            values = decomposition.basis_values(index, records)
            assert np.abs(values).max() <= bound + 1e-9

    def test_missing_coefficient_raises(self, domain):
        decomposition = EfronSteinDecomposition(domain)
        with pytest.raises(MarginalQueryError):
            decomposition.marginal_from_coefficients(["colour"], {(0, 0, 0): 1.0})

    def test_bad_support_width_rejected(self, domain):
        decomposition = EfronSteinDecomposition(domain)
        with pytest.raises(MarginalQueryError):
            decomposition.coefficient_indices(0)
        with pytest.raises(MarginalQueryError):
            decomposition.coefficient_indices(4)


class TestInpES:
    def test_configuration_validation(self, domain, records, rng):
        with pytest.raises(ProtocolConfigurationError):
            InpES(PrivacyBudget(1.0), 0)
        with pytest.raises(ProtocolConfigurationError):
            InpES(PrivacyBudget(1.0), 5).run(records, domain, rng=rng)
        with pytest.raises(ProtocolConfigurationError):
            InpES(PrivacyBudget(1.0), 2).run(records[:, :2], domain, rng=rng)

    def test_budget_coercion(self):
        assert InpES(1.3, 2).budget.epsilon == pytest.approx(1.3)

    def test_high_budget_recovers_categorical_marginals(self, domain, records, rng):
        protocol = InpES(PrivacyBudget(8.0), max_width=2)
        estimator = protocol.run(records, domain, rng=rng)
        for attributes, columns, cards in (
            (["colour", "size"], (0, 1), (4, 3)),
            (["size", "flag"], (1, 2), (3, 2)),
        ):
            estimate = estimator.query(attributes)
            expected = empirical_marginal(records, columns, cards)
            # Even with a near-noiseless mechanism the sampling of one
            # coefficient per user leaves O(sqrt(#coeffs / N)) error.
            assert 0.5 * np.abs(estimate - expected).sum() < 0.12

    def test_moderate_budget_reasonable(self, domain, records, rng):
        protocol = InpES(PrivacyBudget(np.log(3)), max_width=2)
        estimator = protocol.run(records, domain, rng=rng)
        estimate = estimator.query(["colour", "size"])
        expected = empirical_marginal(records, (0, 1), (4, 3))
        assert 0.5 * np.abs(estimate - expected).sum() < 0.25
        assert estimate.sum() == pytest.approx(1.0, abs=0.1)

    def test_query_width_validation(self, domain, records, rng):
        estimator = InpES(PrivacyBudget(1.0), max_width=2).run(records, domain, rng=rng)
        with pytest.raises(MarginalQueryError):
            estimator.query(["colour", "size", "flag"])

    def test_communication_bits(self, domain):
        bits = InpES(PrivacyBudget(1.0), max_width=2).communication_bits(domain)
        # 17 coefficients for cardinalities (4, 3, 2) at width 2:
        # singles 3+2+1 = 6, pairs 3*2 + 3*1 + 2*1 = 11 -> 5 index bits + 1.
        assert bits == 6

    def test_binary_domain_behaves_like_inp_ht(self, rng):
        """On binary data InpES should achieve accuracy comparable to InpHT."""
        from repro.datasets.base import BinaryDataset
        from repro.experiments.metrics import mean_total_variation
        from repro.protocols.inp_ht import InpHT

        n = 20_000
        bits = rng.integers(0, 2, size=(n, 4))
        domain = CategoricalDomain(["a", "b", "c", "d"], [2, 2, 2, 2])
        binary = BinaryDataset.from_records(bits, attribute_names=["a", "b", "c", "d"])
        budget = PrivacyBudget(np.log(3))

        ht_error = mean_total_variation(
            binary, InpHT(budget, 2).run(binary, rng=np.random.default_rng(0)), widths=[2]
        )
        estimator = InpES(budget, 2).run(bits, domain, rng=np.random.default_rng(0))
        es_errors = []
        names = ["a", "b", "c", "d"]
        for i in range(4):
            for j in range(i + 1, 4):
                estimate = estimator.query([names[i], names[j]]).reshape(-1)
                expected = empirical_marginal(bits, (i, j), (2, 2)).reshape(-1)
                es_errors.append(0.5 * np.abs(estimate - expected).sum())
        assert np.mean(es_errors) < ht_error * 2.5
