"""Routing policies: balance, stability, and dead-collector eviction."""

from __future__ import annotations

import pytest

from repro.core.exceptions import CollectionServiceError, ProtocolConfigurationError
from repro.topology import (
    ConsistentHashRouter,
    RoundRobinRouter,
    Router,
    make_router,
)

TARGETS = [("127.0.0.1", 9001), ("127.0.0.1", 9002), ("127.0.0.1", 9003)]


class TestValidation:
    def test_needs_targets(self):
        with pytest.raises(ProtocolConfigurationError, match="at least one"):
            RoundRobinRouter([])

    def test_rejects_duplicates(self):
        with pytest.raises(ProtocolConfigurationError, match="distinct"):
            RoundRobinRouter([("h", 1), ("h", 1)])

    def test_rejects_non_pairs(self):
        with pytest.raises(ProtocolConfigurationError, match="pairs"):
            RoundRobinRouter(["localhost"])

    def test_unknown_policy(self):
        with pytest.raises(ProtocolConfigurationError, match="round-robin"):
            make_router("random", TARGETS)

    def test_base_route_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Router(TARGETS).route()


class TestRoundRobin:
    def test_deals_in_turn(self):
        router = RoundRobinRouter(TARGETS)
        assert [router.route() for _ in range(6)] == TARGETS + TARGETS

    def test_death_removes_from_rotation(self):
        router = RoundRobinRouter(TARGETS)
        assert router.mark_dead(TARGETS[1])
        assert TARGETS[1] not in {router.route() for _ in range(10)}
        assert router.dead == (TARGETS[1],)

    def test_mark_dead_is_idempotent(self):
        router = RoundRobinRouter(TARGETS)
        assert router.mark_dead(TARGETS[0])
        assert not router.mark_dead(TARGETS[0])
        assert not router.mark_dead(("unknown", 1))

    def test_all_dead_raises_readably(self):
        router = RoundRobinRouter(TARGETS)
        for target in TARGETS:
            router.mark_dead(target)
        with pytest.raises(CollectionServiceError, match="no live collectors"):
            router.route()


class TestConsistentHash:
    def test_stable_per_key(self):
        router = ConsistentHashRouter(TARGETS)
        for key in ("a", ("client", 3), 17, None):
            assert router.route(key) == router.route(key)

    def test_placement_is_process_independent(self):
        # SHA-256 ring: two separately built routers agree on placement
        # (hash() randomization would break cross-process routing).
        one, two = ConsistentHashRouter(TARGETS), ConsistentHashRouter(TARGETS)
        assert [one.route(k) for k in range(64)] == [
            two.route(k) for k in range(64)
        ]

    def test_death_remaps_only_the_dead_arc(self):
        router = ConsistentHashRouter(TARGETS)
        keys = [("client", index) for index in range(256)]
        before = {key: router.route(key) for key in keys}
        victim = TARGETS[2]
        router.mark_dead(victim)
        moved = 0
        for key in keys:
            after = router.route(key)
            if before[key] == victim:
                assert after != victim
                moved += 1
            else:
                assert after == before[key], "a surviving key was remapped"
        assert moved > 0

    def test_spread_uses_every_target(self):
        router = ConsistentHashRouter(TARGETS)
        placed = {router.route(("client", index)) for index in range(256)}
        assert placed == set(TARGETS)

    def test_virtual_nodes_validated(self):
        with pytest.raises(ProtocolConfigurationError, match="virtual_nodes"):
            ConsistentHashRouter(TARGETS, virtual_nodes=0)
