"""Satellite: tree-shape invariance of the merge algebra.

Any partition of the client frames over {1, 2, 3} collectors × {1, 2}
shards — dealt round-robin, hashed, or adversarially lopsided — must
finalize bit-for-bit identical to one flat session, for every protocol.
This is the algebraic property the socket topology leans on: routing is
pure placement, never a statistical choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.service.session import AggregationSession
from repro.topology import FanInAggregator

from ..service.util import (
    ALL_PROTOCOLS,
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)

BATCH = 12  # 96 records -> 8 frames, enough to split every which way


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


@pytest.fixture(scope="module")
def domain(dataset):
    return Domain.binary(dataset.dimension)


def _tree_estimates(protocol, domain, frames, assignment, collectors, shards):
    """Finalize a (collectors × shards) tree for one frame assignment.

    ``assignment[i] = (collector, shard)`` — each collector merges its own
    shards first (exactly what ``CollectionServer.combined_session``
    does), then the fan-in aggregator merges the collectors.
    """
    sessions = {}
    for index, frame in enumerate(frames):
        key = assignment[index]
        if key not in sessions:
            sessions[key] = AggregationSession(protocol.spec(), domain)
        sessions[key].submit(frame)
    aggregator = FanInAggregator(protocol.spec(), domain)
    for collector in range(collectors):
        collector_session = AggregationSession(protocol.spec(), domain)
        for shard in range(shards):
            shard_session = sessions.get((collector, shard))
            if shard_session is not None:
                collector_session.merge(shard_session)
        aggregator.ingest_session(f"c{collector}", collector_session)
    merged = aggregator.merged_session()
    return merged, estimates_of(merged.snapshot())


@pytest.mark.parametrize("protocol_name", ALL_PROTOCOLS)
@pytest.mark.parametrize("collectors", [1, 2, 3])
@pytest.mark.parametrize("shards", [1, 2])
def test_round_robin_partition_matches_flat(
    protocol_name, collectors, shards, dataset, domain
):
    protocol = build(protocol_name)
    frames = encode_frames(protocol, dataset, BATCH)
    flat = AggregationSession(protocol.spec(), domain)
    for frame in frames:
        flat.submit(frame)
    assignment = {
        index: (index % collectors, (index // collectors) % shards)
        for index in range(len(frames))
    }
    merged, observed = _tree_estimates(
        protocol, domain, frames, assignment, collectors, shards
    )
    assert merged.num_reports == flat.num_reports
    assert_estimates_equal(observed, estimates_of(flat.snapshot()))


@pytest.mark.parametrize("protocol_name", ALL_PROTOCOLS)
def test_random_partitions_match_flat(protocol_name, dataset, domain):
    """Random (including empty-collector and lopsided) partitions."""
    protocol = build(protocol_name)
    frames = encode_frames(protocol, dataset, BATCH)
    flat = AggregationSession(protocol.spec(), domain)
    for frame in frames:
        flat.submit(frame)
    expected = estimates_of(flat.snapshot())
    rng = np.random.default_rng(20180610)
    for _ in range(4):
        collectors = int(rng.integers(1, 4))
        shards = int(rng.integers(1, 3))
        assignment = {
            index: (
                int(rng.integers(0, collectors)),
                int(rng.integers(0, shards)),
            )
            for index in range(len(frames))
        }
        merged, observed = _tree_estimates(
            protocol, domain, frames, assignment, collectors, shards
        )
        assert merged.num_reports == flat.num_reports
        assert_estimates_equal(observed, expected)


@pytest.mark.parametrize("protocol_name", ALL_PROTOCOLS)
def test_everything_on_one_collector_matches_flat(
    protocol_name, dataset, domain
):
    """The degenerate partition: a 3-collector tree where only one
    collector ever saw traffic (the post-failover shape)."""
    protocol = build(protocol_name)
    frames = encode_frames(protocol, dataset, BATCH)
    flat = AggregationSession(protocol.spec(), domain)
    for frame in frames:
        flat.submit(frame)
    assignment = {index: (1, 0) for index in range(len(frames))}
    merged, observed = _tree_estimates(
        protocol, domain, frames, assignment, collectors=3, shards=1
    )
    assert merged.num_reports == flat.num_reports
    assert_estimates_equal(observed, estimates_of(flat.snapshot()))
