"""FanInAggregator: exact merges, idempotent ingestion, supersession."""

from __future__ import annotations

import pytest

from repro.core.domain import Domain
from repro.core.exceptions import CollectionServiceError
from repro.service.session import AggregationSession
from repro.topology import FanInAggregator, PulledState

from ..service.util import (
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)


@pytest.fixture(scope="module")
def setting():
    protocol = build("MargPS")
    dataset = small_dataset()
    domain = Domain.binary(dataset.dimension)
    frames = encode_frames(protocol, dataset, batch_size=12)
    return protocol, domain, frames


def _session_with(protocol, domain, frames):
    session = AggregationSession(protocol.spec(), domain)
    for frame in frames:
        session.submit(frame)
    return session


def _flat(protocol, domain, frames):
    return _session_with(protocol, domain, frames)


class TestMerge:
    def test_fan_in_equals_flat(self, setting):
        protocol, domain, frames = setting
        aggregator = FanInAggregator(protocol.spec(), domain)
        for index in range(3):
            aggregator.ingest_session(
                f"c{index}", _session_with(protocol, domain, frames[index::3])
            )
        flat = _flat(protocol, domain, frames)
        merged = aggregator.merged_session()
        assert merged.num_reports == flat.num_reports
        assert_estimates_equal(
            estimates_of(merged.snapshot()), estimates_of(flat.snapshot())
        )

    def test_duplicate_ingest_counts_once(self, setting):
        """A re-pulled (duplicated) snapshot replaces, never adds."""
        protocol, domain, frames = setting
        aggregator = FanInAggregator(protocol.spec(), domain)
        session = _session_with(protocol, domain, frames)
        for _ in range(3):
            aggregator.ingest_session("c0", session)
        assert aggregator.collector_ids == ("c0",)
        assert aggregator.num_reports == session.num_reports

    def test_newer_snapshot_supersedes(self, setting):
        """Pull, more traffic, re-pull: the newer superset wins."""
        protocol, domain, frames = setting
        aggregator = FanInAggregator(protocol.spec(), domain)
        early = _session_with(protocol, domain, frames[:2])
        aggregator.ingest_session("c0", early)
        late = _session_with(protocol, domain, frames)
        aggregator.ingest_session("c0", late)
        flat = _flat(protocol, domain, frames)
        assert_estimates_equal(
            estimates_of(aggregator.finalize()),
            estimates_of(flat.snapshot()),
        )

    def test_discard_forgets_a_collector(self, setting):
        protocol, domain, frames = setting
        aggregator = FanInAggregator(protocol.spec(), domain)
        aggregator.ingest_session("c0", _session_with(protocol, domain, frames))
        assert aggregator.discard("c0")
        assert not aggregator.discard("c0")
        assert aggregator.num_reports == 0

    def test_acked_tokens_union(self, setting):
        protocol, domain, frames = setting
        aggregator = FanInAggregator(protocol.spec(), domain)
        aggregator.ingest_session(
            "c0",
            _session_with(protocol, domain, frames[:1]),
            {"t/c0/g0": {"frames": 1, "reports": 12}},
        )
        aggregator.ingest_session(
            "c1",
            _session_with(protocol, domain, frames[1:2]),
            {"t/c0/g1": {"frames": 1, "reports": 12}},
        )
        assert set(aggregator.acked_tokens()) == {"t/c0/g0", "t/c0/g1"}

    def test_ingest_rejects_non_state(self, setting):
        protocol, domain, _ = setting
        aggregator = FanInAggregator(protocol.spec(), domain)
        with pytest.raises(CollectionServiceError, match="PulledState"):
            aggregator.ingest("not a state")

    def test_pulled_state_reports_property(self, setting):
        protocol, domain, frames = setting
        session = _session_with(protocol, domain, frames[:1])
        state = PulledState(collector_id="c9", session=session)
        assert state.num_reports == session.num_reports
