"""Tentpole acceptance: a 3-collector tree survives a mid-stream SIGKILL
and dropped/duplicated checkpoint pulls, finalizing bit-for-bit identical
to ``run_streaming`` — for every one of the nine protocols.

Determinism of the injection point: one client, one frame per connection
group, round-robin dealing.  Group *g* lands on collector ``g % 3``, so
killing collector 1 right after group 1 is acknowledged guarantees that
groups 4, 7, 10 … are dealt to a dead address and must fail over to the
survivors.  The supervisor's recovery of collector 1's durable checkpoint
(written *before* the ACK) carries group 1's reports into the fan-in, so
nothing acknowledged is ever lost and nothing is double-counted.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.domain import Domain

from ..service.util import (
    ALL_PROTOCOLS,
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)
from .harness import (
    KillPlan,
    collect_with_pull_faults,
    drive_fleet,
    flat_estimates,
    spawn_tree,
)

BATCH = 8  # 96 records -> 12 frames -> 12 single-frame groups


@pytest.mark.parametrize("protocol_name", ALL_PROTOCOLS)
def test_kill_one_collector_mid_stream(protocol_name, tmp_path):
    protocol = build(protocol_name)
    dataset = small_dataset()
    domain = Domain.binary(dataset.dimension)
    frames = encode_frames(protocol, dataset, BATCH)
    assert len(frames) == 12

    async def scenario():
        with spawn_tree(protocol, domain, tmp_path) as supervisor:
            report = await drive_fleet(
                supervisor,
                protocol,
                domain,
                frames,
                kill=KillPlan(collector_index=1, client_id=0, group_index=1),
            )
            aggregator = await collect_with_pull_faults(supervisor)
            return report, aggregator

    report, aggregator = asyncio.run(scenario())

    # Every group was acknowledged exactly once — by a live collector, a
    # survivor after failover, or the dead collector's recovered state.
    assert report.rejected_connections == 0
    assert report.acked_reports == dataset.size
    assert report.retries > 0, "no group ever hit the dead collector"

    # The dead collector's durable checkpoint made it into the fan-in.
    assert "c1" in aggregator.collector_ids

    # Bit-for-bit against the flat streaming run.
    merged = aggregator.merged_session()
    assert merged.num_reports == dataset.size
    assert_estimates_equal(
        estimates_of(merged.snapshot()),
        flat_estimates(protocol, dataset, BATCH),
    )
