"""A reusable fault-injection harness for multi-collector topologies.

The scenarios the topology suites need — kill a collector at an exact
point mid-stream, restart it, drop or duplicate checkpoint pulls — are all
expressed against this one helper so each test reads as a scenario, not a
pile of process plumbing:

* :func:`spawn_tree` — a context manager owning a durable
  :class:`~repro.topology.TopologySupervisor` (always shut down, even on
  assertion failure);
* :class:`KillPlan` — "SIGKILL collector *I* the moment client *C*
  finishes group *G*", hooked into the load generator's ``on_group_done``
  so the injection point is deterministic, not time-based;
* :func:`drive_fleet` — run a token-carrying client fleet through the
  tree with the supervisor as failover oracle;
* :func:`collect_with_pull_faults` — fan the tree in while *duplicating*
  every pull and *dropping* (discarding) the first answer, proving pulls
  are idempotent snapshot reads;
* :func:`flat_estimates` — the ``run_streaming`` ground truth the tree
  must match bit-for-bit.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.domain import Domain
from repro.server.loadgen import LoadGenerator, LoadReport
from repro.topology import FanInAggregator, TopologySupervisor

from ..service.util import SEED, estimates_of

__all__ = [
    "KillPlan",
    "spawn_tree",
    "drive_fleet",
    "collect_with_pull_faults",
    "flat_estimates",
]


@dataclass
class KillPlan:
    """SIGKILL collector ``collector_index`` right after client
    ``client_id`` delivers group ``group_index``."""

    collector_index: int
    client_id: int = 0
    group_index: int = 0


@contextmanager
def spawn_tree(
    protocol,
    domain: Domain,
    base_dir,
    *,
    collectors: int = 3,
    shards: int = 1,
    checkpoint_interval: Optional[float] = None,
):
    """A running durable collector tree, shut down no matter what."""
    supervisor = TopologySupervisor(
        protocol.spec(),
        domain,
        collectors=collectors,
        shards=shards,
        base_dir=base_dir,
        checkpoint_interval=checkpoint_interval,
    )
    supervisor.start()
    try:
        yield supervisor
    finally:
        supervisor.shutdown()


async def drive_fleet(
    supervisor: TopologySupervisor,
    protocol,
    domain: Domain,
    frames: List[bytes],
    *,
    num_clients: int = 1,
    routing: str = "round-robin",
    token_prefix: str = "harness",
    kill: Optional[KillPlan] = None,
    on_group_done=None,
    **fleet_kwargs,
) -> LoadReport:
    """Run a fleet through the tree; optionally kill per the plan.

    One frame per connection group, so with the default single client the
    router's dealing order — and therefore which groups hit the doomed
    collector — is fully deterministic.  Extra ``fleet_kwargs`` go to the
    :class:`LoadGenerator` constructor (the chaos suite passes
    ``spool_dir``/``retry``/``breaker`` through here), and a caller's
    ``on_group_done`` hook composes with the kill plan — the kill fires
    first, then the hook.
    """
    state = {"killed": False}
    caller_hook = on_group_done

    def hook(client_id: int, group_index: int):
        if (
            kill is not None
            and not state["killed"]
            and client_id == kill.client_id
            and group_index == kill.group_index
        ):
            state["killed"] = True
            supervisor.kill(kill.collector_index)
        if caller_hook is not None:
            return caller_hook(client_id, group_index)
        return None

    generator = LoadGenerator(
        protocol.spec(),
        domain,
        targets=list(supervisor.addresses),
        routing=routing,
        token_prefix=token_prefix,
        failover=supervisor.failover,
        frames=frames,
        num_clients=num_clients,
        frames_per_connection=1,
        on_group_done=(
            hook if (kill is not None or caller_hook is not None) else None
        ),
        **fleet_kwargs,
    )
    report = await generator.run()
    if kill is not None:
        assert state["killed"], "the kill plan never triggered"
    return report


async def collect_with_pull_faults(supervisor: TopologySupervisor):
    """Fan in with dropped AND duplicated pulls; returns the aggregator.

    Every live collector is pulled twice — the first snapshot is thrown
    away (a *dropped* answer, repaired by re-pulling) and the second is
    ingested twice (a *duplicated* answer, absorbed by last-write-wins) —
    so the merge is only exact if pulls are idempotent snapshot reads.
    """
    supervisor.health_check()
    aggregator = FanInAggregator(supervisor.spec, supervisor.domain)
    for handle in supervisor.handles:
        if handle.status != "live":
            continue
        dropped = await aggregator.pull(handle.host, handle.port)
        aggregator.discard(dropped.collector_id)  # the "lost" answer
        duplicate = await aggregator.pull(handle.host, handle.port)
        aggregator.ingest(duplicate)  # the duplicated answer, again
    for collector_id, state in supervisor.recovered_states().items():
        if collector_id not in aggregator.collector_ids:
            aggregator.ingest(state)
    return aggregator


def flat_estimates(protocol, dataset, batch_size, seed: int = SEED):
    """The ``run_streaming`` ground truth for a framed dataset."""
    estimator = protocol.run_streaming(
        dataset, np.random.default_rng(seed), batch_size=batch_size
    )
    return estimates_of(estimator)
