"""Satellite: SIGKILL between periodic checkpoints, restart, re-merge.

The durable-ACK discipline writes ``state.npz`` *before* every ACK, so a
collector killed at an arbitrary moment — including between two periodic
checkpoint sweeps — can always be restarted from a state that covers every
report any client was told is safe.  The regression asserts three things:

1. the restarted collector resumes on the *same* port (manifest/router
   addresses stay valid) and from its pre-crash durable state,
2. no acknowledged report is lost and none is double-counted once the
   supervisor pops its recovered snapshot in favour of the live restart,
3. the finalized tree is bit-for-bit identical to ``run_streaming`` over
   the full frame sequence.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.domain import Domain

from ..service.util import (
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)
from .harness import collect_with_pull_faults, drive_fleet, flat_estimates, spawn_tree

BATCH = 8  # 96 records -> 12 frames

#: One per estimator family — each full scenario costs two fleet phases
#: and four process spawns, so the nine-way sweep lives in the
#: fault-injection suite instead.
PROTOCOLS = ["InpPS", "MargHT", "InpOLH"]


@pytest.mark.parametrize("protocol_name", PROTOCOLS)
def test_kill_restart_remerge_loses_nothing(protocol_name, tmp_path):
    protocol = build(protocol_name)
    dataset = small_dataset()
    domain = Domain.binary(dataset.dimension)
    frames = encode_frames(protocol, dataset, BATCH)

    async def scenario():
        with spawn_tree(
            protocol, domain, tmp_path, checkpoint_interval=0.2
        ) as supervisor:
            victim = supervisor.handles[1]
            port_before = None

            # Phase one: half the stream, everything healthy.
            first = await drive_fleet(
                supervisor,
                protocol,
                domain,
                frames[:6],
                token_prefix="phase1",
            )
            port_before = victim.port

            # Crash between checkpoint sweeps, recover, restart.
            supervisor.kill(1)
            supervisor.health_check()
            assert victim.status == "dead"
            recovered = supervisor.recovered_states()[victim.collector_id]
            assert recovered.num_reports > 0, (
                "phase one never acknowledged anything on the victim"
            )
            supervisor.restart(1)
            assert victim.status == "live"
            assert victim.port == port_before, "restart moved the collector"
            # The live restart supersedes the recovered snapshot — keeping
            # both would double-count the victim's phase-one groups.
            assert supervisor.recovered_states() == {}

            # Phase two: the rest of the stream over the healed tree.
            second = await drive_fleet(
                supervisor,
                protocol,
                domain,
                frames[6:],
                token_prefix="phase2",
            )
            aggregator = await collect_with_pull_faults(supervisor)
            return first, second, aggregator

    first, second, aggregator = asyncio.run(scenario())

    # No acknowledged report lost, none double-counted.
    assert first.acked_reports + second.acked_reports == dataset.size
    assert sorted(aggregator.collector_ids) == ["c0", "c1", "c2"]
    merged = aggregator.merged_session()
    assert merged.num_reports == dataset.size

    # Estimates exact against the flat streaming baseline.
    assert_estimates_equal(
        estimates_of(merged.snapshot()),
        flat_estimates(protocol, dataset, BATCH),
    )


def test_restarted_collector_reacks_replayed_tokens(tmp_path):
    """A client replaying an already-ACK'd token to the restarted process
    gets an idempotent duplicate ACK — the group is not re-folded."""
    protocol = build("InpPS")
    dataset = small_dataset()
    domain = Domain.binary(dataset.dimension)
    frames = encode_frames(protocol, dataset, BATCH)

    async def scenario():
        with spawn_tree(protocol, domain, tmp_path, collectors=1) as supervisor:
            await drive_fleet(
                supervisor, protocol, domain, frames, token_prefix="once"
            )
            supervisor.kill(0)
            supervisor.health_check()
            supervisor.restart(0)
            # Replay the exact same token-carrying stream.
            replay = await drive_fleet(
                supervisor, protocol, domain, frames, token_prefix="once"
            )
            aggregator = await collect_with_pull_faults(supervisor)
            return replay, aggregator

    replay, aggregator = asyncio.run(scenario())
    # Every replayed group was acknowledged (with its recorded counts) …
    assert replay.acked_reports == dataset.size
    # … but folded exactly once.
    merged = aggregator.merged_session()
    assert merged.num_reports == dataset.size
    assert_estimates_equal(
        estimates_of(merged.snapshot()),
        flat_estimates(protocol, dataset, BATCH),
    )
