"""Unit tests for marginal post-processing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import MarginalQueryError
from repro.core.privacy import PrivacyBudget
from repro.experiments.metrics import mean_total_variation
from repro.postprocess import (
    SimplexProjectedEstimator,
    clip_and_normalize,
    project_to_simplex,
)
from repro.protocols.inp_ht import InpHT


class TestClipAndNormalize:
    def test_already_valid_distribution_unchanged(self):
        values = np.array([0.1, 0.2, 0.3, 0.4])
        np.testing.assert_allclose(clip_and_normalize(values), values)

    def test_negative_cells_removed(self):
        result = clip_and_normalize(np.array([-0.2, 0.6, 0.6]))
        assert result.min() >= 0
        assert result.sum() == pytest.approx(1.0)

    def test_all_nonpositive_falls_back_to_uniform(self):
        np.testing.assert_allclose(
            clip_and_normalize(np.array([-1.0, -2.0])), [0.5, 0.5]
        )


class TestProjectToSimplex:
    def test_valid_distribution_is_fixed_point(self):
        values = np.array([0.25, 0.25, 0.5])
        np.testing.assert_allclose(project_to_simplex(values), values, atol=1e-12)

    def test_output_is_distribution(self):
        result = project_to_simplex(np.array([0.9, -0.3, 0.5, -0.1]))
        assert result.min() >= 0
        assert result.sum() == pytest.approx(1.0)

    def test_known_example(self):
        # Projection of (1.2, 0.2) onto the simplex is (1, 0).
        np.testing.assert_allclose(
            project_to_simplex(np.array([1.2, 0.2])), [1.0, 0.2 - 0.2], atol=1e-12
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(MarginalQueryError):
            project_to_simplex(np.array([]))
        with pytest.raises(MarginalQueryError):
            project_to_simplex(np.array([[0.5, 0.5]]))
        with pytest.raises(MarginalQueryError):
            project_to_simplex(np.array([np.nan, 0.5]))

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-3, max_value=3, allow_nan=False),
            min_size=1,
            max_size=16,
        )
    )
    def test_projection_properties(self, raw):
        values = np.asarray(raw)
        projected = project_to_simplex(values)
        assert projected.min() >= -1e-12
        assert projected.sum() == pytest.approx(1.0, abs=1e-9)
        # Optimality: no coordinate-wise perturbation of the projection that
        # stays on the simplex is closer to the input (spot check vs uniform).
        uniform = np.full_like(values, 1.0 / values.size)
        assert np.linalg.norm(projected - values) <= np.linalg.norm(
            uniform - values
        ) + 1e-9


class TestSimplexProjectedEstimator:
    @pytest.fixture
    def raw_estimator(self, tiny_dataset, rng):
        return InpHT(PrivacyBudget(0.5), 2).run(tiny_dataset, rng=rng)

    @pytest.mark.parametrize("method", ["euclidean", "clip"])
    def test_every_query_is_a_distribution(self, raw_estimator, method):
        wrapped = SimplexProjectedEstimator(raw_estimator, method=method)
        for beta, table in wrapped.query_all().items():
            assert table.values.min() >= -1e-12
            assert table.values.sum() == pytest.approx(1.0, abs=1e-9)

    def test_projection_does_not_hurt_accuracy_much(self, tiny_dataset, raw_estimator):
        raw_error = mean_total_variation(tiny_dataset, raw_estimator, widths=[2])
        projected_error = mean_total_variation(
            tiny_dataset,
            SimplexProjectedEstimator(raw_estimator),
            widths=[2],
        )
        assert projected_error <= raw_error * 1.1 + 1e-9

    def test_unknown_method_rejected(self, raw_estimator):
        with pytest.raises(MarginalQueryError):
            SimplexProjectedEstimator(raw_estimator, method="magic")

    def test_wrapped_and_workload_exposed(self, raw_estimator):
        wrapped = SimplexProjectedEstimator(raw_estimator)
        assert wrapped.wrapped is raw_estimator
        assert wrapped.workload is raw_estimator.workload
        assert wrapped.method == "euclidean"
