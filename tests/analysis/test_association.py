"""Unit tests for chi-squared association testing."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.analysis.association import (
    chi_squared_critical_value,
    chi_squared_statistic,
    compare_association_tests,
)
from repro.analysis.association import test_independence as run_independence_test
from repro.core.domain import Domain
from repro.core.exceptions import MarginalQueryError
from repro.core.marginals import MarginalTable
from repro.core.privacy import PrivacyBudget
from repro.protocols.inp_ht import InpHT


def make_table(values) -> MarginalTable:
    return MarginalTable(Domain(["x", "y"]), 0b11, np.asarray(values, dtype=float))


class TestStatistic:
    def test_independent_table_gives_zero(self):
        table = make_table([0.25, 0.25, 0.25, 0.25])
        assert chi_squared_statistic(table, 1000) == pytest.approx(0.0, abs=1e-9)

    def test_matches_scipy(self, rng):
        counts = np.array([[330.0, 170.0], [220.0, 280.0]])
        population = int(counts.sum())
        table = make_table((counts / population).T.reshape(-1))
        expected, _, _, _ = stats.chi2_contingency(counts, correction=False)[0:4]
        # scipy returns (stat, p, dof, expected); unpack the statistic only.
        scipy_statistic = stats.chi2_contingency(counts, correction=False)[0]
        assert chi_squared_statistic(table, population) == pytest.approx(
            scipy_statistic, rel=1e-6
        )

    def test_scales_linearly_with_population(self):
        table = make_table([0.4, 0.1, 0.1, 0.4])
        small = chi_squared_statistic(table, 1000)
        large = chi_squared_statistic(table, 10_000)
        assert large == pytest.approx(10 * small, rel=1e-9)

    def test_clips_negative_cells(self):
        table = make_table([0.5, -0.05, 0.15, 0.4])
        statistic = chi_squared_statistic(table, 1000)
        assert np.isfinite(statistic) and statistic >= 0

    def test_rejects_bad_inputs(self):
        table = make_table([0.25, 0.25, 0.25, 0.25])
        with pytest.raises(MarginalQueryError):
            chi_squared_statistic(table, 0)
        domain = Domain(["x", "y", "z"])
        wide = MarginalTable(domain, 0b111, np.full(8, 1 / 8))
        with pytest.raises(MarginalQueryError):
            chi_squared_statistic(wide, 100)


class TestCriticalValue:
    def test_standard_value(self):
        assert chi_squared_critical_value() == pytest.approx(3.841, abs=0.01)

    def test_monotone_in_confidence(self):
        assert chi_squared_critical_value(0.99) > chi_squared_critical_value(0.9)

    def test_rejects_bad_arguments(self):
        with pytest.raises(MarginalQueryError):
            chi_squared_critical_value(1.5)
        with pytest.raises(MarginalQueryError):
            chi_squared_critical_value(0.95, dof=0)


class TestDecision:
    def test_dependent_table_detected(self):
        result = run_independence_test(make_table([0.45, 0.05, 0.05, 0.45]), 10_000)
        assert result.dependent
        assert result.statistic > result.critical_value
        assert result.p_value < 0.05
        assert result.attributes == ("x", "y")

    def test_independent_table_accepted(self):
        result = run_independence_test(make_table([0.25, 0.25, 0.25, 0.25]), 10_000)
        assert not result.dependent
        assert result.p_value > 0.9


class TestComparison:
    def test_compare_on_planted_data(self, tiny_dataset, rng):
        estimator = InpHT(PrivacyBudget(4.0), 2).run(tiny_dataset, rng=rng)
        comparisons = compare_association_tests(
            tiny_dataset, estimator, [("a", "b"), ("c", "d")]
        )
        assert len(comparisons) == 2
        planted = comparisons[0]
        # a/b are strongly dependent by construction; both tests must agree.
        assert planted.exact.dependent
        assert planted.private.dependent
        assert planted.agrees
        assert not planted.type_one_error

    def test_error_flags_are_mutually_consistent(self, tiny_dataset, rng):
        estimator = InpHT(PrivacyBudget(1.0), 2).run(tiny_dataset, rng=rng)
        for comparison in compare_association_tests(
            tiny_dataset, estimator, [("a", "c"), ("b", "d")]
        ):
            assert comparison.agrees == (
                not comparison.type_one_error and not comparison.type_two_error
            )
