"""Unit tests for mutual information computation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.mutual_information import (
    mutual_information,
    pairwise_mutual_information,
    private_pairwise_mutual_information,
)
from repro.core.domain import Domain
from repro.core.exceptions import MarginalQueryError
from repro.core.marginals import MarginalTable
from repro.core.privacy import PrivacyBudget
from repro.protocols.inp_ht import InpHT


def make_table(values) -> MarginalTable:
    return MarginalTable(Domain(["x", "y"]), 0b11, np.asarray(values, dtype=float))


class TestMutualInformation:
    def test_independent_variables_give_zero(self):
        table = make_table([0.28, 0.42, 0.12, 0.18])  # P[x]=0.6, P[y]=0.3 independent
        assert mutual_information(table) == pytest.approx(0.0, abs=1e-12)

    def test_identical_variables_give_entropy(self):
        # x == y with P[x=1] = 0.5: MI = H(x) = ln 2.
        table = make_table([0.5, 0.0, 0.0, 0.5])
        assert mutual_information(table) == pytest.approx(math.log(2))

    def test_biased_identical_variables(self):
        p = 0.2
        table = make_table([1 - p, 0.0, 0.0, p])
        entropy = -(p * math.log(p) + (1 - p) * math.log(1 - p))
        assert mutual_information(table) == pytest.approx(entropy)

    def test_never_negative_even_for_noisy_tables(self, rng):
        for _ in range(20):
            values = rng.normal(0.25, 0.2, size=4)
            assert mutual_information(make_table(values)) >= 0.0

    def test_rejects_wrong_width(self):
        domain = Domain(["x", "y", "z"])
        table = MarginalTable(domain, 0b111, np.full(8, 1 / 8))
        with pytest.raises(MarginalQueryError):
            mutual_information(table)

    def test_symmetric_in_arguments(self, tiny_dataset):
        forward = mutual_information(tiny_dataset.marginal(["a", "b"]))
        backward = mutual_information(tiny_dataset.marginal(["b", "a"]))
        assert forward == pytest.approx(backward)


class TestPairwise:
    def test_exact_pairwise_covers_all_pairs(self, tiny_dataset):
        pairwise = pairwise_mutual_information(tiny_dataset)
        assert len(pairwise) == 6
        assert pairwise[("a", "b")] > pairwise[("c", "d")]

    def test_private_pairwise_tracks_exact(self, tiny_dataset, rng):
        estimator = InpHT(PrivacyBudget(4.0), 2).run(tiny_dataset, rng=rng)
        private = private_pairwise_mutual_information(estimator)
        exact = pairwise_mutual_information(tiny_dataset)
        assert set(private) == set(exact)
        # The dominant pair must remain dominant under light noise.
        assert max(private, key=private.get) == ("a", "b")
