"""Unit tests for the tree-structured Bayesian model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bayesian import ConditionalProbabilityTable, fit_tree_model
from repro.core.exceptions import MarginalQueryError
from repro.core.privacy import PrivacyBudget
from repro.datasets.base import BinaryDataset
from repro.protocols.inp_ht import InpHT


@pytest.fixture
def chain_dataset(rng) -> BinaryDataset:
    n = 40_000
    a = (rng.random(n) < 0.6).astype(np.int8)
    b = np.where(rng.random(n) < 0.8, a, 1 - a).astype(np.int8)
    c = np.where(rng.random(n) < 0.8, b, 1 - b).astype(np.int8)
    return BinaryDataset.from_records(
        np.stack([a, b, c], axis=1), attribute_names=["a", "b", "c"]
    )


class TestConditionalProbabilityTable:
    def test_probability_lookup(self):
        table = ConditionalProbabilityTable("child", "parent", (0.2, 0.9))
        assert table.probability(1, 0) == pytest.approx(0.2)
        assert table.probability(0, 1) == pytest.approx(0.1)

    def test_root_table_ignores_parent_value(self):
        table = ConditionalProbabilityTable("root", None, (0.3, 0.3))
        assert table.probability(1, 0) == table.probability(1, 1) == pytest.approx(0.3)

    def test_rejects_non_binary_values(self):
        table = ConditionalProbabilityTable("child", "parent", (0.2, 0.9))
        with pytest.raises(MarginalQueryError):
            table.probability(2, 0)


class TestFitTreeModel:
    def test_exact_model_matches_empirical_probabilities(self, chain_dataset):
        model = fit_tree_model(chain_dataset, root="a")
        assert model.root == "a"
        assert set(model.order) == {"a", "b", "c"}
        # The model's joint should be close to the empirical joint because the
        # data really is a tree (chain) distribution.
        empirical = chain_dataset.full_distribution()
        for index in range(8):
            record = {
                "a": (index >> 0) & 1,
                "b": (index >> 1) & 1,
                "c": (index >> 2) & 1,
            }
            assert model.probability(record) == pytest.approx(
                empirical[index], abs=0.02
            )

    def test_probabilities_normalise(self, chain_dataset):
        model = fit_tree_model(chain_dataset)
        total = sum(
            model.probability({"a": a, "b": b, "c": c})
            for a in (0, 1)
            for b in (0, 1)
            for c in (0, 1)
        )
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_private_model_close_to_exact(self, chain_dataset, rng):
        estimator = InpHT(PrivacyBudget(3.0), 2).run(chain_dataset, rng=rng)
        private_model = fit_tree_model(estimator)
        exact_model = fit_tree_model(chain_dataset)
        for index in range(8):
            record = {
                "a": (index >> 0) & 1,
                "b": (index >> 1) & 1,
                "c": (index >> 2) & 1,
            }
            assert private_model.probability(record) == pytest.approx(
                exact_model.probability(record), abs=0.08
            )

    def test_sampling_matches_model_marginals(self, chain_dataset, rng):
        model = fit_tree_model(chain_dataset, root="a")
        sample = model.sample(50_000, rng=rng)
        assert sample.size == 50_000
        original_p_a = chain_dataset.attribute_column("a").mean()
        assert sample.attribute_column("a").mean() == pytest.approx(
            original_p_a, abs=0.02
        )

    def test_log_probability_requires_full_record(self, chain_dataset):
        model = fit_tree_model(chain_dataset)
        with pytest.raises(MarginalQueryError):
            model.log_probability({"a": 1})

    def test_unknown_root_rejected(self, chain_dataset):
        with pytest.raises(MarginalQueryError):
            fit_tree_model(chain_dataset, root="zzz")

    def test_sample_rejects_nonpositive(self, chain_dataset, rng):
        model = fit_tree_model(chain_dataset)
        with pytest.raises(MarginalQueryError):
            model.sample(0, rng=rng)
