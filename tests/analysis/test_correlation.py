"""Unit tests for correlation analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.correlation import (
    correlation_matrix,
    phi_coefficient,
    private_correlation_matrix,
)
from repro.core.domain import Domain
from repro.core.exceptions import MarginalQueryError
from repro.core.marginals import MarginalTable
from repro.core.privacy import PrivacyBudget
from repro.datasets.base import BinaryDataset
from repro.protocols.inp_ht import InpHT


def make_table(p00, p10, p01, p11) -> MarginalTable:
    domain = Domain(["x", "y"])
    return MarginalTable(domain, 0b11, np.array([p00, p10, p01, p11]))


class TestPhiCoefficient:
    def test_perfect_positive_correlation(self):
        assert phi_coefficient(make_table(0.5, 0.0, 0.0, 0.5)) == pytest.approx(1.0)

    def test_perfect_negative_correlation(self):
        assert phi_coefficient(make_table(0.0, 0.5, 0.5, 0.0)) == pytest.approx(-1.0)

    def test_independence_gives_zero(self):
        # P[x]=0.4, P[y]=0.3 independent.
        table = make_table(0.6 * 0.7, 0.4 * 0.7, 0.6 * 0.3, 0.4 * 0.3)
        assert phi_coefficient(table) == pytest.approx(0.0, abs=1e-12)

    def test_degenerate_attribute_gives_zero(self):
        assert phi_coefficient(make_table(0.0, 0.0, 0.3, 0.7)) == 0.0

    def test_rejects_non_pairwise_tables(self):
        domain = Domain(["x", "y", "z"])
        table = MarginalTable(domain, 0b111, np.full(8, 1 / 8))
        with pytest.raises(MarginalQueryError):
            phi_coefficient(table)

    def test_matches_numpy_corrcoef(self, rng):
        x = (rng.random(20_000) < 0.5).astype(np.int8)
        y = np.where(rng.random(20_000) < 0.7, x, 1 - x).astype(np.int8)
        dataset = BinaryDataset.from_records(
            np.stack([x, y], axis=1), attribute_names=["x", "y"]
        )
        expected = np.corrcoef(x, y)[0, 1]
        assert phi_coefficient(dataset.marginal(["x", "y"])) == pytest.approx(
            expected, abs=0.01
        )


class TestCorrelationMatrices:
    def test_exact_matrix_properties(self, tiny_dataset):
        matrix = correlation_matrix(tiny_dataset)
        assert matrix.shape == (4, 4)
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        np.testing.assert_allclose(matrix, matrix.T)
        # Planted: a and b strongly correlated.
        assert matrix[0, 1] > 0.5

    def test_private_matrix_tracks_exact(self, tiny_dataset, rng):
        estimator = InpHT(PrivacyBudget(4.0), 2).run(tiny_dataset, rng=rng)
        private = private_correlation_matrix(estimator)
        exact = correlation_matrix(tiny_dataset)
        assert np.abs(private - exact).max() < 0.25
        assert private[0, 1] > 0.3
