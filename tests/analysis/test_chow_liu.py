"""Unit tests for Chow–Liu dependency trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.chow_liu import ChowLiuTree, fit_chow_liu_tree, maximum_spanning_tree
from repro.analysis.mutual_information import pairwise_mutual_information
from repro.core.exceptions import MarginalQueryError
from repro.core.privacy import PrivacyBudget
from repro.datasets.base import BinaryDataset
from repro.datasets.synthetic import latent_class_dataset
from repro.protocols.inp_ht import InpHT


class TestMaximumSpanningTree:
    def test_simple_triangle(self):
        weights = {("a", "b"): 3.0, ("b", "c"): 2.0, ("a", "c"): 1.0}
        tree = maximum_spanning_tree(["a", "b", "c"], weights)
        assert len(tree.edges) == 2
        assert tree.total_weight == pytest.approx(5.0)
        assert ("a", "c") not in tree.edges and ("c", "a") not in tree.edges

    def test_edge_order_does_not_matter(self):
        weights = {("b", "a"): 3.0, ("c", "b"): 2.0, ("c", "a"): 1.0}
        tree = maximum_spanning_tree(["a", "b", "c"], weights)
        assert tree.total_weight == pytest.approx(5.0)

    def test_spanning_property(self, rng):
        names = [f"v{i}" for i in range(8)]
        weights = {
            (names[i], names[j]): float(rng.random())
            for i in range(8)
            for j in range(i + 1, 8)
        }
        tree = maximum_spanning_tree(names, weights)
        assert len(tree.edges) == 7
        # Every node appears in the adjacency structure (tree is connected).
        adjacency = tree.adjacency()
        assert all(adjacency[name] for name in names)

    def test_requires_all_pair_weights(self):
        with pytest.raises(MarginalQueryError):
            maximum_spanning_tree(["a", "b", "c"], {("a", "b"): 1.0})

    def test_rejects_unknown_attributes(self):
        with pytest.raises(MarginalQueryError):
            maximum_spanning_tree(["a", "b"], {("a", "z"): 1.0})

    def test_rejects_single_attribute(self):
        with pytest.raises(MarginalQueryError):
            maximum_spanning_tree(["a"], {})

    def test_total_weight_under_other_weights(self):
        weights = {("a", "b"): 3.0, ("b", "c"): 2.0, ("a", "c"): 1.0}
        tree = maximum_spanning_tree(["a", "b", "c"], weights)
        other = {("a", "b"): 0.5, ("b", "c"): 0.25, ("a", "c"): 10.0}
        assert tree.total_weight_under(other) == pytest.approx(0.75)
        with pytest.raises(MarginalQueryError):
            tree.total_weight_under({("a", "b"): 1.0})


class TestFitChowLiu:
    @pytest.fixture
    def chain_dataset(self, rng) -> BinaryDataset:
        """A Markov chain a -> b -> c -> d, so the optimal tree is the chain."""
        n = 60_000
        a = (rng.random(n) < 0.5).astype(np.int8)
        b = np.where(rng.random(n) < 0.85, a, 1 - a).astype(np.int8)
        c = np.where(rng.random(n) < 0.85, b, 1 - b).astype(np.int8)
        d = np.where(rng.random(n) < 0.85, c, 1 - c).astype(np.int8)
        return BinaryDataset.from_records(
            np.stack([a, b, c, d], axis=1), attribute_names=["a", "b", "c", "d"]
        )

    def test_recovers_chain_structure(self, chain_dataset):
        tree = fit_chow_liu_tree(chain_dataset)
        edges = {tuple(sorted(edge)) for edge in tree.edges}
        assert edges == {("a", "b"), ("b", "c"), ("c", "d")}

    def test_private_tree_close_to_optimal(self, chain_dataset, rng):
        estimator = InpHT(PrivacyBudget(2.0), 2).run(chain_dataset, rng=rng)
        private_tree = fit_chow_liu_tree(estimator)
        true_weights = pairwise_mutual_information(chain_dataset)
        exact_tree = fit_chow_liu_tree(chain_dataset)
        optimal = exact_tree.total_weight_under(true_weights)
        captured = private_tree.total_weight_under(true_weights)
        assert captured >= 0.6 * optimal

    def test_tree_dataclass_roundtrip(self, chain_dataset):
        tree = fit_chow_liu_tree(chain_dataset)
        assert isinstance(tree, ChowLiuTree)
        assert set(tree.attributes) == {"a", "b", "c", "d"}
        assert len(tree.edge_weights) == len(tree.edges)
