"""Unit tests for sweep-result serialisation."""

from __future__ import annotations

import json

import pytest

from repro.core.exceptions import ReproError
from repro.experiments.config import SweepConfig
from repro.experiments.harness import run_sweep
from repro.io import load_sweep_json, save_sweep_csv, save_sweep_json


@pytest.fixture(scope="module")
def sweep_result():
    config = SweepConfig(
        protocols=("InpHT", "MargPS"),
        dataset="uniform",
        population_sizes=(1024,),
        dimensions=(4,),
        widths=(1, 2),
        epsilons=(1.0,),
        repetitions=2,
        seed=5,
    )
    return run_sweep(config)


class TestJsonRoundtrip:
    def test_roundtrip_preserves_everything(self, sweep_result, tmp_path):
        path = save_sweep_json(sweep_result, tmp_path / "result.json")
        loaded = load_sweep_json(path)
        assert loaded.config == sweep_result.config
        assert len(loaded.points) == len(sweep_result.points)
        for original, restored in zip(sweep_result.points, loaded.points):
            assert restored == original

    def test_creates_parent_directories(self, sweep_result, tmp_path):
        path = save_sweep_json(sweep_result, tmp_path / "nested" / "dir" / "r.json")
        assert path.exists()

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_sweep_json(tmp_path / "absent.json")

    def test_rejects_wrong_format_version(self, sweep_result, tmp_path):
        path = save_sweep_json(sweep_result, tmp_path / "result.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError):
            load_sweep_json(path)

    def test_rejects_corrupt_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_sweep_json(path)


class TestCsv:
    def test_writes_one_row_per_point(self, sweep_result, tmp_path):
        path = save_sweep_csv(sweep_result, tmp_path / "result.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(sweep_result.points)
        assert lines[0].split(",")[:4] == ["protocol", "N", "d", "k"]

    def test_loaded_series_still_usable(self, sweep_result, tmp_path):
        # The JSON round trip keeps the analysis helpers working.
        loaded = load_sweep_json(save_sweep_json(sweep_result, tmp_path / "r.json"))
        series = loaded.series("InpHT", "width", population=1024)
        assert [x for x, *_ in series] == [1.0, 2.0]
