"""Degraded-mode finalize: estimates plus an exact loss ledger.

Strict mode refuses to silently under-count; ``allow_partial=True``
finalizes anyway and attaches a :class:`CoverageReport` whose lost
counts are exact (client-side ACK accounting) and whose error-bound
inflation comes from the paper's ``1/sqrt(N)`` scaling.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exceptions import (
    PartialCoverageError,
    ProtocolConfigurationError,
)
from repro.resilience import (
    STATUS_LOST,
    STATUS_OK,
    STATUS_QUARANTINED,
    CollectorCoverage,
    CoverageReport,
)
from repro.service import AggregationSession
from repro.theory.bounds import coverage_inflation, error_bound_with_loss
from repro.topology import FanInAggregator

from ..service.util import (
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


def session_with(dataset, frames):
    protocol = build("InpRR")
    session = AggregationSession(protocol.spec(), dataset.domain)
    for frame in frames:
        session.submit(frame)
    return session


@pytest.fixture(scope="module")
def frames(dataset):
    return encode_frames(build("InpRR"), dataset, 24)  # 4 frames x 24


class TestCoverageReport:
    def test_totals_and_exact_losses(self):
        report = CoverageReport()
        report.add(CollectorCoverage("c0", expected=100, received=100))
        report.add(
            CollectorCoverage(
                "c1", expected=80, received=30, status=STATUS_LOST,
                detail="no durable state.npz",
            )
        )
        assert report.expected == 180
        assert report.received == 130
        assert report.lost == 50
        assert not report.complete
        assert [entry.collector_id for entry in report.degraded] == ["c1"]

    def test_unknown_expectations_on_healthy_collectors_stay_complete(self):
        report = CoverageReport(
            collectors=[CollectorCoverage("c0", expected=None, received=42)]
        )
        assert report.complete
        report.raise_if_partial()  # must not raise

    def test_inflation_matches_the_sqrt_law(self):
        report = CoverageReport(
            collectors=[CollectorCoverage("c0", expected=100, received=64)]
        )
        assert report.inflation_factor() == pytest.approx(
            math.sqrt(100 / 64)
        )
        assert report.to_dict()["error_inflation"] == pytest.approx(1.25)

    def test_total_loss_inflates_to_infinity(self):
        report = CoverageReport(
            collectors=[
                CollectorCoverage(
                    "c0", expected=10, received=0, status=STATUS_LOST
                )
            ]
        )
        assert math.isinf(report.inflation_factor())
        assert report.to_dict()["error_inflation"] is None

    def test_raise_if_partial_carries_the_report(self):
        report = CoverageReport(
            collectors=[
                CollectorCoverage(
                    "c0", expected=10, received=4, status=STATUS_QUARANTINED,
                    detail="checkpoint quarantined",
                )
            ]
        )
        with pytest.raises(PartialCoverageError) as excinfo:
            report.raise_if_partial("topology finalize")
        assert excinfo.value.coverage is report
        message = str(excinfo.value)
        assert "6 report(s)" in message
        assert "--allow-partial" in message

    def test_summary_lists_every_collector(self):
        report = CoverageReport(
            collectors=[
                CollectorCoverage("c0", expected=10, received=10),
                CollectorCoverage(
                    "c1", expected=10, received=0, status=STATUS_LOST,
                    detail="died before its first acknowledged group",
                ),
            ]
        )
        text = report.summary()
        assert "10 received / 20 expected (10 lost)" in text
        assert "c1: 0/10 [lost]" in text
        assert "inflated" in text


class TestTheoryBounds:
    def test_coverage_inflation_edges(self):
        assert coverage_inflation(0, 0) == 1.0
        assert coverage_inflation(100, 100) == 1.0
        assert coverage_inflation(100, 150) == 1.0  # surplus never deflates
        assert math.isinf(coverage_inflation(100, 0))
        with pytest.raises(ProtocolConfigurationError):
            coverage_inflation(-1, 0)

    def test_error_bound_with_loss_inflates_consistently(self):
        full = error_bound_with_loss("InpPS", 8, 2, 1.1, 10_000, 10_000)
        degraded = error_bound_with_loss("InpPS", 8, 2, 1.1, 10_000, 2_500)
        assert degraded == pytest.approx(full * 2.0)
        with pytest.raises(ProtocolConfigurationError):
            error_bound_with_loss("InpPS", 8, 2, 1.1, 100, 0)
        with pytest.raises(ProtocolConfigurationError):
            error_bound_with_loss("InpPS", 8, 2, 1.1, 100, 101)


class TestSessionFinalize:
    def test_complete_finalize_equals_plain_snapshot(self, dataset, frames):
        session = session_with(dataset, frames)
        strict = session.finalize(expected_reports=dataset.size)
        assert_estimates_equal(
            estimates_of(strict), estimates_of(session.snapshot())
        )
        assert strict.metadata["coverage"]["complete"] is True

    def test_shortfall_raises_in_strict_mode(self, dataset, frames):
        session = session_with(dataset, frames[:2])
        with pytest.raises(PartialCoverageError, match="allow_partial"):
            session.finalize(expected_reports=dataset.size)

    def test_allow_partial_attaches_exact_counts(self, dataset, frames):
        session = session_with(dataset, frames[:2])
        estimator = session.finalize(
            allow_partial=True, expected_reports=dataset.size
        )
        coverage = estimator.metadata["coverage"]
        assert coverage["expected"] == dataset.size
        assert coverage["received"] == 48
        assert coverage["lost"] == dataset.size - 48
        assert coverage["error_inflation"] == pytest.approx(
            math.sqrt(dataset.size / 48)
        )


class TestAggregatorFinalize:
    def make_aggregator(self, dataset, frames, split=2):
        protocol = build("InpRR")
        aggregator = FanInAggregator(protocol.spec(), dataset.domain)
        for index in range(split):
            aggregator.ingest_session(
                f"c{index}",
                session_with(dataset, frames[index::split]),
            )
        return aggregator

    def test_no_expectations_is_exactly_the_old_finalize(
        self, dataset, frames
    ):
        aggregator = self.make_aggregator(dataset, frames)
        estimator = aggregator.finalize()
        baseline = aggregator.merged_session().snapshot()
        assert_estimates_equal(
            estimates_of(estimator), estimates_of(baseline)
        )
        assert estimator.metadata["coverage"]["complete"] is True

    def test_known_lost_collector_blocks_strict_mode(self, dataset, frames):
        aggregator = self.make_aggregator(dataset, frames)
        lost = {"c2": "no durable state.npz (died before its first ACK)"}
        with pytest.raises(PartialCoverageError) as excinfo:
            aggregator.finalize(lost=lost)
        entry = {
            e.collector_id: e for e in excinfo.value.coverage.collectors
        }["c2"]
        assert entry.status == STATUS_LOST
        assert entry.received == 0

    def test_allow_partial_merges_survivors_with_the_ledger(
        self, dataset, frames
    ):
        aggregator = self.make_aggregator(dataset, frames)
        expected = {"c0": 48, "c1": 48, "c2": 24}
        estimator = aggregator.finalize(
            allow_partial=True,
            expected=expected,
            lost={"c2": "collector and checkpoint both gone"},
        )
        coverage = estimator.metadata["coverage"]
        assert coverage["expected"] == 120
        assert coverage["received"] == 96
        assert coverage["lost"] == 24
        by_id = {
            entry["collector_id"]: entry
            for entry in coverage["collectors"]
        }
        assert by_id["c2"]["lost"] == 24
        assert by_id["c0"]["status"] == STATUS_OK

    def test_expected_shortfall_alone_is_enough_to_block(
        self, dataset, frames
    ):
        aggregator = self.make_aggregator(dataset, frames)
        with pytest.raises(PartialCoverageError):
            aggregator.finalize(expected={"c0": 49, "c1": 48})
