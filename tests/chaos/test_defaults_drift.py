"""Guard against drift between ``resilience/defaults.py`` and the CLI.

The defaults table is the single source of truth for every
failure-handling constant; the CLI flags advertise and apply those
defaults.  Each assertion here pins one advertised value to the table,
so editing the table without the flag text (or vice versa) fails fast
in CI instead of lying in ``--help`` output.
"""

from __future__ import annotations

import argparse

from repro import cli
from repro.resilience import defaults


def load_parser_actions():
    parser = cli._build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    load_parser = subparsers.choices["load"]
    return {action.dest: action for action in load_parser._actions}


def test_connect_timeout_default_matches_table():
    actions = load_parser_actions()
    assert actions["connect_timeout"].default == (
        defaults.DEFAULT_CONNECT_TIMEOUT
    )


def test_retry_help_advertises_current_defaults():
    actions = load_parser_actions()
    assert str(defaults.DEFAULT_BASE_DELAY) in actions["retry_base_delay"].help
    assert str(defaults.DEFAULT_MAX_DELAY) in actions["retry_max_delay"].help


def test_retry_policy_from_partial_flags_fills_from_table():
    arguments = argparse.Namespace(
        max_retries=7,
        retry_base_delay=None,
        retry_max_delay=None,
        retry_deadline=None,
    )
    policy = cli._retry_policy_from_args(arguments)
    assert policy.max_retries == 7
    assert policy.base_delay == defaults.DEFAULT_BASE_DELAY
    assert policy.max_delay == defaults.DEFAULT_MAX_DELAY
    assert policy.growth == defaults.DEFAULT_GROWTH
    assert policy.jitter == defaults.DEFAULT_JITTER


def test_no_retry_flags_means_no_policy():
    arguments = argparse.Namespace(
        max_retries=None,
        retry_base_delay=None,
        retry_max_delay=None,
        retry_deadline=None,
    )
    assert cli._retry_policy_from_args(arguments) is None


def test_default_policies_round_trip_the_table():
    retry = defaults.default_retry_policy()
    assert retry.max_retries == defaults.DEFAULT_MAX_RETRIES
    assert retry.base_delay == defaults.DEFAULT_BASE_DELAY
    assert retry.max_delay == defaults.DEFAULT_MAX_DELAY
    timeouts = defaults.default_timeout_policy()
    assert timeouts.connect == defaults.DEFAULT_CONNECT_TIMEOUT
    assert timeouts.io == defaults.DEFAULT_IO_TIMEOUT
    assert timeouts.pull == defaults.DEFAULT_PULL_TIMEOUT
    breaker = defaults.default_breaker_policy()
    assert breaker.failure_threshold == defaults.BREAKER_FAILURE_THRESHOLD
    assert breaker.failure_rate == defaults.BREAKER_FAILURE_RATE
    assert breaker.window_seconds == defaults.BREAKER_WINDOW_SECONDS
    assert breaker.cooldown_seconds == defaults.BREAKER_COOLDOWN_SECONDS
    assert breaker.half_open_probes == defaults.BREAKER_HALF_OPEN_PROBES


def test_breaker_flag_uses_the_default_policy():
    config = defaults.default_resilience_config()
    assert config.breaker == defaults.default_breaker_policy()
    assert config.retry == defaults.default_retry_policy()
    assert config.timeouts == defaults.default_timeout_policy()
