"""Checkpoint integrity under corruption: detect, refuse, quarantine.

The property at the heart of the suite: for *every* protocol, flipping a
single random byte inside any state array of a saved checkpoint — even
when the archive structure (zip CRCs) is repacked to stay valid — is
detected by the embedded SHA-256 digest, the restore refuses, and the
file is quarantined with a readable report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import (
    CheckpointIntegrityError,
    ProtocolConfigurationError,
    WireFormatError,
)
from repro.resilience.chaos import corrupt_checkpoint_array, flip_file_bit
from repro.resilience.integrity import (
    checkpoint_digest,
    embed_integrity,
    quarantine_checkpoint,
    verify_integrity,
)
from repro.server import merge_checkpoints
from repro.service import AggregationSession

from ..service.util import (
    ALL_PROTOCOLS,
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)

SEED = 20180608


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


def checkpointed_session(protocol_name, dataset, path):
    protocol = build(protocol_name)
    session = AggregationSession(protocol.spec(), dataset.domain)
    for frame in encode_frames(protocol, dataset, 48):
        session.submit(frame)
    session.checkpoint(path)
    return session


class TestBitFlipProperty:
    @pytest.mark.parametrize("protocol_name", ALL_PROTOCOLS)
    def test_one_flipped_array_byte_is_detected_and_quarantined(
        self, protocol_name, dataset, tmp_path
    ):
        """One random byte per state array, every protocol, every time."""
        path = tmp_path / "checkpoint.npz"
        checkpointed_session(protocol_name, dataset, path)
        pristine = path.read_bytes()
        with np.load(path, allow_pickle=False) as archive:
            array_names = [
                name for name in archive.files if name != "header"
            ]
        assert array_names, f"{protocol_name} checkpoint holds no state"
        rng = np.random.default_rng(SEED + len(protocol_name))
        for array_name in array_names:
            path.write_bytes(pristine)
            damaged = corrupt_checkpoint_array(path, array_name, rng)
            assert damaged == array_name
            # The repack keeps zip CRCs valid: only the digest can object.
            with pytest.raises(
                CheckpointIntegrityError, match="failed integrity"
            ):
                AggregationSession.restore(path)
            quarantined, report = quarantine_checkpoint(
                path, f"chaos test flipped a byte in {array_name}"
            )
            assert quarantined is not None and quarantined.exists()
            assert not path.exists()
            text = report.read_text()
            assert str(path) in text
            assert array_name in text

    def test_raw_media_bit_flip_never_yields_silent_garbage(
        self, dataset, tmp_path
    ):
        """A flip without a repack trips the zip CRC or the digest and is
        refused — unless it landed in redundant container metadata the
        decoder never consults, in which case the restored state must be
        bit-for-bit identical to the pristine checkpoint.  Either way, no
        silent garbage."""
        path = tmp_path / "checkpoint.npz"
        session = checkpointed_session("InpRR", dataset, path)
        baseline = estimates_of(session.snapshot())
        rng = np.random.default_rng(SEED)
        pristine = path.read_bytes()
        refused = 0
        for trial in range(16):
            path.write_bytes(pristine)
            flip_file_bit(path, rng)
            try:
                restored = AggregationSession.restore(path)
            except WireFormatError:
                refused += 1
                continue
            assert restored.num_reports == session.num_reports
            assert_estimates_equal(
                estimates_of(restored.snapshot()), baseline
            )
        # The flips are random but member data dominates the file, so the
        # vast majority of trials must have hit a detectable spot.
        assert refused >= 8

    def test_pristine_checkpoint_still_restores_exactly(
        self, dataset, tmp_path
    ):
        path = tmp_path / "checkpoint.npz"
        session = checkpointed_session("MargPS", dataset, path)
        restored = AggregationSession.restore(path)
        assert restored.num_reports == session.num_reports


class TestReadableErrors:
    def test_zero_byte_checkpoint_names_the_path(self, tmp_path):
        path = tmp_path / "state.npz"
        path.write_bytes(b"")
        with pytest.raises(WireFormatError, match="zero bytes") as excinfo:
            AggregationSession.restore(path)
        assert str(path) in str(excinfo.value)

    def test_merge_checkpoints_empty_dir_names_the_directory(self, tmp_path):
        empty = tmp_path / "checkpoints"
        empty.mkdir()
        with pytest.raises(
            ProtocolConfigurationError, match="empty directory"
        ) as excinfo:
            merge_checkpoints(empty)
        assert str(empty) in str(excinfo.value)

    def test_merge_checkpoints_shortfall_names_the_directory(
        self, dataset, tmp_path
    ):
        checkpointed_session("InpRR", dataset, tmp_path / "shard-00.npz")
        with pytest.raises(
            ProtocolConfigurationError, match="expected 2 shard"
        ) as excinfo:
            merge_checkpoints(tmp_path, expected_shards=2)
        assert str(tmp_path) in str(excinfo.value)


class TestMergePartial:
    def test_allow_partial_quarantines_the_bad_shard_and_merges_the_rest(
        self, dataset, tmp_path
    ):
        healthy = checkpointed_session(
            "InpRR", dataset, tmp_path / "shard-00.npz"
        )
        checkpointed_session("InpRR", dataset, tmp_path / "shard-01.npz")
        corrupt_checkpoint_array(
            tmp_path / "shard-01.npz", rng=np.random.default_rng(SEED)
        )
        merged = merge_checkpoints(tmp_path, allow_partial=True)
        assert merged.num_reports == healthy.num_reports
        assert not (tmp_path / "shard-01.npz").exists()
        corrupt_files = list(tmp_path.glob("shard-01.npz.corrupt*"))
        assert any(f.suffix != ".txt" for f in corrupt_files)
        assert any(f.name.endswith(".report.txt") for f in corrupt_files)

    def test_strict_mode_raises_and_leaves_the_files_in_place(
        self, dataset, tmp_path
    ):
        checkpointed_session("InpRR", dataset, tmp_path / "shard-00.npz")
        checkpointed_session("InpRR", dataset, tmp_path / "shard-01.npz")
        corrupt_checkpoint_array(
            tmp_path / "shard-01.npz", rng=np.random.default_rng(SEED)
        )
        with pytest.raises(WireFormatError):
            merge_checkpoints(tmp_path)
        assert (tmp_path / "shard-01.npz").exists()

    def test_every_shard_corrupt_is_fatal_even_in_partial_mode(
        self, dataset, tmp_path
    ):
        checkpointed_session("InpRR", dataset, tmp_path / "shard-00.npz")
        corrupt_checkpoint_array(
            tmp_path / "shard-00.npz", rng=np.random.default_rng(SEED)
        )
        with pytest.raises(WireFormatError, match="nothing left to merge"):
            merge_checkpoints(tmp_path, allow_partial=True)


class TestDigestPrimitives:
    def test_digest_is_order_independent(self):
        header = {"spec": {"name": "X"}, "num_reports": 3}
        a = np.arange(6, dtype=np.float64)
        b = np.ones((2, 2), dtype=np.int64)
        forward = checkpoint_digest(header, {"a": a, "b": b})
        backward = checkpoint_digest(header, {"b": b, "a": a})
        assert forward == backward

    def test_embed_then_verify_round_trips(self):
        header = {"spec": {"name": "X"}}
        arrays = {"acc": np.arange(4.0)}
        stamped = embed_integrity(header, arrays)
        assert verify_integrity(stamped, arrays, source="t") is True

    def test_missing_section_tolerated_unless_required(self):
        header = {"spec": {"name": "X"}}
        arrays = {"acc": np.arange(4.0)}
        assert verify_integrity(header, arrays) is False
        with pytest.raises(CheckpointIntegrityError, match="no integrity"):
            verify_integrity(header, arrays, require=True)

    def test_header_tampering_is_also_detected(self):
        arrays = {"acc": np.arange(4.0)}
        stamped = embed_integrity({"num_reports": 10}, arrays)
        stamped["num_reports"] = 99
        with pytest.raises(CheckpointIntegrityError, match="altered"):
            verify_integrity(stamped, arrays, source="t")

    def test_quarantine_collisions_get_numeric_suffixes(self, tmp_path):
        first = tmp_path / "state.npz"
        first.write_bytes(b"junk")
        quarantined_1, _ = quarantine_checkpoint(first, "one")
        first.write_bytes(b"junk again")
        quarantined_2, _ = quarantine_checkpoint(first, "two")
        assert quarantined_1 != quarantined_2
        assert quarantined_1.exists() and quarantined_2.exists()
