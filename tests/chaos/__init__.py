"""Chaos suite: the resilience layer under injected faults.

Policies, spooling, checkpoint integrity, and degraded-mode finalize are
each exercised against the fault primitives in
:mod:`repro.resilience.chaos` — flipped bits, torn writes, full disks,
and hard-killed clients.
"""
