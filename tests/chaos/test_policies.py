"""RetryPolicy / TimeoutPolicy / CircuitBreaker unit behavior.

The breaker runs against an injected fake clock, so every state
transition — closed, open, half-open, probe success/failure — is pinned
without a single real sleep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import CircuitOpenError, ProtocolConfigurationError
from repro.resilience import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    ResilienceConfig,
    RetryPolicy,
    TimeoutPolicy,
    default_resilience_config,
)


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_exponential_schedule_without_jitter(self):
        policy = RetryPolicy(
            max_retries=4, base_delay=0.2, max_delay=0.5,
            growth="exponential", jitter="none",
        )
        assert list(policy.delays()) == [0.2, 0.4, 0.5, 0.5]

    def test_linear_schedule_matches_legacy_loadgen(self):
        policy = RetryPolicy(
            max_retries=3, base_delay=0.1, max_delay=0.3,
            growth="linear", jitter="none",
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.3])

    def test_full_jitter_stays_within_the_computed_delay(self):
        policy = RetryPolicy(
            max_retries=10, base_delay=0.2, max_delay=1.0,
            growth="exponential", jitter="full",
        )
        rng = np.random.default_rng(7)
        for attempt in range(1, 11):
            cap = min(0.2 * 2 ** (attempt - 1), 1.0)
            drawn = policy.delay(attempt, rng)
            assert 0.0 <= drawn <= cap

    def test_attempt_bound(self):
        policy = RetryPolicy(max_retries=2, jitter="none")
        started = 100.0
        assert policy.should_retry(1, started, now=started)
        assert policy.should_retry(2, started, now=started)
        assert not policy.should_retry(3, started, now=started)

    def test_deadline_overrides_attempts_left(self):
        policy = RetryPolicy(max_retries=100, deadline=5.0, jitter="none")
        started = 100.0
        assert policy.should_retry(1, started, now=104.9)
        assert not policy.should_retry(1, started, now=105.0)

    def test_dict_round_trip(self):
        policy = RetryPolicy(
            max_retries=7, base_delay=0.05, max_delay=2.0,
            growth="linear", jitter="none", deadline=30.0,
        )
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ProtocolConfigurationError, match="unknown"):
            RetryPolicy.from_dict({"max_retries": 1, "backoff": 2})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"growth": "quadratic"},
            {"jitter": "half"},
            {"deadline": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ProtocolConfigurationError):
            RetryPolicy(**kwargs)

    def test_zero_base_delay_is_valid(self):
        # The legacy mapping with retry_backoff=0 must stay constructible.
        policy = RetryPolicy(base_delay=0.0, max_delay=0.0, jitter="none")
        assert policy.delay(1) == 0.0


class TestTimeoutPolicy:
    def test_round_trip(self):
        policy = TimeoutPolicy(connect=1.0, io=2.0, pull=3.0)
        assert TimeoutPolicy.from_dict(policy.to_dict()) == policy

    @pytest.mark.parametrize("name", ["connect", "io", "pull"])
    def test_rejects_non_positive(self, name):
        with pytest.raises(ProtocolConfigurationError, match=name):
            TimeoutPolicy(**{name: 0.0})


class TestCircuitBreaker:
    def make(self, clock, **overrides) -> CircuitBreaker:
        policy = CircuitBreakerPolicy(
            failure_threshold=3,
            failure_rate=0.5,
            window_seconds=10.0,
            cooldown_seconds=2.0,
            half_open_probes=1,
            **overrides,
        )
        return policy.build("c0", clock=clock)

    def test_stays_closed_below_the_failure_threshold(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_trips_open_at_threshold_and_rate(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check()
        assert excinfo.value.retry_after == pytest.approx(2.0)

    def test_successes_keep_the_failure_rate_below_trip(self):
        clock = FakeClock()
        breaker = self.make(clock)
        # 3 failures, 4 successes: rate 3/7 < 0.5, must stay closed.
        for _ in range(4):
            breaker.record_success()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_old_failures_expire_from_the_window(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)  # past window_seconds
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_a_bounded_probe_count(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the one probe
        assert not breaker.allow()  # a second concurrent call is refused

    def test_probe_success_closes_and_clears_the_bad_spell(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        # The window was cleared: one fresh failure must not re-trip.
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_probe_failure_reopens_with_a_fresh_cooldown(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        assert breaker.time_until_retry() == pytest.approx(2.0)

    def test_policy_validation(self):
        with pytest.raises(ProtocolConfigurationError):
            CircuitBreakerPolicy(failure_threshold=0)
        with pytest.raises(ProtocolConfigurationError):
            CircuitBreakerPolicy(failure_rate=1.5)
        with pytest.raises(ProtocolConfigurationError):
            CircuitBreakerPolicy(cooldown_seconds=0.0)


class TestResilienceConfig:
    def test_round_trip_including_disabled_breaker(self):
        config = default_resilience_config().with_overrides(breaker=None)
        restored = ResilienceConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.breaker is None

    def test_round_trip_full(self):
        config = default_resilience_config()
        assert ResilienceConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ProtocolConfigurationError, match="unknown"):
            ResilienceConfig.from_dict({"retries": {}})
