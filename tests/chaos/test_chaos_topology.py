"""End-to-end chaos: crashed clients, corrupted checkpoints, full disks.

The suite composes the :mod:`repro.resilience.chaos` injectors with the
topology fault harness to prove the two headline resilience claims:

1. **Exactness survives a client crash.**  A client hard-stopped
   mid-run resumes from its durable spool under the same idempotency
   tokens, and the tree finalizes bit-for-bit identical to the
   uninterrupted ``run_streaming`` baseline — even when the crash tore
   the spool's final commit record.
2. **Loss is measured, never silent.**  When a collector dies *and* its
   durable checkpoint is corrupted, the quarantine path turns the gap
   into exact per-collector lost counts: strict finalize refuses, and
   degraded finalize attaches the CoverageReport.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.domain import Domain
from repro.core.exceptions import PartialCoverageError
from repro.resilience import ReportSpool
from repro.resilience.chaos import (
    corrupt_checkpoint_array,
    enospc_on_fsync,
)
from repro.server.server import DURABLE_STATE_FILENAME
from repro.service import AggregationSession

from ..service.util import (
    assert_estimates_equal,
    build,
    encode_frames,
    estimates_of,
    small_dataset,
)
from ..topology.harness import (
    collect_with_pull_faults,
    drive_fleet,
    flat_estimates,
    spawn_tree,
)

BATCH = 8  # 96 records -> 12 frames -> 12 groups for a single client

SEED = 20180608


class ClientCrash(Exception):
    """The injected client death (stands in for a SIGKILL'd process)."""


def test_spool_replay_after_client_crash_is_bit_for_bit(tmp_path):
    """Crash a client mid-run (tearing its last spool commit), rerun it
    with the same spool and tokens, and the tree still finalizes exactly."""
    protocol = build("InpPS")
    dataset = small_dataset()
    domain = Domain.binary(dataset.dimension)
    frames = encode_frames(protocol, dataset, BATCH)
    spool_dir = tmp_path / "spool"
    crash_after = 3  # groups 0..3 delivered+committed, then the client dies

    def crash(client_id: int, group_index: int) -> None:
        if group_index == crash_after:
            raise ClientCrash()

    async def scenario():
        with spawn_tree(protocol, domain, tmp_path / "tree") as supervisor:
            with pytest.raises(ClientCrash):
                await drive_fleet(
                    supervisor,
                    protocol,
                    domain,
                    frames,
                    token_prefix="crashy",
                    spool_dir=spool_dir,
                    on_group_done=crash,
                )
            # Tear the tail: the crash also mangled the final commit
            # record, so on recovery that group must count as *pending*
            # and be replayed under its original token (the collector
            # already folded it and simply re-ACKs the recorded counts).
            spool_path = spool_dir / "client-0000.spool"
            blob = bytearray(spool_path.read_bytes())
            blob[-1] ^= 0xFF
            spool_path.write_bytes(bytes(blob))

            report = await drive_fleet(
                supervisor,
                protocol,
                domain,
                frames,
                token_prefix="crashy",
                spool_dir=spool_dir,
            )
            aggregator = await collect_with_pull_faults(supervisor)
            return report, aggregator

    report, aggregator = asyncio.run(scenario())
    # Groups 0..2 replayed from their commits without touching the
    # network; group 3 (torn commit) was resent and deduped server-side.
    assert report.spool_replays == crash_after + 1
    assert report.acked_reports == dataset.size
    merged = aggregator.merged_session()
    assert merged.num_reports == dataset.size, (
        "a replayed group was double-folded or lost"
    )
    assert_estimates_equal(
        estimates_of(merged.snapshot()),
        flat_estimates(protocol, dataset, BATCH),
    )
    # The healed spool now shows every group committed.
    with ReportSpool(spool_dir / "client-0000.spool") as spool:
        assert spool.pending_groups() == {}
        assert len(spool.committed_groups()) == len(frames)


def test_quarantined_collector_becomes_exact_measured_loss(tmp_path):
    """Kill a collector AND corrupt its durable state mid-run: the
    supervisor quarantines the checkpoint, the in-flight group reroutes,
    and finalize turns the dead collector's ACK'd reports into exact lost
    counts — strict mode refusing, degraded mode attaching the ledger."""
    protocol = build("InpPS")
    dataset = small_dataset()
    domain = Domain.binary(dataset.dimension)
    frames = encode_frames(protocol, dataset, BATCH)
    victim_index = 1
    strike_after = 5  # enough groups round-robined onto the victim first

    async def scenario():
        with spawn_tree(protocol, domain, tmp_path) as supervisor:
            victim = supervisor.handles[victim_index]

            def strike(client_id: int, group_index: int) -> None:
                if group_index == strike_after:
                    supervisor.kill(victim_index)
                    corrupt_checkpoint_array(
                        victim.checkpoint_dir / DURABLE_STATE_FILENAME,
                        rng=np.random.default_rng(SEED),
                    )

            report = await drive_fleet(
                supervisor,
                protocol,
                domain,
                frames,
                token_prefix="quarantine",
                on_group_done=strike,
            )
            supervisor.health_check()
            lost = supervisor.lost_collectors()
            with pytest.raises(PartialCoverageError) as excinfo:
                await supervisor.finalize(
                    expected_by_address=report.acked_by_target
                )
            estimator = await supervisor.finalize(
                allow_partial=True,
                expected_by_address=report.acked_by_target,
            )
            return report, lost, excinfo.value, estimator, victim

    report, lost, strict_error, estimator, victim = asyncio.run(scenario())

    assert lost[victim.collector_id].startswith("checkpoint quarantined")
    quarantined = list(victim.checkpoint_dir.glob("state.npz.corrupt*"))
    assert any(not f.name.endswith(".txt") for f in quarantined)
    assert any(f.name.endswith(".report.txt") for f in quarantined)

    coverage = estimator.metadata["coverage"]
    victim_entry = {
        entry["collector_id"]: entry for entry in coverage["collectors"]
    }[victim.collector_id]
    victim_acked = report.acked_by_target[
        f"{victim.host}:{victim.port}"
    ]["reports"]
    assert victim_acked > 0, "the victim never acknowledged anything"
    # The exact-loss claim: lost == what clients saw the victim ACK,
    # minus nothing — and the grand total still accounts for every report.
    assert victim_entry["status"] == "quarantined"
    assert victim_entry["lost"] == victim_acked
    assert coverage["received"] + coverage["lost"] == dataset.size
    assert coverage["error_inflation"] == pytest.approx(
        float(np.sqrt(dataset.size / coverage["received"]))
    )
    assert strict_error.coverage.lost == coverage["lost"]


def test_full_disk_checkpoint_leaves_the_previous_one_intact(tmp_path):
    """ENOSPC at fsync time must abort the temp file, not the checkpoint."""
    protocol = build("InpRR")
    dataset = small_dataset()
    frames = encode_frames(protocol, dataset, 48)
    session = AggregationSession(protocol.spec(), dataset.domain)
    session.submit(frames[0])
    path = tmp_path / "state.npz"
    session.checkpoint(path)
    pristine = path.read_bytes()

    session.submit(frames[1])
    with enospc_on_fsync():
        with pytest.raises(OSError, match="No space left"):
            session.checkpoint(path)

    assert path.read_bytes() == pristine, "the full disk tore the file"
    assert list(tmp_path.glob("*.tmp")) == [], "temp file leaked"
    restored = AggregationSession.restore(path)
    assert restored.num_reports == 48


def test_flipped_durable_state_is_refused_on_recovery(tmp_path):
    """The cheap sanity pairing for the tree test above: a raw media flip
    in a durable state file is refused by restore (CRC or digest)."""
    protocol = build("MargRR")
    dataset = small_dataset()
    session = AggregationSession(protocol.spec(), dataset.domain)
    for frame in encode_frames(protocol, dataset, 48):
        session.submit(frame)
    path = tmp_path / DURABLE_STATE_FILENAME
    session.checkpoint(path)
    corrupt_checkpoint_array(path, rng=np.random.default_rng(SEED))
    from repro.core.exceptions import WireFormatError

    with pytest.raises(WireFormatError):
        AggregationSession.restore(path)
