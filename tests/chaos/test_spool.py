"""ReportSpool durability: replay, torn tails, and mid-log damage.

The contract under test: a crash may tear at most the *final* record
(which recovery silently truncates); anything else wrong with the log is
untrustworthy and must raise :class:`SpoolError` rather than replay
guessed bytes into an aggregation.
"""

from __future__ import annotations

import pytest

from repro.core.exceptions import SpoolError
from repro.resilience import ReportSpool
from repro.resilience.chaos import enospc_on_fsync

FRAMES_A = [b"frame-a0", b"frame-a1"]
FRAMES_B = [b"frame-b0"]


class TestRoundTrip:
    def test_append_commit_and_reopen(self, tmp_path):
        path = tmp_path / "client.spool"
        with ReportSpool(path) as spool:
            spool.append_group("run/c0/g0", FRAMES_A)
            spool.append_group("run/c0/g1", FRAMES_B)
            spool.commit_group(
                "run/c0/g0", {"frames": 2, "reports": 48, "address": "h:1"}
            )
        with ReportSpool(path) as spool:
            assert len(spool) == 2
            assert spool.pending_groups() == {"run/c0/g1": FRAMES_B}
            assert spool.committed_groups() == {
                "run/c0/g0": {"frames": 2, "reports": 48, "address": "h:1"}
            }
            assert spool.frames_for("run/c0/g0") == FRAMES_A

    def test_pending_groups_keep_append_order(self, tmp_path):
        with ReportSpool(tmp_path / "s.spool") as spool:
            keys = [f"run/c0/g{index}" for index in range(5)]
            for key in keys:
                spool.append_group(key, [key.encode()])
            assert list(spool.pending_groups()) == keys

    def test_duplicate_append_is_rejected(self, tmp_path):
        with ReportSpool(tmp_path / "s.spool") as spool:
            spool.append_group("g", FRAMES_A)
            with pytest.raises(SpoolError, match="already spooled"):
                spool.append_group("g", FRAMES_A)

    def test_commit_of_unknown_group_is_rejected(self, tmp_path):
        with ReportSpool(tmp_path / "s.spool") as spool:
            with pytest.raises(SpoolError, match="unknown group"):
                spool.commit_group("ghost", {})

    def test_double_commit_is_rejected(self, tmp_path):
        with ReportSpool(tmp_path / "s.spool") as spool:
            spool.append_group("g", FRAMES_A)
            spool.commit_group("g", {"frames": 2})
            with pytest.raises(SpoolError, match="already committed"):
                spool.commit_group("g", {"frames": 2})


class TestCrashRecovery:
    def _spool_with_two_groups(self, path):
        with ReportSpool(path) as spool:
            spool.append_group("g0", FRAMES_A)
            spool.commit_group("g0", {"frames": 2, "reports": 48})
            spool.append_group("g1", FRAMES_B)

    def test_truncated_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "s.spool"
        self._spool_with_two_groups(path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])  # crash mid-append of the last record
        with ReportSpool(path) as spool:
            assert spool.committed_groups() == {
                "g0": {"frames": 2, "reports": 48}
            }
            assert spool.pending_groups() == {}  # g1's record was torn away
            # The file is truncated back to a record boundary: appending
            # g1 again must produce a clean, fully-recoverable log.
            spool.append_group("g1", FRAMES_B)
        with ReportSpool(path) as spool:
            assert spool.pending_groups() == {"g1": FRAMES_B}

    def test_digest_broken_final_record_counts_as_torn(self, tmp_path):
        path = tmp_path / "s.spool"
        self._spool_with_two_groups(path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # the tail record's trailing digest byte
        path.write_bytes(bytes(blob))
        with ReportSpool(path) as spool:
            assert "g1" not in spool.pending_groups()
            assert "g0" in spool.committed_groups()

    def test_mid_log_damage_raises_with_the_byte_offset(self, tmp_path):
        path = tmp_path / "s.spool"
        self._spool_with_two_groups(path)
        blob = bytearray(path.read_bytes())
        blob[10] ^= 0xFF  # inside the first record, with records after it
        path.write_bytes(bytes(blob))
        with pytest.raises(SpoolError, match=r"corrupted at byte \d+"):
            ReportSpool(path)

    def test_bad_magic_raises_even_at_the_tail(self, tmp_path):
        path = tmp_path / "s.spool"
        path.write_bytes(b"XXXX" + bytes(32))
        with pytest.raises(SpoolError, match="magic"):
            ReportSpool(path)


class TestDiskFaults:
    def test_full_disk_on_append_raises_spool_error(self, tmp_path):
        with ReportSpool(tmp_path / "s.spool") as spool:
            with enospc_on_fsync():
                with pytest.raises(SpoolError, match="No space left"):
                    spool.append_group("g0", FRAMES_A)

    def test_fsync_false_skips_the_injected_fault(self, tmp_path):
        # fsync=False is the benchmark mode: the injector never fires.
        with ReportSpool(tmp_path / "s.spool", fsync=False) as spool:
            with enospc_on_fsync():
                spool.append_group("g0", FRAMES_A)
            assert spool.pending_groups() == {"g0": FRAMES_A}
