"""Unit tests for unary encoding / parallel randomized response."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exceptions import ProtocolConfigurationError
from repro.core.privacy import PrivacyBudget
from repro.mechanisms.unary_encoding import UnaryEncoding


class TestConstruction:
    def test_symmetric_probabilities(self):
        budget = PrivacyBudget(2 * math.log(3))
        mechanism = UnaryEncoding.symmetric(budget)
        # eps/2 = ln 3 -> keep probability 0.75, flip 0.25.
        assert mechanism.probability_keep_one == pytest.approx(0.75)
        assert mechanism.probability_zero_to_one == pytest.approx(0.25)
        assert mechanism.epsilon == pytest.approx(2 * math.log(3))

    def test_optimized_probabilities(self):
        budget = PrivacyBudget(math.log(3))
        mechanism = UnaryEncoding.optimized(budget)
        assert mechanism.probability_keep_one == pytest.approx(0.5)
        assert mechanism.probability_zero_to_one == pytest.approx(0.25)
        assert mechanism.epsilon == pytest.approx(math.log(3))

    def test_from_budget_dispatch(self):
        budget = PrivacyBudget(1.0)
        assert UnaryEncoding.from_budget(budget, optimized=True) == UnaryEncoding.optimized(budget)
        assert UnaryEncoding.from_budget(budget, optimized=False) == UnaryEncoding.symmetric(budget)

    @pytest.mark.parametrize("p,q", [(0.5, 0.5), (0.4, 0.6), (0.9, 0.0), (1.0, 0.1)])
    def test_rejects_bad_probabilities(self, p, q):
        with pytest.raises(ProtocolConfigurationError):
            UnaryEncoding(p, q)

    def test_both_variants_give_same_epsilon(self):
        budget = PrivacyBudget(1.3)
        assert UnaryEncoding.symmetric(budget).epsilon == pytest.approx(1.3)
        assert UnaryEncoding.optimized(budget).epsilon == pytest.approx(1.3)


class TestPerturbation:
    def test_perturb_bits_shape_and_values(self, rng):
        mechanism = UnaryEncoding(0.75, 0.25)
        bits = rng.integers(0, 2, size=(100, 16)).astype(np.int8)
        noisy = mechanism.perturb_bits(bits, rng=rng)
        assert noisy.shape == bits.shape
        assert set(np.unique(noisy)).issubset({0, 1})

    def test_perturb_onehot_matches_dense(self, rng):
        """Sparse one-hot perturbation has the same marginal statistics as dense."""
        mechanism = UnaryEncoding(0.6, 0.2)
        n, m = 100_000, 4
        indices = rng.integers(0, m, size=n)
        sparse_reports = mechanism.perturb_onehot_indices(indices, m, rng=rng)

        dense = np.zeros((n, m), dtype=np.int8)
        dense[np.arange(n), indices] = 1
        dense_reports = mechanism.perturb_bits(dense, rng=rng)

        np.testing.assert_allclose(
            sparse_reports.mean(axis=0), dense_reports.mean(axis=0), atol=0.01
        )

    def test_one_bit_kept_with_p(self, rng):
        mechanism = UnaryEncoding(0.7, 0.1)
        n = 100_000
        indices = np.zeros(n, dtype=np.int64)
        reports = mechanism.perturb_onehot_indices(indices, 4, rng=rng)
        assert reports[:, 0].mean() == pytest.approx(0.7, abs=0.01)
        assert reports[:, 1].mean() == pytest.approx(0.1, abs=0.01)


class TestUnbiasing:
    def test_unbias_mean_exact_inverse(self):
        mechanism = UnaryEncoding(0.5, 0.25)
        for frequency in (0.0, 0.1, 0.5, 1.0):
            observed = frequency * 0.5 + (1 - frequency) * 0.25
            assert mechanism.unbias_mean(observed) == pytest.approx(frequency)

    def test_end_to_end_frequency_recovery(self, rng):
        mechanism = UnaryEncoding.optimized(PrivacyBudget(math.log(3)))
        n, m = 200_000, 8
        probabilities = np.array([0.4, 0.2, 0.1, 0.1, 0.05, 0.05, 0.05, 0.05])
        indices = rng.choice(m, size=n, p=probabilities)
        reports = mechanism.perturb_onehot_indices(indices, m, rng=rng)
        estimates = mechanism.unbias_mean(reports.mean(axis=0))
        np.testing.assert_allclose(estimates, probabilities, atol=0.02)

    def test_optimized_variance_not_worse_than_symmetric(self):
        budget = PrivacyBudget(1.1)
        symmetric = UnaryEncoding.symmetric(budget).variance_per_report(0.0)
        optimized = UnaryEncoding.optimized(budget).variance_per_report(0.0)
        assert optimized <= symmetric * 1.0001
