"""Unit tests for the Optimised Local Hashing frequency oracle."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exceptions import ProtocolConfigurationError
from repro.core.privacy import PrivacyBudget
from repro.mechanisms.local_hashing import OptimizedLocalHashing, _hash


class TestHashFamily:
    def test_deterministic(self):
        values = np.arange(100)
        seeds = np.full(100, 12345)
        first = _hash(values, seeds, 4)
        second = _hash(values, seeds, 4)
        np.testing.assert_array_equal(first, second)

    def test_range(self):
        values = np.arange(1000)
        seeds = np.full(1000, 7)
        hashed = _hash(values, seeds, 4)
        assert hashed.min() >= 0 and hashed.max() < 4

    def test_roughly_uniform_over_seeds(self, rng):
        # For a fixed value, hashing with many random seeds should spread
        # roughly uniformly over the buckets.
        seeds = rng.integers(1, 2**60, size=50_000)
        hashed = _hash(np.full(50_000, 42), seeds, 4)
        fractions = np.bincount(hashed, minlength=4) / hashed.size
        np.testing.assert_allclose(fractions, np.full(4, 0.25), atol=0.02)


class TestConfiguration:
    def test_default_bucket_count(self):
        oracle = OptimizedLocalHashing(256, PrivacyBudget(math.log(3)))
        assert oracle.num_buckets == 4  # floor(e^eps) + 1 = 4

    def test_explicit_bucket_count(self):
        oracle = OptimizedLocalHashing(256, PrivacyBudget(1.0), num_buckets=8)
        assert oracle.num_buckets == 8

    def test_minimum_two_buckets(self):
        oracle = OptimizedLocalHashing(16, PrivacyBudget(0.05))
        assert oracle.num_buckets >= 2

    def test_rejects_small_domain(self):
        with pytest.raises(ProtocolConfigurationError):
            OptimizedLocalHashing(1, PrivacyBudget(1.0))

    def test_default_decode_batch_size(self):
        from repro.mechanisms.local_hashing import DEFAULT_DECODE_BATCH_SIZE

        oracle = OptimizedLocalHashing(256, PrivacyBudget(1.0))
        assert oracle.decode_batch_size == DEFAULT_DECODE_BATCH_SIZE

    def test_explicit_decode_batch_size(self):
        oracle = OptimizedLocalHashing(256, PrivacyBudget(1.0), decode_batch_size=37)
        assert oracle.decode_batch_size == 37

    def test_rejects_negative_decode_batch_size(self):
        with pytest.raises(ProtocolConfigurationError):
            OptimizedLocalHashing(256, PrivacyBudget(1.0), decode_batch_size=-1)

    def test_decode_batch_size_is_not_part_of_identity(self):
        # A pure performance knob: differently tuned oracles must still
        # compare equal so accumulator merge signatures keep matching.
        base = OptimizedLocalHashing(256, PrivacyBudget(1.0))
        tuned = OptimizedLocalHashing(256, PrivacyBudget(1.0), decode_batch_size=8)
        assert base == tuned

    def test_support_counts_rejects_zero_batch_size(self, rng):
        oracle = OptimizedLocalHashing(16, PrivacyBudget(1.0))
        seeds, noisy = oracle.perturb(np.arange(16), rng=rng)
        with pytest.raises(ProtocolConfigurationError):
            oracle.support_counts(seeds, noisy, batch_size=-2)


class TestEstimation:
    def test_perturb_shapes(self, rng):
        oracle = OptimizedLocalHashing(64, PrivacyBudget(1.1))
        values = rng.integers(0, 64, size=500)
        seeds, noisy = oracle.perturb(values, rng=rng)
        assert seeds.shape == (500,)
        assert noisy.shape == (500,)
        assert noisy.min() >= 0 and noisy.max() < oracle.num_buckets

    def test_rejects_out_of_range_values(self, rng):
        oracle = OptimizedLocalHashing(16, PrivacyBudget(1.0))
        with pytest.raises(ProtocolConfigurationError):
            oracle.perturb(np.array([16]), rng=rng)

    def test_empty_batch_yields_empty_reports(self, rng):
        oracle = OptimizedLocalHashing(16, PrivacyBudget(1.0))
        seeds, noisy = oracle.perturb(np.array([], dtype=int), rng=rng)
        assert seeds.shape == (0,)
        assert noisy.shape == (0,)

    def test_frequency_recovery_on_small_domain(self, rng):
        oracle = OptimizedLocalHashing(8, PrivacyBudget(math.log(3)))
        probabilities = np.array([0.4, 0.2, 0.15, 0.1, 0.05, 0.05, 0.03, 0.02])
        values = rng.choice(8, size=150_000, p=probabilities)
        seeds, noisy = oracle.perturb(values, rng=rng)
        estimates = oracle.estimate_frequencies(seeds, noisy)
        assert estimates.shape == (8,)
        np.testing.assert_allclose(estimates, probabilities, atol=0.03)

    def test_estimate_rejects_mismatched_reports(self):
        oracle = OptimizedLocalHashing(8, PrivacyBudget(1.0))
        with pytest.raises(ProtocolConfigurationError):
            oracle.estimate_frequencies(np.arange(5), np.arange(4))
