"""Unit tests for the sampling strategies (RRS vs budget splitting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ProtocolConfigurationError
from repro.core.privacy import PrivacyBudget
from repro.mechanisms.sampling import (
    UniformSampler,
    sample_and_randomize_signs,
    sample_variance,
    split_budget_variance,
)


class TestUniformSampler:
    def test_sampling_probability(self):
        assert UniformSampler(10).sampling_probability == pytest.approx(0.1)
        assert UniformSampler(10).inverse_probability() == pytest.approx(10.0)

    def test_sample_range_and_shape(self, rng):
        sampler = UniformSampler(7)
        samples = sampler.sample(1000, rng=rng)
        assert samples.shape == (1000,)
        assert samples.min() >= 0 and samples.max() < 7

    def test_sample_is_roughly_uniform(self, rng):
        sampler = UniformSampler(4)
        samples = sampler.sample(100_000, rng=rng)
        fractions = np.bincount(samples, minlength=4) / samples.size
        np.testing.assert_allclose(fractions, np.full(4, 0.25), atol=0.01)

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(ProtocolConfigurationError):
            UniformSampler(0)
        with pytest.raises(ProtocolConfigurationError):
            UniformSampler(3).sample(0, rng=rng)


class TestSampleAndRandomize:
    def test_shapes_and_values(self, rng, budget):
        values = np.where(rng.random((500, 6)) < 0.5, 1.0, -1.0)
        columns, perturbed, mechanism = sample_and_randomize_signs(
            values, budget, rng=rng
        )
        assert columns.shape == (500,)
        assert perturbed.shape == (500,)
        assert set(np.unique(perturbed)).issubset({-1.0, 1.0})
        assert mechanism.epsilon == pytest.approx(budget.epsilon)

    def test_rejects_non_matrix(self, rng, budget):
        with pytest.raises(ProtocolConfigurationError):
            sample_and_randomize_signs(np.ones(10), budget, rng=rng)

    def test_unbiased_recovery_of_column_means(self, rng, budget):
        # All columns are constant +1, so the de-biased per-column mean should
        # be close to 1 regardless of which users sampled which column.
        n, m = 200_000, 4
        values = np.ones((n, m))
        columns, perturbed, mechanism = sample_and_randomize_signs(
            values, budget, rng=rng
        )
        for column in range(m):
            member = columns == column
            estimate = mechanism.unbias_mean(perturbed[member].mean())
            assert estimate == pytest.approx(1.0, abs=0.05)


class TestVarianceComparison:
    def test_sampling_beats_splitting_for_many_items(self, budget):
        for m in (4, 16, 64):
            assert sample_variance(budget, m, 10_000) < split_budget_variance(
                budget, m, 10_000
            )

    def test_single_item_equivalence(self, budget):
        # With one item there is nothing to sample or split over.
        assert sample_variance(budget, 1, 1000) == pytest.approx(
            split_budget_variance(budget, 1, 1000)
        )

    def test_variance_decreases_with_population(self, budget):
        assert sample_variance(budget, 8, 100_000) < sample_variance(budget, 8, 1000)

    def test_rejects_bad_arguments(self, budget):
        with pytest.raises(ProtocolConfigurationError):
            sample_variance(budget, 0, 100)
        with pytest.raises(ProtocolConfigurationError):
            split_budget_variance(budget, 4, 0)
