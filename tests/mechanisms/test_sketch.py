"""Unit tests for the Hadamard count-mean sketch."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exceptions import ProtocolConfigurationError
from repro.core.privacy import PrivacyBudget
from repro.mechanisms.sketch import HadamardCountMeanSketch


class TestConfiguration:
    def test_defaults(self):
        sketch = HadamardCountMeanSketch(1024, PrivacyBudget(1.0))
        assert sketch.num_hashes == 5
        assert sketch.width == 256

    @pytest.mark.parametrize("width", [0, 3, 100])
    def test_rejects_non_power_of_two_width(self, width):
        with pytest.raises(ProtocolConfigurationError):
            HadamardCountMeanSketch(64, PrivacyBudget(1.0), width=width)

    def test_rejects_bad_hash_count(self):
        with pytest.raises(ProtocolConfigurationError):
            HadamardCountMeanSketch(64, PrivacyBudget(1.0), num_hashes=0)

    def test_rejects_small_domain(self):
        with pytest.raises(ProtocolConfigurationError):
            HadamardCountMeanSketch(1, PrivacyBudget(1.0))


class TestReports:
    def test_report_shapes_and_ranges(self, rng):
        sketch = HadamardCountMeanSketch(256, PrivacyBudget(1.1), num_hashes=3, width=16)
        values = rng.integers(0, 256, size=1000)
        hashes, coefficients, signs = sketch.perturb(values, rng=rng)
        assert hashes.shape == coefficients.shape == signs.shape == (1000,)
        assert hashes.min() >= 0 and hashes.max() < 3
        assert coefficients.min() >= 0 and coefficients.max() < 16
        assert set(np.unique(signs)).issubset({-1.0, 1.0})

    def test_rejects_out_of_range(self, rng):
        sketch = HadamardCountMeanSketch(16, PrivacyBudget(1.0), width=8)
        with pytest.raises(ProtocolConfigurationError):
            sketch.perturb(np.array([20]), rng=rng)

    def test_build_sketch_rejects_shape_mismatch(self):
        sketch = HadamardCountMeanSketch(16, PrivacyBudget(1.0), width=8)
        with pytest.raises(ProtocolConfigurationError):
            sketch.build_sketch(np.zeros(3), np.zeros(4), np.zeros(4))


class TestEstimation:
    def test_heavy_hitter_recovery(self, rng):
        # One value carries 60% of the mass; the sketch should find it.
        sketch = HadamardCountMeanSketch(
            64, PrivacyBudget(math.log(3)), num_hashes=5, width=64
        )
        heavy = 17
        values = np.where(
            rng.random(150_000) < 0.6, heavy, rng.integers(0, 64, size=150_000)
        )
        hashes, coefficients, signs = sketch.perturb(values, rng=rng)
        estimates = sketch.estimate_frequencies(hashes, coefficients, signs)
        assert estimates.shape == (64,)
        assert int(np.argmax(estimates)) == heavy
        true_frequency = float((values == heavy).mean())
        assert estimates[heavy] == pytest.approx(true_frequency, abs=0.08)

    def test_estimates_roughly_normalised(self, rng):
        sketch = HadamardCountMeanSketch(
            32, PrivacyBudget(1.1), num_hashes=5, width=32
        )
        values = rng.integers(0, 32, size=100_000)
        estimates = sketch.estimate_frequencies(*sketch.perturb(values, rng=rng))
        assert estimates.sum() == pytest.approx(1.0, abs=0.25)
