"""Unit tests for bit and sign randomized response."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exceptions import ProtocolConfigurationError
from repro.core.privacy import PrivacyBudget
from repro.mechanisms.randomized_response import (
    BitRandomizedResponse,
    SignRandomizedResponse,
)


class TestBitRandomizedResponse:
    def test_from_budget_probability(self):
        mechanism = BitRandomizedResponse.from_budget(PrivacyBudget(math.log(3)))
        assert mechanism.keep_probability == pytest.approx(0.75)
        assert mechanism.epsilon == pytest.approx(math.log(3))

    @pytest.mark.parametrize("bad", [0.5, 0.4, 1.0, 1.2])
    def test_rejects_bad_probability(self, bad):
        with pytest.raises(ProtocolConfigurationError):
            BitRandomizedResponse(bad)

    def test_perturb_output_is_binary(self, rng):
        mechanism = BitRandomizedResponse(0.75)
        bits = rng.integers(0, 2, size=(50, 20))
        noisy = mechanism.perturb(bits, rng=rng)
        assert set(np.unique(noisy)).issubset({0, 1})
        assert noisy.shape == bits.shape

    def test_flip_rate_matches_probability(self, rng):
        mechanism = BitRandomizedResponse(0.8)
        bits = np.ones(200_000, dtype=np.int8)
        noisy = mechanism.perturb(bits, rng=rng)
        assert noisy.mean() == pytest.approx(0.8, abs=0.01)

    def test_unbias_mean_inverts_expectation(self, rng):
        mechanism = BitRandomizedResponse(0.7)
        true_frequency = 0.3
        bits = (rng.random(300_000) < true_frequency).astype(np.int8)
        noisy = mechanism.perturb(bits, rng=rng)
        estimate = mechanism.unbias_mean(noisy.mean())
        assert estimate == pytest.approx(true_frequency, abs=0.01)

    def test_unbias_is_exact_inverse_of_expectation(self):
        mechanism = BitRandomizedResponse(0.9)
        for frequency in (0.0, 0.25, 0.5, 1.0):
            expected_mean = 0.9 * frequency + 0.1 * (1 - frequency)
            assert mechanism.unbias_mean(expected_mean) == pytest.approx(frequency)

    def test_variance_positive_and_decreasing_in_p(self):
        low = BitRandomizedResponse(0.6).variance_per_report()
        high = BitRandomizedResponse(0.9).variance_per_report()
        assert low > high > 0


class TestSignRandomizedResponse:
    def test_attenuation(self):
        mechanism = SignRandomizedResponse(0.75)
        assert mechanism.attenuation == pytest.approx(0.5)
        assert mechanism.epsilon == pytest.approx(math.log(3))

    def test_perturb_preserves_magnitude(self, rng):
        mechanism = SignRandomizedResponse(0.75)
        signs = rng.choice([-1.0, 1.0], size=1000)
        noisy = mechanism.perturb(signs, rng=rng)
        assert set(np.unique(noisy)).issubset({-1.0, 1.0})

    def test_unbias_mean(self, rng):
        mechanism = SignRandomizedResponse(0.75)
        signs = np.ones(200_000)
        noisy = mechanism.perturb(signs, rng=rng)
        assert mechanism.unbias_mean(noisy.mean()) == pytest.approx(1.0, abs=0.02)

    def test_unbiasedness_for_mixed_input(self, rng):
        mechanism = SignRandomizedResponse(0.8)
        true_mean = 0.4  # 70% ones, 30% minus-ones
        signs = np.where(rng.random(200_000) < 0.7, 1.0, -1.0)
        noisy = mechanism.perturb(signs, rng=rng)
        assert mechanism.unbias_mean(noisy.mean()) == pytest.approx(true_mean, abs=0.02)

    def test_variance_formula(self):
        mechanism = SignRandomizedResponse(0.75)
        expected = 4 * 0.75 * 0.25 / 0.25
        assert mechanism.variance_per_report() == pytest.approx(expected)

    @pytest.mark.parametrize("bad", [0.5, 1.0, 0.0])
    def test_rejects_bad_probability(self, bad):
        with pytest.raises(ProtocolConfigurationError):
            SignRandomizedResponse(bad)

    def test_empirical_ldp_ratio(self, rng):
        """The observed output distribution respects the e^eps ratio bound."""
        budget = PrivacyBudget(1.0)
        mechanism = SignRandomizedResponse.from_budget(budget)
        n = 200_000
        plus = mechanism.perturb(np.ones(n), rng=rng)
        minus = mechanism.perturb(-np.ones(n), rng=rng)
        p_plus_given_plus = (plus == 1).mean()
        p_plus_given_minus = (minus == 1).mean()
        ratio = p_plus_given_plus / p_plus_given_minus
        assert ratio <= math.exp(1.0) * 1.05
