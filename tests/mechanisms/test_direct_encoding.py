"""Unit tests for direct encoding / generalised randomized response."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exceptions import ProtocolConfigurationError
from repro.core.privacy import PrivacyBudget
from repro.mechanisms.direct_encoding import DirectEncoding


class TestConstruction:
    def test_from_budget(self):
        mechanism = DirectEncoding.from_budget(PrivacyBudget(math.log(3)), 4)
        assert mechanism.keep_probability == pytest.approx(3 / 6)
        assert mechanism.lie_probability == pytest.approx((1 - 0.5) / 3)
        assert mechanism.epsilon == pytest.approx(math.log(3))

    def test_binary_case_matches_rr(self):
        mechanism = DirectEncoding.from_budget(PrivacyBudget(math.log(3)), 2)
        assert mechanism.keep_probability == pytest.approx(0.75)

    def test_rejects_small_domain(self):
        with pytest.raises(ProtocolConfigurationError):
            DirectEncoding(1, 0.9)

    def test_rejects_probability_below_uniform(self):
        with pytest.raises(ProtocolConfigurationError):
            DirectEncoding(4, 0.2)
        with pytest.raises(ProtocolConfigurationError):
            DirectEncoding(4, 1.0)


class TestPerturbation:
    def test_output_range(self, rng):
        mechanism = DirectEncoding.from_budget(PrivacyBudget(1.0), 8)
        values = rng.integers(0, 8, size=1000)
        noisy = mechanism.perturb(values, rng=rng)
        assert noisy.min() >= 0 and noisy.max() < 8

    def test_rejects_out_of_range_values(self, rng):
        mechanism = DirectEncoding.from_budget(PrivacyBudget(1.0), 4)
        with pytest.raises(ProtocolConfigurationError):
            mechanism.perturb(np.array([0, 4]), rng=rng)

    def test_keep_rate(self, rng):
        mechanism = DirectEncoding(4, 0.6)
        values = np.full(100_000, 2)
        noisy = mechanism.perturb(values, rng=rng)
        assert (noisy == 2).mean() == pytest.approx(0.6, abs=0.01)

    def test_lies_are_uniform_over_other_values(self, rng):
        mechanism = DirectEncoding(5, 0.5)
        values = np.full(200_000, 3)
        noisy = mechanism.perturb(values, rng=rng)
        lies = noisy[noisy != 3]
        counts = np.bincount(lies, minlength=5).astype(float)
        counts[3] = np.nan
        fractions = counts / len(lies)
        np.testing.assert_allclose(
            fractions[[0, 1, 2, 4]], np.full(4, 0.25), atol=0.01
        )


class TestEstimation:
    def test_estimate_frequencies_recovers_distribution(self, rng):
        mechanism = DirectEncoding.from_budget(PrivacyBudget(math.log(3)), 4)
        probabilities = np.array([0.5, 0.25, 0.15, 0.1])
        values = rng.choice(4, size=300_000, p=probabilities)
        estimates = mechanism.estimate_frequencies(mechanism.perturb(values, rng=rng))
        np.testing.assert_allclose(estimates, probabilities, atol=0.02)
        assert estimates.sum() == pytest.approx(1.0, abs=0.02)

    def test_unbias_matches_paper_formula(self):
        # The paper writes the estimator as (D F_j + p_s - 1) / (D p_s + p_s - 1).
        mechanism = DirectEncoding(8, 0.4)
        domain = 8
        big_d = domain - 1
        p_s = 0.4
        for fraction in (0.0, 0.1, 0.3, 0.7):
            ours = mechanism.unbias_frequencies(np.array([fraction]))[0]
            paper = (big_d * fraction + p_s - 1) / (big_d * p_s + p_s - 1)
            assert ours == pytest.approx(paper)

    def test_report_histogram_rejects_empty(self):
        mechanism = DirectEncoding(4, 0.5)
        with pytest.raises(ProtocolConfigurationError):
            mechanism.report_histogram(np.array([], dtype=int))

    def test_variance_grows_with_domain(self):
        budget = PrivacyBudget(1.0)
        small = DirectEncoding.from_budget(budget, 4).variance_per_report()
        large = DirectEncoding.from_budget(budget, 256).variance_per_report()
        assert large > small
