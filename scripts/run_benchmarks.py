"""Emit the machine-readable kernel benchmark baseline ``BENCH_kernels.json``.

Wraps ``benchmarks/bench_kernels.py``: runs one profile (``full`` by
default, ``--smoke`` for the CI-sized run), merges the results into the
output JSON (other profiles already recorded in the file are preserved,
so one file can carry both the full acceptance numbers and the smoke
numbers CI gates on), and — with ``--check`` — compares the fresh run
against a checked-in baseline.

The regression gate compares *speedups* (fast path vs retained reference,
measured in the same process), not absolute seconds, so it is portable
across machines: a kernel fails the gate when its measured speedup drops
below half of the baseline's recorded speedup (i.e. it regressed >2x
relative to the reference implementation).

Usage:
    PYTHONPATH=src python scripts/run_benchmarks.py                 # full run
    PYTHONPATH=src python scripts/run_benchmarks.py --smoke \\
        --output BENCH_kernels_ci.json --baseline BENCH_kernels.json --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_kernels  # noqa: E402  (needs the benchmarks dir on sys.path)

SCHEMA = "bench-kernels/v1"

#: A kernel regresses when its speedup falls below baseline_speedup / 2.
REGRESSION_FACTOR = 2.0


def load_report(path: Path) -> dict:
    with path.open() as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path}: expected schema {SCHEMA!r}, got {report.get('schema')!r}"
        )
    return report


def check_regressions(result: dict, baseline_profile: dict) -> list:
    """Compare one profile's fresh kernel speedups against the baseline."""
    failures = []
    for name, entry in result["kernels"].items():
        recorded = baseline_profile.get("kernels", {}).get(name)
        if recorded is None:
            continue
        floor = recorded["speedup"] / REGRESSION_FACTOR
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup {entry['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {recorded['speedup']:.2f}x / "
                f"{REGRESSION_FACTOR:g})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="run the CI-sized smoke profile"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_kernels.json",
        help="JSON file to write/merge results into",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="checked-in baseline JSON to gate against (with --check)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if any kernel speedup regressed >2x vs the baseline",
    )
    arguments = parser.parse_args(argv)

    profile_name = "smoke" if arguments.smoke else "full"

    # Snapshot the baseline *before* any writing: with the default paths the
    # output and the baseline are the same file, and gating against the
    # just-written results would make the check vacuous.
    baseline_profile = None
    if arguments.check:
        baseline_path = arguments.baseline or (REPO_ROOT / "BENCH_kernels.json")
        baseline = load_report(baseline_path)
        baseline_profile = baseline["profiles"].get(profile_name)
        if baseline_profile is None:
            raise SystemExit(
                f"{baseline_path} records no {profile_name!r} profile to gate "
                f"against"
            )

    print(f"running kernel benchmarks (profile: {profile_name}) ...")
    result = bench_kernels.run_profile(profile_name)
    print(bench_kernels.render(result))

    report = {"schema": SCHEMA, "profiles": {}}
    if arguments.output.exists():
        report = load_report(arguments.output)
    report["profiles"][profile_name] = result
    arguments.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {arguments.output}")

    if arguments.check:
        failures = check_regressions(result, baseline_profile)
        if failures:
            print(
                "FAIL: kernel speedups regressed >2x vs "
                f"{baseline_path}:\n  " + "\n  ".join(failures),
                file=sys.stderr,
            )
            return 1
        print(f"regression gate passed against {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
