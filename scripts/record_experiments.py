"""Regenerate every table/figure at a moderate scale and record the output.

This script backs EXPERIMENTS.md: it runs each experiment module at a scale
between the benchmark "quick" presets and the paper's full grids (so it
finishes in minutes on a laptop) and writes the rendered tables to
``experiment_results.txt``.

Run with:  python scripts/record_experiments.py [output_path]
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    ablations,
    categorical,
    fig3_taxi_heatmap,
    fig4_vary_n,
    fig5_vary_k,
    fig6_vary_d_em,
    fig7_chi2,
    fig8_chow_liu,
    fig9_vary_eps,
    fig10_freq_oracles,
    table2_bounds,
    table3_em_failures,
)
from repro.experiments.config import LN3, SweepConfig
from repro.protocols.registry import CORE_PROTOCOL_NAMES


def moderate_configs():
    """Moderate-scale configurations for every experiment."""
    yield "Figure 3 (taxi heat map)", fig3_taxi_heatmap, fig3_taxi_heatmap.HeatmapConfig(
        population=2**17
    )
    yield "Table 2 (bounds + measurement)", table2_bounds, table2_bounds.Table2Config(
        population=2**16
    )
    # Figure 4 exercises the streaming path: the dataset is consumed in
    # 16K-record batches spread over two mergeable accumulator shards
    # (estimates are shard-invariant, so the numbers are comparable run to
    # run regardless of the sharding).
    yield "Figure 4 (vary N, streamed)", fig4_vary_n, SweepConfig(
        protocols=tuple(CORE_PROTOCOL_NAMES),
        dataset="movielens",
        population_sizes=(2**14, 2**16),
        dimensions=(4, 8, 16),
        widths=(1, 2),
        epsilons=(LN3,),
        repetitions=3,
        batch_size=2**14,
        shards=2,
    )
    yield "Figure 5 (vary k)", fig5_vary_k, SweepConfig(
        protocols=tuple(CORE_PROTOCOL_NAMES),
        dataset="taxi",
        population_sizes=(2**16,),
        dimensions=(8,),
        widths=(1, 2, 3, 4, 5),
        epsilons=(LN3,),
        repetitions=3,
    )
    yield "Figure 6 (vary d, EM baseline)", fig6_vary_d_em, SweepConfig(
        protocols=fig6_vary_d_em.PROTOCOLS,
        dataset="taxi",
        population_sizes=(2**15,),
        dimensions=(8, 12, 16),
        widths=(2,),
        epsilons=(0.6, LN3),
        repetitions=3,
        protocol_options={"InpEM": {"convergence_threshold": 1e-5}},
    )
    yield "Figure 7 (chi-squared tests)", fig7_chi2, fig7_chi2.Chi2Config(
        population=2**18
    )
    yield "Figure 8 (Chow-Liu trees)", fig8_chow_liu, fig8_chow_liu.ChowLiuConfig(
        population=2**16,
        dimension=10,
        epsilons=(0.4, 0.8, 1.1, 1.4),
        repetitions=3,
    )
    yield "Figure 9 (vary epsilon)", fig9_vary_eps, SweepConfig(
        protocols=tuple(CORE_PROTOCOL_NAMES),
        dataset="movielens",
        population_sizes=(2**16,),
        dimensions=(8,),
        widths=(2,),
        epsilons=(0.4, 0.8, 1.1, 1.4),
        repetitions=3,
    )
    yield "Figure 10 (frequency oracles)", fig10_freq_oracles, SweepConfig(
        protocols=fig10_freq_oracles.PROTOCOLS,
        dataset="skewed",
        population_sizes=(2**15,),
        dimensions=(4, 6, 8),
        widths=(2,),
        epsilons=(LN3,),
        repetitions=3,
        protocol_options={"InpHTCMS": {"num_hashes": 5, "width": 256}},
    )
    yield "Table 3 (EM failures)", table3_em_failures, table3_em_failures.Table3Config(
        settings=(
            table3_em_failures.EMFailureSetting(2**16, 8, 1, 0.2),
            table3_em_failures.EMFailureSetting(2**16, 8, 2, 0.1),
            table3_em_failures.EMFailureSetting(2**16, 8, 2, 0.2),
            table3_em_failures.EMFailureSetting(2**16, 12, 2, 0.2),
            table3_em_failures.EMFailureSetting(2**16, 16, 2, 0.1),
            table3_em_failures.EMFailureSetting(2**16, 16, 2, 0.2),
        )
    )
    yield "Corollary 6.1 (categorical)", categorical, categorical.CategoricalConfig(
        population=2**16
    )


def main(output_path: str = "experiment_results.txt") -> None:
    sections = []
    for title, module, config in moderate_configs():
        started = time.time()
        result = module.run(config)
        elapsed = time.time() - started
        sections.append(
            f"### {title}  (wall clock {elapsed:.1f}s)\n\n{module.render(result)}\n"
        )
        print(f"done: {title} in {elapsed:.1f}s", flush=True)

    started = time.time()
    oue = ablations.run_oue_ablation(
        ablations.OUEAblationConfig(population=2**15, repetitions=3)
    )
    sections.append(
        f"### Ablation: unary-encoding probabilities  "
        f"(wall clock {time.time() - started:.1f}s)\n\n"
        f"{ablations.render_oue_ablation(oue)}\n"
    )
    sample_split = ablations.run_sample_vs_split()
    sections.append(
        "### Ablation: sampling vs budget splitting\n\n"
        f"{ablations.render_sample_vs_split(sample_split)}\n"
    )

    with open(output_path, "w") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {output_path}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
