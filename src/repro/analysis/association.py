"""Chi-squared association (independence) testing from marginals (Section 6.1).

Given a 2-way marginal over attributes ``A`` and ``B`` the chi-squared test
of independence compares the observed cell counts against the counts expected
under ``P[A, B] = P[A] P[B]`` and rejects independence when the statistic
exceeds the critical value of the chi-squared distribution with
``(|A| - 1)(|B| - 1)`` degrees of freedom.

The paper runs the test both on exact marginals and on marginals released
under LDP, and reports where the private statistic leads to the wrong
conclusion (Figure 7).  This module implements the statistic, the decision,
and a convenient side-by-side comparison structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats

from ..core.exceptions import MarginalQueryError
from ..core.marginals import MarginalTable
from ..datasets.base import BinaryDataset
from ..protocols.base import MarginalEstimator

__all__ = [
    "chi_squared_statistic",
    "chi_squared_critical_value",
    "IndependenceTestResult",
    "test_independence",
    "AssociationComparison",
    "compare_association_tests",
]


def chi_squared_statistic(table: MarginalTable, population: int) -> float:
    """Chi-squared statistic of a 2-way marginal scaled to ``population`` users.

    Negative estimated cells (possible for unbiased LDP estimators) are
    clipped before computing the statistic, matching how an analyst would
    post-process a released table.
    """
    if table.width != 2:
        raise MarginalQueryError(
            f"the independence test needs a 2-way marginal, got width {table.width}"
        )
    if population <= 0:
        raise MarginalQueryError(f"population must be positive, got {population}")
    observed = table.normalized().counts(population).reshape(2, 2)
    row_totals = observed.sum(axis=1, keepdims=True)
    column_totals = observed.sum(axis=0, keepdims=True)
    total = observed.sum()
    if total <= 0:
        return 0.0
    expected = row_totals @ column_totals / total
    with np.errstate(divide="ignore", invalid="ignore"):
        contributions = np.where(
            expected > 0, (observed - expected) ** 2 / expected, 0.0
        )
    return float(contributions.sum())


def chi_squared_critical_value(confidence: float = 0.95, dof: int = 1) -> float:
    """Critical value of the chi-squared distribution (default 3.841)."""
    if not 0 < confidence < 1:
        raise MarginalQueryError(f"confidence must be in (0,1), got {confidence}")
    if dof < 1:
        raise MarginalQueryError(f"degrees of freedom must be >= 1, got {dof}")
    return float(stats.chi2.ppf(confidence, dof))


@dataclass(frozen=True)
class IndependenceTestResult:
    """Outcome of one chi-squared independence test."""

    attributes: Tuple[str, str]
    statistic: float
    critical_value: float
    dependent: bool

    @property
    def p_value(self) -> float:
        """The p-value of the statistic under the 1-dof null distribution."""
        return float(stats.chi2.sf(self.statistic, 1))


def test_independence(
    table: MarginalTable, population: int, confidence: float = 0.95
) -> IndependenceTestResult:
    """Run the chi-squared test of independence on a 2-way marginal."""
    statistic = chi_squared_statistic(table, population)
    critical = chi_squared_critical_value(confidence, dof=1)
    names = table.attribute_names
    return IndependenceTestResult(
        attributes=(names[0], names[1]),
        statistic=statistic,
        critical_value=critical,
        dependent=statistic > critical,
    )


@dataclass(frozen=True)
class AssociationComparison:
    """Non-private vs private test outcomes for one attribute pair."""

    attributes: Tuple[str, str]
    exact: IndependenceTestResult
    private: IndependenceTestResult

    @property
    def agrees(self) -> bool:
        """Whether the private test reaches the same conclusion as the exact one."""
        return self.exact.dependent == self.private.dependent

    @property
    def type_one_error(self) -> bool:
        """Private test misses a true dependence (the error MargPS commits)."""
        return self.exact.dependent and not self.private.dependent

    @property
    def type_two_error(self) -> bool:
        """Private test declares a dependence the exact test does not find."""
        return (not self.exact.dependent) and self.private.dependent


def compare_association_tests(
    dataset: BinaryDataset,
    estimator: MarginalEstimator,
    attribute_pairs: Sequence[Tuple[str, str]],
    confidence: float = 0.95,
) -> List[AssociationComparison]:
    """Run exact and private independence tests side by side.

    This reproduces Figure 7: for each named attribute pair, the exact test
    uses the dataset's true marginal, the private test uses the marginal
    reconstructed by the given protocol estimator, and both are compared to
    the same critical value.
    """
    comparisons: List[AssociationComparison] = []
    for first, second in attribute_pairs:
        mask = dataset.domain.mask_of([first, second])
        exact = test_independence(dataset.marginal(mask), dataset.size, confidence)
        private = test_independence(estimator.query(mask), dataset.size, confidence)
        comparisons.append(
            AssociationComparison(
                attributes=(first, second), exact=exact, private=private
            )
        )
    return comparisons
