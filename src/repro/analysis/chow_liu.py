"""Chow–Liu dependency trees (Section 6.2).

Chow and Liu (1968) approximate a joint distribution over ``d`` variables by
a product of pairwise conditionals structured as a tree; the optimal tree is
a maximum-weight spanning tree of the complete graph whose edge weights are
the pairwise mutual informations.  The paper fits such trees from privately
released 2-way marginals and compares the total mutual information of the
private tree (evaluated on the *true* pairwise MI, so trees are comparable)
against the non-private one (Figure 8).

The spanning tree is computed with a self-contained Kruskal implementation so
the library does not require networkx; if networkx is installed the result
can still be exported to a graph object by callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..core.exceptions import MarginalQueryError
from ..datasets.base import BinaryDataset
from ..protocols.base import MarginalEstimator
from .mutual_information import (
    pairwise_mutual_information,
    private_pairwise_mutual_information,
)

__all__ = ["ChowLiuTree", "maximum_spanning_tree", "fit_chow_liu_tree"]


class _DisjointSet:
    """Union-find with path compression for Kruskal's algorithm."""

    def __init__(self, size: int):
        self._parent = list(range(size))
        self._rank = [0] * size

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: int, second: int) -> bool:
        root_first, root_second = self.find(first), self.find(second)
        if root_first == root_second:
            return False
        if self._rank[root_first] < self._rank[root_second]:
            root_first, root_second = root_second, root_first
        self._parent[root_second] = root_first
        if self._rank[root_first] == self._rank[root_second]:
            self._rank[root_first] += 1
        return True


@dataclass(frozen=True)
class ChowLiuTree:
    """A fitted dependency tree.

    Attributes
    ----------
    attributes:
        Attribute names, in the dataset's order.
    edges:
        The ``d - 1`` tree edges as attribute-name pairs.
    edge_weights:
        The mutual-information weight used for each selected edge (i.e. the
        weights of the graph the tree was fitted on — private weights for a
        privately fitted tree).
    """

    attributes: Tuple[str, ...]
    edges: Tuple[Tuple[str, str], ...]
    edge_weights: Dict[Tuple[str, str], float]

    @property
    def total_weight(self) -> float:
        """Total fitted mutual information of the tree's edges."""
        return float(sum(self.edge_weights[edge] for edge in self.edges))

    def total_weight_under(self, weights: Mapping[Tuple[str, str], float]) -> float:
        """Total weight of the tree's edges under a different weight function.

        This is how Figure 8 scores trees: the tree is *fitted* on private
        mutual information, but *scored* on the exact mutual information so
        that private and non-private trees are comparable.
        """
        total = 0.0
        for first, second in self.edges:
            if (first, second) in weights:
                total += float(weights[(first, second)])
            elif (second, first) in weights:
                total += float(weights[(second, first)])
            else:
                raise MarginalQueryError(
                    f"no weight provided for tree edge ({first}, {second})"
                )
        return total

    def adjacency(self) -> Dict[str, List[str]]:
        """Adjacency list of the tree."""
        neighbours: Dict[str, List[str]] = {name: [] for name in self.attributes}
        for first, second in self.edges:
            neighbours[first].append(second)
            neighbours[second].append(first)
        return neighbours


def maximum_spanning_tree(
    attributes: Sequence[str], weights: Mapping[Tuple[str, str], float]
) -> ChowLiuTree:
    """Kruskal's maximum-weight spanning tree over the complete pair graph."""
    names = list(attributes)
    if len(names) < 2:
        raise MarginalQueryError("a dependency tree needs at least two attributes")
    index = {name: position for position, name in enumerate(names)}

    normalised: Dict[Tuple[str, str], float] = {}
    for (first, second), weight in weights.items():
        if first not in index or second not in index:
            raise MarginalQueryError(
                f"weight given for unknown attribute pair ({first}, {second})"
            )
        key = (first, second) if index[first] < index[second] else (second, first)
        normalised[key] = float(weight)

    expected_pairs = len(names) * (len(names) - 1) // 2
    if len(normalised) < expected_pairs:
        raise MarginalQueryError(
            f"need weights for all {expected_pairs} pairs, got {len(normalised)}"
        )

    ordered = sorted(normalised.items(), key=lambda item: item[1], reverse=True)
    disjoint = _DisjointSet(len(names))
    edges: List[Tuple[str, str]] = []
    selected_weights: Dict[Tuple[str, str], float] = {}
    for (first, second), weight in ordered:
        if disjoint.union(index[first], index[second]):
            edges.append((first, second))
            selected_weights[(first, second)] = weight
            if len(edges) == len(names) - 1:
                break
    return ChowLiuTree(
        attributes=tuple(names),
        edges=tuple(edges),
        edge_weights=selected_weights,
    )


def fit_chow_liu_tree(
    source: BinaryDataset | MarginalEstimator,
) -> ChowLiuTree:
    """Fit a Chow–Liu tree from a dataset (exact) or an estimator (private)."""
    if isinstance(source, BinaryDataset):
        weights = pairwise_mutual_information(source)
        attributes = source.attribute_names
    else:
        weights = private_pairwise_mutual_information(source)
        attributes = list(source.domain.attributes)
    return maximum_spanning_tree(attributes, weights)
