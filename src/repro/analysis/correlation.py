"""Pairwise correlation analysis of binary datasets (Figure 3).

The paper motivates its datasets with a Pearson-correlation heat map over all
attribute pairs.  For binary attributes the Pearson coefficient is the phi
coefficient, which is a simple function of the 2-way marginal — so the same
machinery also lets us compute a *private* correlation heat map from released
marginals.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from ..core.exceptions import MarginalQueryError
from ..core.marginals import MarginalTable
from ..datasets.base import BinaryDataset
from ..protocols.base import MarginalEstimator

__all__ = [
    "phi_coefficient",
    "correlation_matrix",
    "private_correlation_matrix",
]


def phi_coefficient(table: MarginalTable) -> float:
    """Pearson (phi) correlation of the two attributes of a 2-way marginal.

    For the 2x2 joint distribution with cell probabilities ``p_ab`` the phi
    coefficient is ``(p11 p00 - p10 p01) / sqrt(pA (1-pA) pB (1-pB))``.
    Degenerate attributes (marginal probability 0 or 1) get correlation 0.
    """
    if table.width != 2:
        raise MarginalQueryError(
            f"phi coefficient needs a 2-way marginal, got width {table.width}"
        )
    values = table.normalized().values
    p00, p10, p01, p11 = (float(values[i]) for i in range(4))
    p_first = p10 + p11
    p_second = p01 + p11
    denominator = math.sqrt(
        p_first * (1 - p_first) * p_second * (1 - p_second)
    )
    if denominator <= 0:
        return 0.0
    return (p11 * p00 - p10 * p01) / denominator


def correlation_matrix(dataset: BinaryDataset) -> np.ndarray:
    """Exact Pearson correlation matrix of all attribute pairs."""
    d = dataset.dimension
    matrix = np.eye(d, dtype=np.float64)
    for first in range(d):
        for second in range(first + 1, d):
            mask = (1 << first) | (1 << second)
            value = phi_coefficient(dataset.marginal(mask))
            matrix[first, second] = value
            matrix[second, first] = value
    return matrix


def private_correlation_matrix(estimator: MarginalEstimator) -> np.ndarray:
    """Correlation matrix computed from privately released 2-way marginals."""
    d = estimator.domain.dimension
    matrix = np.eye(d, dtype=np.float64)
    for first in range(d):
        for second in range(first + 1, d):
            mask = (1 << first) | (1 << second)
            value = phi_coefficient(estimator.query(mask))
            matrix[first, second] = value
            matrix[second, first] = value
    return matrix
