"""Bayesian (dependency-tree) modelling from released marginals (Section 6.2).

Once a Chow–Liu tree has been fitted, the joint distribution is approximated
as a product of conditional probability tables along the tree:

    P[x_1, ..., x_d] ~= P[x_root] * prod_{(parent, child) in tree} P[x_child | x_parent]

Every factor is derived from 1-way and 2-way marginals, so the whole model
can be built from the output of any marginal-release protocol.  This module
derives the CPTs, evaluates the approximate joint, and can sample synthetic
records from the fitted model — the "predict demand / build a model" use
case the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.exceptions import MarginalQueryError
from ..core.marginals import MarginalTable
from ..core.rng import RngLike, ensure_rng
from ..datasets.base import BinaryDataset
from ..protocols.base import MarginalEstimator
from .chow_liu import ChowLiuTree, fit_chow_liu_tree

__all__ = ["ConditionalProbabilityTable", "TreeBayesianModel", "fit_tree_model"]


@dataclass(frozen=True)
class ConditionalProbabilityTable:
    """``P[child = 1 | parent = value]`` for a tree edge (or a root prior).

    For the root node ``parent`` is ``None`` and only ``probability_one[0]``
    is meaningful (the unconditional ``P[child = 1]``).
    """

    child: str
    parent: Optional[str]
    probability_one: Tuple[float, float]

    def probability(self, child_value: int, parent_value: int = 0) -> float:
        """``P[child = child_value | parent = parent_value]``."""
        if child_value not in (0, 1) or parent_value not in (0, 1):
            raise MarginalQueryError("attribute values must be 0 or 1")
        p_one = self.probability_one[parent_value if self.parent is not None else 0]
        return p_one if child_value == 1 else 1.0 - p_one


def _clip_probability(value: float) -> float:
    return float(min(1.0, max(0.0, value)))


def _conditional_from_joint(
    joint: MarginalTable, child: str, parent: str
) -> ConditionalProbabilityTable:
    """Derive ``P[child | parent]`` from their released 2-way marginal."""
    values = joint.normalized()
    probabilities = []
    for parent_value in (0, 1):
        p_parent = values.cell({parent: parent_value, child: 0}) + values.cell(
            {parent: parent_value, child: 1}
        )
        if p_parent <= 0:
            probabilities.append(0.5)
        else:
            probabilities.append(
                _clip_probability(
                    values.cell({parent: parent_value, child: 1}) / p_parent
                )
            )
    return ConditionalProbabilityTable(
        child=child, parent=parent, probability_one=(probabilities[0], probabilities[1])
    )


@dataclass(frozen=True)
class TreeBayesianModel:
    """A tree-structured Bayesian network over binary attributes."""

    tree: ChowLiuTree
    root: str
    order: Tuple[str, ...]
    tables: Dict[str, ConditionalProbabilityTable]

    def log_probability(self, record: Mapping[str, int]) -> float:
        """Log probability of a full record under the fitted model."""
        missing = set(self.order) - set(record)
        if missing:
            raise MarginalQueryError(f"record is missing attributes {sorted(missing)}")
        total = 0.0
        for attribute in self.order:
            table = self.tables[attribute]
            parent_value = int(record[table.parent]) if table.parent else 0
            probability = table.probability(int(record[attribute]), parent_value)
            if probability <= 0:
                return float("-inf")
            total += float(np.log(probability))
        return total

    def probability(self, record: Mapping[str, int]) -> float:
        """Probability of a full record under the fitted model."""
        return float(np.exp(self.log_probability(record)))

    def sample(self, n: int, rng: RngLike = None) -> BinaryDataset:
        """Draw ``n`` synthetic records from the fitted model."""
        if n <= 0:
            raise MarginalQueryError(f"sample size must be positive, got {n}")
        generator = ensure_rng(rng)
        columns: Dict[str, np.ndarray] = {}
        for attribute in self.order:
            table = self.tables[attribute]
            if table.parent is None:
                p_one = np.full(n, table.probability_one[0])
            else:
                parent_values = columns[table.parent]
                p_one = np.where(
                    parent_values == 1,
                    table.probability_one[1],
                    table.probability_one[0],
                )
            columns[attribute] = (generator.random(n) < p_one).astype(np.int8)
        names = list(self.tree.attributes)
        records = np.stack([columns[name] for name in names], axis=1)
        return BinaryDataset.from_records(records, attribute_names=names)


def fit_tree_model(
    source: BinaryDataset | MarginalEstimator,
    tree: Optional[ChowLiuTree] = None,
    root: Optional[str] = None,
) -> TreeBayesianModel:
    """Fit the CPTs of a (given or freshly fitted) Chow–Liu tree.

    ``source`` supplies the marginals: a dataset gives the exact model, a
    protocol estimator gives the private model.
    """
    if tree is None:
        tree = fit_chow_liu_tree(source)
    attributes = list(tree.attributes)
    if root is None:
        root = attributes[0]
    if root not in attributes:
        raise MarginalQueryError(f"unknown root attribute {root!r}")

    if isinstance(source, BinaryDataset):
        domain = source.domain
        query = source.marginal
    else:
        domain = source.domain
        query = source.query

    # Breadth-first orientation of the tree away from the root.
    adjacency = tree.adjacency()
    order: List[str] = [root]
    parent_of: Dict[str, Optional[str]] = {root: None}
    frontier = [root]
    while frontier:
        current = frontier.pop(0)
        for neighbour in adjacency[current]:
            if neighbour not in parent_of:
                parent_of[neighbour] = current
                order.append(neighbour)
                frontier.append(neighbour)
    if len(order) != len(attributes):
        raise MarginalQueryError("the dependency tree is not connected")

    tables: Dict[str, ConditionalProbabilityTable] = {}
    for attribute in order:
        parent = parent_of[attribute]
        if parent is None:
            one_way = query(domain.mask_of(attribute))
            normalised = one_way.normalized()
            tables[attribute] = ConditionalProbabilityTable(
                child=attribute,
                parent=None,
                probability_one=(
                    _clip_probability(normalised.cell({attribute: 1})),
                    _clip_probability(normalised.cell({attribute: 1})),
                ),
            )
        else:
            joint = query(domain.mask_of([attribute, parent]))
            tables[attribute] = _conditional_from_joint(joint, attribute, parent)
    return TreeBayesianModel(
        tree=tree, root=root, order=tuple(order), tables=tables
    )
