"""Mutual information of attribute pairs from marginal tables.

Mutual information is the edge weight in the Chow–Liu dependency-tree
construction (Section 6.2).  It only needs the pairwise (2-way) marginal —
exactly what the protocols in this library release — plus the implied 1-way
marginals.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from ..core.exceptions import MarginalQueryError
from ..core.marginals import MarginalTable
from ..datasets.base import BinaryDataset
from ..protocols.base import MarginalEstimator

__all__ = [
    "mutual_information",
    "pairwise_mutual_information",
    "private_pairwise_mutual_information",
]


def mutual_information(table: MarginalTable) -> float:
    """Mutual information (in nats) of the two attributes of a 2-way marginal.

    The table is first projected onto the probability simplex; cells with
    zero probability contribute zero, following the usual ``0 log 0 = 0``
    convention.
    """
    if table.width != 2:
        raise MarginalQueryError(
            f"mutual information needs a 2-way marginal, got width {table.width}"
        )
    joint = table.normalized().values.reshape(2, 2)  # [second, first]
    p_second = joint.sum(axis=1)
    p_first = joint.sum(axis=0)
    information = 0.0
    for second in range(2):
        for first in range(2):
            p_joint = joint[second, first]
            if p_joint <= 0:
                continue
            p_independent = p_second[second] * p_first[first]
            if p_independent <= 0:
                continue
            information += p_joint * math.log(p_joint / p_independent)
    return max(0.0, information)


def pairwise_mutual_information(dataset: BinaryDataset) -> Dict[Tuple[str, str], float]:
    """Exact mutual information of every attribute pair."""
    result: Dict[Tuple[str, str], float] = {}
    names = dataset.attribute_names
    for first in range(dataset.dimension):
        for second in range(first + 1, dataset.dimension):
            mask = (1 << first) | (1 << second)
            result[(names[first], names[second])] = mutual_information(
                dataset.marginal(mask)
            )
    return result


def private_pairwise_mutual_information(
    estimator: MarginalEstimator,
) -> Dict[Tuple[str, str], float]:
    """Mutual information of every pair from privately released marginals."""
    result: Dict[Tuple[str, str], float] = {}
    domain = estimator.domain
    names = list(domain.attributes)
    for first in range(domain.dimension):
        for second in range(first + 1, domain.dimension):
            mask = (1 << first) | (1 << second)
            result[(names[first], names[second])] = mutual_information(
                estimator.query(mask)
            )
    return result
