"""Downstream analyses built on released marginals."""

from .association import (
    AssociationComparison,
    IndependenceTestResult,
    chi_squared_critical_value,
    chi_squared_statistic,
    compare_association_tests,
    test_independence,
)
from .bayesian import ConditionalProbabilityTable, TreeBayesianModel, fit_tree_model
from .chow_liu import ChowLiuTree, fit_chow_liu_tree, maximum_spanning_tree
from .correlation import (
    correlation_matrix,
    phi_coefficient,
    private_correlation_matrix,
)
from .mutual_information import (
    mutual_information,
    pairwise_mutual_information,
    private_pairwise_mutual_information,
)

__all__ = [
    "chi_squared_statistic",
    "chi_squared_critical_value",
    "IndependenceTestResult",
    "test_independence",
    "AssociationComparison",
    "compare_association_tests",
    "phi_coefficient",
    "correlation_matrix",
    "private_correlation_matrix",
    "mutual_information",
    "pairwise_mutual_information",
    "private_pairwise_mutual_information",
    "ChowLiuTree",
    "maximum_spanning_tree",
    "fit_chow_liu_tree",
    "ConditionalProbabilityTable",
    "TreeBayesianModel",
    "fit_tree_model",
]
