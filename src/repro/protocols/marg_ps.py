"""MargPS — preferential sampling within one randomly sampled marginal.

Each user samples one of the ``C(d, k)`` k-way marginals uniformly and then
reports the cell of that marginal their record falls in through generalised
randomized response over the ``2^k`` cells (``d + k`` bits per user).  The
aggregator groups the reports by marginal and unbiases the per-cell report
fractions into frequency estimates.

Table 2 summary: error behaviour ``2^{3k/2} d^{k/2} / (eps sqrt(N))``.  For
the small ``k`` the paper targets, MargPS is competitive and in several
experiments the second-best method after InpHT.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import bitops
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..datasets.base import BinaryDataset
from ..mechanisms.direct_encoding import DirectEncoding
from .base import MarginalReleaseProtocol, PerMarginalEstimator

__all__ = ["MargPS"]


class MargPS(MarginalReleaseProtocol):
    """Preferential sampling (GRR) on a randomly sampled k-way marginal."""

    name = "MargPS"

    def mechanism(self) -> DirectEncoding:
        """The GRR mechanism over the ``2^k`` cells of the sampled marginal."""
        return DirectEncoding.from_budget(self.budget, 1 << self.max_width)

    def run(self, dataset: BinaryDataset, rng: RngLike = None) -> PerMarginalEstimator:
        generator = ensure_rng(rng)
        workload = self.workload_for(dataset.domain)
        mechanism = self.mechanism()

        marginals: List[int] = dataset.domain.all_marginals(self.max_width)
        marginal_array = np.asarray(marginals, dtype=np.int64)
        cells = 1 << self.max_width

        indices = dataset.indices()
        n = indices.shape[0]
        choices = generator.integers(0, marginal_array.size, size=n)

        user_cells = np.empty(n, dtype=np.int64)
        for position, beta in enumerate(marginals):
            members = choices == position
            if members.any():
                user_cells[members] = bitops.compress_indices(
                    indices[members] & beta, beta
                )

        noisy_cells = mechanism.perturb(user_cells, rng=generator)

        tables: Dict[int, np.ndarray] = {}
        for position, beta in enumerate(marginals):
            members = choices == position
            if not members.any():
                tables[beta] = np.full(cells, 1.0 / cells)
                continue
            fractions = (
                np.bincount(noisy_cells[members], minlength=cells).astype(np.float64)
                / members.sum()
            )
            tables[beta] = mechanism.unbias_frequencies(fractions)
        return PerMarginalEstimator(workload, tables)

    def communication_bits(self, dimension: int) -> int:
        """``d`` bits to name the marginal plus ``k`` bits for the noisy cell."""
        return dimension + self.max_width
