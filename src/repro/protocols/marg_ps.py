"""MargPS — preferential sampling within one randomly sampled marginal.

Each user samples one of the ``C(d, k)`` k-way marginals uniformly and then
reports the cell of that marginal their record falls in through generalised
randomized response over the ``2^k`` cells (``d + k`` bits per user).  The
aggregator groups the reports by marginal and unbiases the per-cell report
fractions into frequency estimates.

Table 2 summary: error behaviour ``2^{3k/2} d^{k/2} / (eps sqrt(N))``.  For
the small ``k`` the paper targets, MargPS is competitive and in several
experiments the second-best method after InpHT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core import bitops
from ..core.domain import Domain
from ..core.marginals import MarginalWorkload
from ..core.rng import RngLike, ensure_rng
from ..mechanisms.direct_encoding import DirectEncoding
from .base import (
    Accumulator,
    MarginalReleaseProtocol,
    PerMarginalEstimator,
    as_record_matrix,
    record_indices,
    sampled_marginal_cells,
    take_state_array,
)
from .wire import ReportField, WireCodableReports, register_report_schema

__all__ = ["MargPS", "MargPSReports", "MargPSAccumulator"]


@dataclass(frozen=True)
class MargPSReports(WireCodableReports):
    """One encoded batch: sampled marginal positions + noisy cell indices."""

    choices: np.ndarray
    noisy_cells: np.ndarray

    @property
    def num_users(self) -> int:
        return int(self.choices.shape[0])


register_report_schema(
    "MargPS",
    MargPSReports,
    fields=(
        ReportField("choices", np.int64),
        ReportField("noisy_cells", np.int64),
    ),
)


class MargPSAccumulator(Accumulator):
    """Mergeable per-(marginal, cell) report counts."""

    def __init__(self, workload: MarginalWorkload, mechanism: DirectEncoding):
        super().__init__(workload)
        self._mechanism = mechanism
        self._marginals: List[int] = workload.domain.all_marginals(
            workload.max_width
        )
        self._cells = 1 << workload.max_width
        self._cell_counts = np.zeros(
            (len(self._marginals), self._cells), dtype=np.int64
        )
        self._user_counts = np.zeros(len(self._marginals), dtype=np.int64)

    def _ingest(self, reports: MargPSReports) -> None:
        choices = np.asarray(reports.choices, dtype=np.int64)
        noisy = np.asarray(reports.noisy_cells, dtype=np.int64)
        size = len(self._marginals)
        flat = np.bincount(
            choices * self._cells + noisy, minlength=size * self._cells
        )
        self._cell_counts += flat.reshape(size, self._cells)
        self._user_counts += np.bincount(choices, minlength=size)

    def _absorb(self, other: "MargPSAccumulator") -> None:
        self._cell_counts += other._cell_counts
        self._user_counts += other._user_counts

    def _export_state(self):
        return {
            "cell_counts": self._cell_counts.copy(),
            "user_counts": self._user_counts.copy(),
        }

    def _import_state(self, state) -> None:
        self._cell_counts = take_state_array(
            state, "cell_counts", self._cell_counts.shape, np.int64
        )
        self._user_counts = take_state_array(
            state, "user_counts", self._user_counts.shape, np.int64
        )

    def _merge_signature(self):
        return self._mechanism

    def finalize(self) -> PerMarginalEstimator:
        self._require_reports()
        tables: Dict[int, np.ndarray] = {}
        for position, beta in enumerate(self._marginals):
            if self._user_counts[position] == 0:
                tables[beta] = np.full(self._cells, 1.0 / self._cells)
                continue
            tables[beta] = self._mechanism.unbias_counts(
                self._cell_counts[position], int(self._user_counts[position])
            )
        return PerMarginalEstimator(self._workload, tables)


class MargPS(MarginalReleaseProtocol):
    """Preferential sampling (GRR) on a randomly sampled k-way marginal."""

    name = "MargPS"

    def mechanism(self) -> DirectEncoding:
        """The GRR mechanism over the ``2^k`` cells of the sampled marginal."""
        return DirectEncoding.from_budget(self.budget, 1 << self.max_width)

    def encode_batch(self, records, rng: RngLike = None) -> MargPSReports:
        generator = ensure_rng(rng)
        records = as_record_matrix(records)
        marginals = bitops.masks_of_weight(records.shape[1], self.max_width)

        indices = record_indices(records)
        choices = generator.integers(0, len(marginals), size=indices.shape[0])
        user_cells = sampled_marginal_cells(indices, choices, marginals)
        noisy_cells = self.mechanism().perturb(user_cells, rng=generator)
        return MargPSReports(choices=choices, noisy_cells=noisy_cells)

    def accumulator(self, domain: Domain) -> MargPSAccumulator:
        return MargPSAccumulator(self.workload_for(domain), self.mechanism())

    def communication_bits(self, dimension: int) -> int:
        """``d`` bits to name the marginal plus ``k`` bits for the noisy cell."""
        return dimension + self.max_width
