"""Marginal-release protocols under local differential privacy."""

from .base import (
    Accumulator,
    CoefficientEstimator,
    DistributionEstimator,
    MarginalEstimator,
    MarginalReleaseProtocol,
    PerMarginalEstimator,
    as_record_matrix,
    record_indices,
)
from .inp_em import EMDecodingResult, EMEstimator, InpEM
from .inp_ht import InpHT
from .inp_htcms import InpHTCMS
from .inp_olh import InpOLH
from .inp_ps import InpPS
from .inp_rr import InpRR
from .marg_ht import MargHT
from .marg_ps import MargPS
from .marg_rr import MargRR
from .registry import (
    BASELINE_PROTOCOL_NAMES,
    CORE_PROTOCOL_NAMES,
    DISCOVERY_PROTOCOL_NAMES,
    PROTOCOL_CLASSES,
    available_protocols,
    make_protocol,
)

__all__ = [
    "MarginalReleaseProtocol",
    "Accumulator",
    "as_record_matrix",
    "record_indices",
    "MarginalEstimator",
    "DistributionEstimator",
    "CoefficientEstimator",
    "PerMarginalEstimator",
    "InpRR",
    "InpPS",
    "InpHT",
    "MargRR",
    "MargPS",
    "MargHT",
    "InpEM",
    "EMEstimator",
    "EMDecodingResult",
    "InpOLH",
    "InpHTCMS",
    "PROTOCOL_CLASSES",
    "CORE_PROTOCOL_NAMES",
    "BASELINE_PROTOCOL_NAMES",
    "DISCOVERY_PROTOCOL_NAMES",
    "available_protocols",
    "make_protocol",
]
