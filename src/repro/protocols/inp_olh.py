"""InpOLH — marginals via the Optimised Local Hashing frequency oracle.

A generic way to materialise marginals under LDP is to run any frequency
oracle over the flattened domain ``{0,1}^d`` and aggregate the estimated cell
frequencies into marginals.  This protocol instantiates that approach with
Wang et al.'s OLH oracle, which the paper evaluates in Appendix B.2
(Figure 10): accurate for small ``d`` but with an aggregation cost of
``O(N * 2^d)`` that stops scaling well before the paper's larger dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.domain import Domain
from ..core.marginals import MarginalWorkload
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..mechanisms.local_hashing import OptimizedLocalHashing
from .base import (
    Accumulator,
    DistributionEstimator,
    MarginalReleaseProtocol,
    as_record_matrix,
    record_indices,
    take_state_array,
)
from .wire import ReportField, WireCodableReports, register_report_schema

__all__ = ["InpOLH", "InpOLHReports", "InpOLHAccumulator"]


@dataclass(frozen=True)
class InpOLHReports(WireCodableReports):
    """One encoded batch: per-user hash seeds and noisy buckets."""

    seeds: np.ndarray
    noisy_buckets: np.ndarray

    @property
    def num_users(self) -> int:
        return int(self.seeds.shape[0])


register_report_schema(
    "InpOLH",
    InpOLHReports,
    fields=(
        ReportField("seeds", np.int64),
        ReportField("noisy_buckets", np.int64),
    ),
)


class InpOLHAccumulator(Accumulator):
    """Mergeable per-element support counts (constant ``O(2^d)`` memory).

    Decoding each report batch into support counts at ``update`` time keeps
    the accumulator's size independent of the number of users — the reports
    themselves are dropped once folded in.
    """

    def __init__(self, workload: MarginalWorkload, oracle: OptimizedLocalHashing):
        super().__init__(workload)
        self._oracle = oracle
        self._support = np.zeros(workload.domain.size, dtype=np.float64)

    def _ingest(self, reports: InpOLHReports) -> None:
        self._support += self._oracle.support_counts(
            reports.seeds, reports.noisy_buckets
        )

    def _absorb(self, other: "InpOLHAccumulator") -> None:
        self._support += other._support

    def _export_state(self):
        return {"support": self._support.copy()}

    def _import_state(self, state) -> None:
        self._support = take_state_array(
            state, "support", self._support.shape, np.float64
        )

    def _merge_signature(self):
        return self._oracle

    def finalize(self) -> DistributionEstimator:
        total = self._require_reports()
        distribution = self._oracle.estimate_from_support(self._support, total)
        return DistributionEstimator(self._workload, distribution)


class InpOLH(MarginalReleaseProtocol):
    """Optimised Local Hashing applied to the full-domain index.

    ``decode_batch_size`` tunes how many domain elements the ``O(N * 2^d)``
    support-count decode hashes per block (0 = the library default) and
    ``kernel_backend`` picks the decode kernel implementation
    (:mod:`repro.core.backends`; ``""`` defers to the env/default chain).
    Both are pure performance knobs with no effect on the estimates.
    """

    name = "InpOLH"

    def __init__(
        self,
        budget: PrivacyBudget,
        max_width: int,
        num_buckets: int = 0,
        decode_batch_size: int = 0,
        kernel_backend: str = "",
    ):
        super().__init__(budget, max_width)
        self._num_buckets = int(num_buckets)
        self._decode_batch_size = int(decode_batch_size)
        self._kernel_backend = str(kernel_backend)

    def spec_options(self):
        return {
            "num_buckets": self._num_buckets,
            "decode_batch_size": self._decode_batch_size,
            "kernel_backend": self._kernel_backend,
        }

    def tuning_options(self):
        # decode_batch_size and kernel_backend only shape the O(N * 2^d)
        # decode; they never change the estimates, so differently tuned
        # collectors may merge.
        return frozenset({"decode_batch_size", "kernel_backend"})

    def oracle(self, dimension: int) -> OptimizedLocalHashing:
        """The OLH frequency oracle over ``{0,1}^d``."""
        return OptimizedLocalHashing(
            domain_size=1 << dimension,
            budget=self.budget,
            num_buckets=self._num_buckets,
            decode_batch_size=self._decode_batch_size,
            kernel_backend=self._kernel_backend,
        )

    def encode_batch(self, records, rng: RngLike = None) -> InpOLHReports:
        generator = ensure_rng(rng)
        records = as_record_matrix(records)
        oracle = self.oracle(records.shape[1])
        seeds, noisy = oracle.perturb(record_indices(records), rng=generator)
        return InpOLHReports(seeds=seeds, noisy_buckets=noisy)

    def accumulator(self, domain: Domain) -> InpOLHAccumulator:
        return InpOLHAccumulator(
            self.workload_for(domain), self.oracle(domain.dimension)
        )

    def communication_bits(self, dimension: int) -> int:
        """A hash-function identifier (64 bits in this implementation) plus
        the noisy bucket (``ceil(log2 g)`` bits, a handful for small eps)."""
        oracle = self.oracle(dimension)
        bucket_bits = max(1, (oracle.num_buckets - 1).bit_length())
        return 64 + bucket_bits
