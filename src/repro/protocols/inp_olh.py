"""InpOLH — marginals via the Optimised Local Hashing frequency oracle.

A generic way to materialise marginals under LDP is to run any frequency
oracle over the flattened domain ``{0,1}^d`` and aggregate the estimated cell
frequencies into marginals.  This protocol instantiates that approach with
Wang et al.'s OLH oracle, which the paper evaluates in Appendix B.2
(Figure 10): accurate for small ``d`` but with an aggregation cost of
``O(N * 2^d)`` that stops scaling well before the paper's larger dimensions.
"""

from __future__ import annotations

from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..datasets.base import BinaryDataset
from ..mechanisms.local_hashing import OptimizedLocalHashing
from .base import DistributionEstimator, MarginalReleaseProtocol

__all__ = ["InpOLH"]


class InpOLH(MarginalReleaseProtocol):
    """Optimised Local Hashing applied to the full-domain index."""

    name = "InpOLH"

    def __init__(self, budget: PrivacyBudget, max_width: int, num_buckets: int = 0):
        super().__init__(budget, max_width)
        self._num_buckets = int(num_buckets)

    def oracle(self, dimension: int) -> OptimizedLocalHashing:
        """The OLH frequency oracle over ``{0,1}^d``."""
        return OptimizedLocalHashing(
            domain_size=1 << dimension,
            budget=self.budget,
            num_buckets=self._num_buckets,
        )

    def run(self, dataset: BinaryDataset, rng: RngLike = None) -> DistributionEstimator:
        generator = ensure_rng(rng)
        workload = self.workload_for(dataset.domain)
        oracle = self.oracle(dataset.dimension)
        seeds, noisy = oracle.perturb(dataset.indices(), rng=generator)
        distribution = oracle.estimate_frequencies(seeds, noisy)
        return DistributionEstimator(workload, distribution)

    def communication_bits(self, dimension: int) -> int:
        """A hash-function identifier (64 bits in this implementation) plus
        the noisy bucket (``ceil(log2 g)`` bits, a handful for small eps)."""
        oracle = self.oracle(dimension)
        bucket_bits = max(1, (oracle.num_buckets - 1).bit_length())
        return 64 + bucket_bits
