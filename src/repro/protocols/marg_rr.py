"""MargRR — parallel randomized response on one randomly sampled marginal.

Each user samples one of the ``C(d, k)`` k-way marginals uniformly,
materialises their (one-hot, size ``2^k``) contribution to it, perturbs every
cell with parallel randomized response, and sends the marginal identity plus
the perturbed cells (``d + 2^k`` bits).  The aggregator groups reports by
sampled marginal, averages and de-biases them per cell.

Table 2 summary: error behaviour ``2^k d^{k/2} / (eps sqrt(N))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core import bitops
from ..core.domain import Domain
from ..core.marginals import MarginalWorkload
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..mechanisms.unary_encoding import UnaryEncoding
from .base import (
    Accumulator,
    MarginalReleaseProtocol,
    PerMarginalEstimator,
    as_record_matrix,
    record_indices,
    sampled_marginal_cells,
    take_state_array,
)
from .wire import ReportField, WireCodableReports, register_report_schema

__all__ = ["MargRR", "MargRRReports", "MargRRAccumulator"]


@dataclass(frozen=True)
class MargRRReports(WireCodableReports):
    """One encoded batch: sampled marginal positions + perturbed cell bits.

    ``choices[i]`` indexes the shared ``C(d, k)`` marginal list;
    ``cell_bits[i]`` is user ``i``'s PRR-perturbed one-hot row of ``2^k``
    bits over their sampled marginal's cells.
    """

    choices: np.ndarray
    cell_bits: np.ndarray

    @property
    def num_users(self) -> int:
        return int(self.choices.shape[0])


register_report_schema(
    "MargRR",
    MargRRReports,
    fields=(
        ReportField("choices", np.int64),
        ReportField("cell_bits", np.int8, ndim=2),
    ),
)


class MargRRAccumulator(Accumulator):
    """Mergeable per-(marginal, cell) bit sums and per-marginal user counts."""

    def __init__(self, workload: MarginalWorkload, mechanism: UnaryEncoding):
        super().__init__(workload)
        self._mechanism = mechanism
        self._marginals: List[int] = workload.domain.all_marginals(
            workload.max_width
        )
        self._cells = 1 << workload.max_width
        self._sums = np.zeros((len(self._marginals), self._cells), dtype=np.float64)
        self._counts = np.zeros(len(self._marginals), dtype=np.int64)

    def _ingest(self, reports: MargRRReports) -> None:
        choices = np.asarray(reports.choices, dtype=np.int64)
        bits = np.asarray(reports.cell_bits)
        size = len(self._marginals)
        for cell in range(self._cells):
            self._sums[:, cell] += np.bincount(
                choices, weights=bits[:, cell], minlength=size
            )
        self._counts += np.bincount(choices, minlength=size)

    def _absorb(self, other: "MargRRAccumulator") -> None:
        self._sums += other._sums
        self._counts += other._counts

    def _export_state(self):
        return {"sums": self._sums.copy(), "counts": self._counts.copy()}

    def _import_state(self, state) -> None:
        self._sums = take_state_array(state, "sums", self._sums.shape, np.float64)
        self._counts = take_state_array(
            state, "counts", self._counts.shape, np.int64
        )

    def _merge_signature(self):
        return self._mechanism

    def finalize(self) -> PerMarginalEstimator:
        self._require_reports()
        tables: Dict[int, np.ndarray] = {}
        for position, beta in enumerate(self._marginals):
            if self._counts[position] == 0:
                # Nobody sampled this marginal; fall back to the uniform prior.
                tables[beta] = np.full(self._cells, 1.0 / self._cells)
                continue
            tables[beta] = self._mechanism.unbias_sums(
                self._sums[position], int(self._counts[position])
            )
        return PerMarginalEstimator(self._workload, tables)


class MargRR(MarginalReleaseProtocol):
    """Parallel RR on a randomly sampled k-way marginal."""

    name = "MargRR"

    def __init__(
        self,
        budget: PrivacyBudget,
        max_width: int,
        optimized_probabilities: bool = True,
    ):
        super().__init__(budget, max_width)
        self._optimized = bool(optimized_probabilities)

    @property
    def optimized_probabilities(self) -> bool:
        return self._optimized

    def spec_options(self):
        return {"optimized_probabilities": self._optimized}

    def mechanism(self) -> UnaryEncoding:
        """The per-cell perturbation applied to the sampled marginal."""
        return UnaryEncoding.from_budget(self.budget, optimized=self._optimized)

    def encode_batch(self, records, rng: RngLike = None) -> MargRRReports:
        generator = ensure_rng(rng)
        records = as_record_matrix(records)
        marginals = bitops.masks_of_weight(records.shape[1], self.max_width)
        cells = 1 << self.max_width

        indices = record_indices(records)
        choices = generator.integers(0, len(marginals), size=indices.shape[0])
        user_cells = sampled_marginal_cells(indices, choices, marginals)
        # Perturb every cell of the sampled marginal with PRR.
        cell_bits = self.mechanism().perturb_onehot_indices(
            user_cells, cells, rng=generator
        )
        return MargRRReports(choices=choices, cell_bits=cell_bits)

    def accumulator(self, domain: Domain) -> MargRRAccumulator:
        return MargRRAccumulator(self.workload_for(domain), self.mechanism())

    def communication_bits(self, dimension: int) -> int:
        """``d`` bits to name the marginal plus ``2^k`` perturbed cells."""
        return dimension + (1 << self.max_width)
