"""MargRR — parallel randomized response on one randomly sampled marginal.

Each user samples one of the ``C(d, k)`` k-way marginals uniformly,
materialises their (one-hot, size ``2^k``) contribution to it, perturbs every
cell with parallel randomized response, and sends the marginal identity plus
the perturbed cells (``d + 2^k`` bits).  The aggregator groups reports by
sampled marginal, averages and de-biases them per cell.

Table 2 summary: error behaviour ``2^k d^{k/2} / (eps sqrt(N))``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import bitops
from ..core.exceptions import AggregationError
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..datasets.base import BinaryDataset
from ..mechanisms.unary_encoding import UnaryEncoding
from .base import MarginalReleaseProtocol, PerMarginalEstimator

__all__ = ["MargRR"]


class MargRR(MarginalReleaseProtocol):
    """Parallel RR on a randomly sampled k-way marginal."""

    name = "MargRR"

    def __init__(
        self,
        budget: PrivacyBudget,
        max_width: int,
        optimized_probabilities: bool = True,
    ):
        super().__init__(budget, max_width)
        self._optimized = bool(optimized_probabilities)

    @property
    def optimized_probabilities(self) -> bool:
        return self._optimized

    def mechanism(self) -> UnaryEncoding:
        """The per-cell perturbation applied to the sampled marginal."""
        return UnaryEncoding.from_budget(self.budget, optimized=self._optimized)

    def run(self, dataset: BinaryDataset, rng: RngLike = None) -> PerMarginalEstimator:
        generator = ensure_rng(rng)
        workload = self.workload_for(dataset.domain)
        mechanism = self.mechanism()

        marginals: List[int] = dataset.domain.all_marginals(self.max_width)
        marginal_array = np.asarray(marginals, dtype=np.int64)
        cells = 1 << self.max_width

        indices = dataset.indices()
        n = indices.shape[0]
        choices = generator.integers(0, marginal_array.size, size=n)
        sampled_betas = marginal_array[choices]

        # Each user's one-hot cell within their sampled marginal.
        user_cells = np.empty(n, dtype=np.int64)
        for position, beta in enumerate(marginals):
            members = choices == position
            if members.any():
                user_cells[members] = bitops.compress_indices(
                    indices[members] & beta, beta
                )

        # Perturb every cell of the sampled marginal with PRR, then accumulate
        # per-marginal bit sums and per-marginal user counts.
        reports = mechanism.perturb_onehot_indices(user_cells, cells, rng=generator)
        sums = np.zeros((marginal_array.size, cells), dtype=np.float64)
        counts = np.zeros(marginal_array.size, dtype=np.int64)
        np.add.at(sums, choices, reports.astype(np.float64))
        np.add.at(counts, choices, 1)

        tables: Dict[int, np.ndarray] = {}
        for position, beta in enumerate(marginals):
            if counts[position] == 0:
                # Nobody sampled this marginal; fall back to the uniform prior.
                tables[beta] = np.full(cells, 1.0 / cells)
                continue
            observed_mean = sums[position] / counts[position]
            tables[beta] = mechanism.unbias_mean(observed_mean)
        return PerMarginalEstimator(workload, tables)

    def communication_bits(self, dimension: int) -> int:
        """``d`` bits to name the marginal plus ``2^k`` perturbed cells."""
        return dimension + (1 << self.max_width)
