"""InpRR — parallel randomized response on the full input vector.

Each user one-hot encodes their record over ``{0,1}^d`` and perturbs every
one of the ``2^d`` cells with per-bit randomized response (vanilla eps/2
symmetric RR or Wang et al.'s optimised probabilities).  The aggregator
averages the reports, de-biases each cell, and obtains any marginal by
aggregating the reconstructed distribution.

Table 2 summary: communication ``2^d`` bits per user, error behaviour
``2^{k/2} 2^d / (eps sqrt(N))`` — simple and accurate for small ``d`` but the
cost and error blow up exponentially with the number of attributes.
"""

from __future__ import annotations

import numpy as np

from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..datasets.base import BinaryDataset
from ..mechanisms.unary_encoding import UnaryEncoding
from .base import DistributionEstimator, MarginalReleaseProtocol

__all__ = ["InpRR"]


class InpRR(MarginalReleaseProtocol):
    """Parallel randomized response applied to the one-hot encoded input."""

    name = "InpRR"

    def __init__(
        self,
        budget: PrivacyBudget,
        max_width: int,
        optimized_probabilities: bool = True,
    ):
        super().__init__(budget, max_width)
        self._optimized = bool(optimized_probabilities)

    @property
    def optimized_probabilities(self) -> bool:
        """Whether Wang et al.'s OUE probabilities are used (paper's default)."""
        return self._optimized

    def mechanism(self) -> UnaryEncoding:
        """The per-bit perturbation mechanism at this protocol's budget."""
        return UnaryEncoding.from_budget(self.budget, optimized=self._optimized)

    def run(self, dataset: BinaryDataset, rng: RngLike = None) -> DistributionEstimator:
        generator = ensure_rng(rng)
        workload = self.workload_for(dataset.domain)
        mechanism = self.mechanism()

        # Only the per-cell sums of the perturbed one-hot matrix matter for
        # aggregation, so they are sampled directly (O(2^d) memory) instead
        # of materialising the N x 2^d report matrix.
        true_counts = np.bincount(dataset.indices(), minlength=dataset.domain.size)
        report_sums = mechanism.simulate_onehot_report_sums(
            true_counts, dataset.size, rng=generator
        )
        distribution = mechanism.unbias_mean(report_sums / dataset.size)
        return DistributionEstimator(workload, distribution)

    def communication_bits(self, dimension: int) -> int:
        """Each user sends the whole perturbed one-hot vector: ``2^d`` bits."""
        return 1 << dimension
