"""InpRR — parallel randomized response on the full input vector.

Each user one-hot encodes their record over ``{0,1}^d`` and perturbs every
one of the ``2^d`` cells with per-bit randomized response (vanilla eps/2
symmetric RR or Wang et al.'s optimised probabilities).  The aggregator
averages the reports, de-biases each cell, and obtains any marginal by
aggregating the reconstructed distribution.

Table 2 summary: communication ``2^d`` bits per user, error behaviour
``2^{k/2} 2^d / (eps sqrt(N))`` — simple and accurate for small ``d`` but the
cost and error blow up exponentially with the number of attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.domain import Domain
from ..core.exceptions import AggregationError
from ..core.marginals import MarginalWorkload
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..mechanisms.unary_encoding import UnaryEncoding
from .base import (
    Accumulator,
    DistributionEstimator,
    MarginalReleaseProtocol,
    as_record_matrix,
    record_indices,
    take_state_array,
)
from .wire import ReportField, WireCodableReports, register_report_schema

__all__ = ["InpRR", "InpRRReports", "InpRRAccumulator"]


@dataclass(frozen=True)
class InpRRReports(WireCodableReports):
    """One encoded batch: per-cell sums of the perturbed one-hot bits.

    Only the column sums of the ``n x 2^d`` report matrix matter for
    aggregation, so the client-side simulation samples them directly
    (``O(2^d)`` memory per batch, see
    :meth:`UnaryEncoding.simulate_onehot_report_sums`).
    """

    report_sums: np.ndarray
    num_users: int


register_report_schema(
    "InpRR",
    InpRRReports,
    fields=(ReportField("report_sums", np.float64, per_user=False),),
    scalar_fields=("num_users",),
)


class InpRRAccumulator(Accumulator):
    """Mergeable per-cell bit sums over ``{0,1}^d``."""

    def __init__(self, workload: MarginalWorkload, mechanism: UnaryEncoding):
        super().__init__(workload)
        self._mechanism = mechanism
        self._sums = np.zeros(workload.domain.size, dtype=np.float64)

    def _ingest(self, reports: InpRRReports) -> None:
        sums = np.asarray(reports.report_sums, dtype=np.float64)
        if sums.shape != self._sums.shape:
            raise AggregationError(
                f"report sums must have shape {self._sums.shape}, got {sums.shape}"
            )
        self._sums += sums

    def _absorb(self, other: "InpRRAccumulator") -> None:
        self._sums += other._sums

    def _export_state(self):
        return {"sums": self._sums.copy()}

    def _import_state(self, state) -> None:
        self._sums = take_state_array(
            state, "sums", self._sums.shape, np.float64
        )

    def _merge_signature(self):
        return self._mechanism

    def finalize(self) -> DistributionEstimator:
        total = self._require_reports()
        distribution = self._mechanism.unbias_sums(self._sums, total)
        return DistributionEstimator(self._workload, distribution)


class InpRR(MarginalReleaseProtocol):
    """Parallel randomized response applied to the one-hot encoded input."""

    name = "InpRR"

    def __init__(
        self,
        budget: PrivacyBudget,
        max_width: int,
        optimized_probabilities: bool = True,
    ):
        super().__init__(budget, max_width)
        self._optimized = bool(optimized_probabilities)

    @property
    def optimized_probabilities(self) -> bool:
        """Whether Wang et al.'s OUE probabilities are used (paper's default)."""
        return self._optimized

    def spec_options(self):
        return {"optimized_probabilities": self._optimized}

    def mechanism(self) -> UnaryEncoding:
        """The per-bit perturbation mechanism at this protocol's budget."""
        return UnaryEncoding.from_budget(self.budget, optimized=self._optimized)

    def encode_batch(self, records, rng: RngLike = None) -> InpRRReports:
        generator = ensure_rng(rng)
        records = as_record_matrix(records)
        true_counts = np.bincount(
            record_indices(records), minlength=1 << records.shape[1]
        )
        report_sums = self.mechanism().simulate_onehot_report_sums(
            true_counts, records.shape[0], rng=generator
        )
        return InpRRReports(report_sums=report_sums, num_users=records.shape[0])

    def accumulator(self, domain: Domain) -> InpRRAccumulator:
        return InpRRAccumulator(self.workload_for(domain), self.mechanism())

    def communication_bits(self, dimension: int) -> int:
        """Each user sends the whole perturbed one-hot vector: ``2^d`` bits."""
        return 1 << dimension
