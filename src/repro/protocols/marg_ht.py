"""MargHT — randomized response on a Hadamard coefficient of a sampled marginal.

Each user samples one of the ``C(d, k)`` k-way marginals uniformly, takes the
Hadamard transform of their (one-hot, size ``2^k``) contribution to it,
samples one of its ``2^k - 1`` non-constant coefficients, and reports the
coefficient's +/-1 value through full-budget sign randomized response
(``d + k + 1`` bits per user).  The aggregator estimates every coefficient of
every k-way marginal and reconstructs the tables.

Unlike ``InpHT`` this method does not share information between marginals —
the coefficient ``alpha`` of marginal ``beta`` is estimated only from the
users who sampled ``beta`` — which is why its bound carries the extra
``(2d)^{k/2}``-style factor (Table 2: ``2^{3k/2} d^{k/2} / (eps sqrt(N))``).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import bitops
from ..core.hadamard import fwht
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..datasets.base import BinaryDataset
from ..mechanisms.randomized_response import SignRandomizedResponse
from .base import MarginalReleaseProtocol, PerMarginalEstimator

__all__ = ["MargHT"]


class MargHT(MarginalReleaseProtocol):
    """Sampled-Hadamard-coefficient release on a sampled k-way marginal."""

    name = "MargHT"

    def mechanism(self) -> SignRandomizedResponse:
        return SignRandomizedResponse.from_budget(self.budget)

    def run(self, dataset: BinaryDataset, rng: RngLike = None) -> PerMarginalEstimator:
        generator = ensure_rng(rng)
        workload = self.workload_for(dataset.domain)
        mechanism = self.mechanism()

        marginals: List[int] = dataset.domain.all_marginals(self.max_width)
        marginal_array = np.asarray(marginals, dtype=np.int64)
        k = self.max_width
        cells = 1 << k

        indices = dataset.indices()
        n = indices.shape[0]
        marginal_choices = generator.integers(0, marginal_array.size, size=n)
        # Sample a non-constant coefficient of the size-2^k marginal: indices
        # 1 .. 2^k - 1 in the compact coefficient space (Theta_0 = 1 is known).
        coefficient_choices = generator.integers(1, cells, size=n, dtype=np.int64)

        # The user's compact cell inside their sampled marginal.
        user_cells = np.empty(n, dtype=np.int64)
        for position, beta in enumerate(marginals):
            members = marginal_choices == position
            if members.any():
                user_cells[members] = bitops.compress_indices(
                    indices[members] & beta, beta
                )

        # Scaled coefficient value of a one-hot marginal: (-1)^{<alpha, cell>}.
        true_values = bitops.inner_product_sign(
            user_cells, coefficient_choices
        ).astype(np.float64)
        noisy_values = mechanism.perturb(true_values, rng=generator)

        # Accumulate per (marginal, coefficient) sums and counts.
        flat = marginal_choices * cells + coefficient_choices
        sums = np.zeros(marginal_array.size * cells, dtype=np.float64)
        counts = np.zeros(marginal_array.size * cells, dtype=np.int64)
        np.add.at(sums, flat, noisy_values)
        np.add.at(counts, flat, 1)
        sums = sums.reshape(marginal_array.size, cells)
        counts = counts.reshape(marginal_array.size, cells)

        tables: Dict[int, np.ndarray] = {}
        for position, beta in enumerate(marginals):
            coefficients = np.zeros(cells, dtype=np.float64)
            coefficients[0] = 1.0
            seen = counts[position] > 0
            seen[0] = False
            if seen.any():
                means = np.zeros(cells, dtype=np.float64)
                means[seen] = sums[position][seen] / counts[position][seen]
                coefficients[seen] = mechanism.unbias_mean(means[seen])
            # Reconstruct the marginal from its compact coefficient vector.
            tables[beta] = fwht(coefficients) / cells
        return PerMarginalEstimator(workload, tables)

    def communication_bits(self, dimension: int) -> int:
        """``d`` bits for the marginal, ``k`` for the coefficient, 1 for its value."""
        return dimension + self.max_width + 1
