"""MargHT — randomized response on a Hadamard coefficient of a sampled marginal.

Each user samples one of the ``C(d, k)`` k-way marginals uniformly, takes the
Hadamard transform of their (one-hot, size ``2^k``) contribution to it,
samples one of its ``2^k - 1`` non-constant coefficients, and reports the
coefficient's +/-1 value through full-budget sign randomized response
(``d + k + 1`` bits per user).  The aggregator estimates every coefficient of
every k-way marginal and reconstructs the tables.

Unlike ``InpHT`` this method does not share information between marginals —
the coefficient ``alpha`` of marginal ``beta`` is estimated only from the
users who sampled ``beta`` — which is why its bound carries the extra
``(2d)^{k/2}``-style factor (Table 2: ``2^{3k/2} d^{k/2} / (eps sqrt(N))``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core import bitops
from ..core.domain import Domain
from ..core.hadamard import fwht_rows
from ..core.marginals import MarginalWorkload
from ..core.rng import RngLike, ensure_rng
from ..mechanisms.randomized_response import SignRandomizedResponse
from .base import (
    Accumulator,
    MarginalReleaseProtocol,
    PerMarginalEstimator,
    as_record_matrix,
    record_indices,
    sampled_marginal_cells,
    take_state_array,
)
from .wire import ReportField, WireCodableReports, register_report_schema

__all__ = ["MargHT", "MargHTReports", "MargHTAccumulator"]


@dataclass(frozen=True)
class MargHTReports(WireCodableReports):
    """One encoded batch: sampled (marginal, coefficient) pairs + noisy signs."""

    marginal_choices: np.ndarray
    coefficient_choices: np.ndarray
    noisy_values: np.ndarray

    @property
    def num_users(self) -> int:
        return int(self.marginal_choices.shape[0])


register_report_schema(
    "MargHT",
    MargHTReports,
    fields=(
        ReportField("marginal_choices", np.int64),
        ReportField("coefficient_choices", np.int64),
        ReportField("noisy_values", np.float64),
    ),
)


class MargHTAccumulator(Accumulator):
    """Mergeable per-(marginal, coefficient) sign sums and report counts."""

    def __init__(self, workload: MarginalWorkload, mechanism: SignRandomizedResponse):
        super().__init__(workload)
        self._mechanism = mechanism
        self._marginals: List[int] = workload.domain.all_marginals(
            workload.max_width
        )
        self._cells = 1 << workload.max_width
        shape = (len(self._marginals), self._cells)
        self._sums = np.zeros(shape, dtype=np.float64)
        self._counts = np.zeros(shape, dtype=np.int64)

    def _ingest(self, reports: MargHTReports) -> None:
        marginal_choices = np.asarray(reports.marginal_choices, dtype=np.int64)
        coefficient_choices = np.asarray(reports.coefficient_choices, dtype=np.int64)
        flat = marginal_choices * self._cells + coefficient_choices
        length = len(self._marginals) * self._cells
        self._sums += np.bincount(
            flat, weights=reports.noisy_values, minlength=length
        ).reshape(self._sums.shape)
        self._counts += np.bincount(flat, minlength=length).reshape(
            self._counts.shape
        )

    def _absorb(self, other: "MargHTAccumulator") -> None:
        self._sums += other._sums
        self._counts += other._counts

    def _export_state(self):
        return {"sums": self._sums.copy(), "counts": self._counts.copy()}

    def _import_state(self, state) -> None:
        self._sums = take_state_array(state, "sums", self._sums.shape, np.float64)
        self._counts = take_state_array(
            state, "counts", self._counts.shape, np.int64
        )

    def _merge_signature(self):
        return self._mechanism

    def finalize(self) -> PerMarginalEstimator:
        self._require_reports()
        # De-bias every (marginal, coefficient) cell in one shot — the
        # unbiasing is elementwise — then reconstruct all C(d, k) tables with
        # a single batched inverse transform over the coefficient rows.
        coefficients = np.zeros(self._sums.shape, dtype=np.float64)
        coefficients[:, 0] = 1.0
        seen = self._counts > 0
        seen[:, 0] = False
        unbiased = self._mechanism.unbias_sums(self._sums, self._counts)
        coefficients[seen] = unbiased[seen]
        reconstructed = fwht_rows(coefficients) / self._cells
        tables: Dict[int, np.ndarray] = {
            beta: reconstructed[position]
            for position, beta in enumerate(self._marginals)
        }
        return PerMarginalEstimator(self._workload, tables)


class MargHT(MarginalReleaseProtocol):
    """Sampled-Hadamard-coefficient release on a sampled k-way marginal."""

    name = "MargHT"

    def mechanism(self) -> SignRandomizedResponse:
        return SignRandomizedResponse.from_budget(self.budget)

    def encode_batch(self, records, rng: RngLike = None) -> MargHTReports:
        generator = ensure_rng(rng)
        records = as_record_matrix(records)
        marginals = bitops.masks_of_weight(records.shape[1], self.max_width)
        cells = 1 << self.max_width

        indices = record_indices(records)
        n = indices.shape[0]
        marginal_choices = generator.integers(0, len(marginals), size=n)
        # Sample a non-constant coefficient of the size-2^k marginal: indices
        # 1 .. 2^k - 1 in the compact coefficient space (Theta_0 = 1 is known).
        coefficient_choices = generator.integers(1, cells, size=n, dtype=np.int64)

        user_cells = sampled_marginal_cells(indices, marginal_choices, marginals)
        # Scaled coefficient value of a one-hot marginal: (-1)^{<alpha, cell>}.
        true_values = bitops.inner_product_sign(
            user_cells, coefficient_choices
        ).astype(np.float64)
        noisy_values = self.mechanism().perturb(true_values, rng=generator)
        return MargHTReports(
            marginal_choices=marginal_choices,
            coefficient_choices=coefficient_choices,
            noisy_values=noisy_values,
        )

    def accumulator(self, domain: Domain) -> MargHTAccumulator:
        return MargHTAccumulator(self.workload_for(domain), self.mechanism())

    def communication_bits(self, dimension: int) -> int:
        """``d`` bits for the marginal, ``k`` for the coefficient, 1 for its value."""
        return dimension + self.max_width + 1
