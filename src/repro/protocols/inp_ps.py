"""InpPS — preferential sampling (generalised RR) on the full input index.

Each user reports a single index in ``{0,1}^d``: their true one-hot position
with probability ``p_s = e^eps / (e^eps + 2^d - 1)`` and a uniformly random
other index otherwise.  The aggregator unbiases the histogram of reported
indices into an estimate of the full distribution and aggregates it into
marginals.

Table 2 summary: communication ``d`` bits per user, error behaviour
``2^{k/2} 2^d / (eps sqrt(N))``.  The method degrades quickly with ``d``
because the probability of reporting the true index collapses once ``2^d``
dwarfs ``e^eps`` — exactly the behaviour the paper's Figure 4 documents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.domain import Domain
from ..core.marginals import MarginalWorkload
from ..core.rng import RngLike, ensure_rng
from ..mechanisms.direct_encoding import DirectEncoding
from .base import (
    Accumulator,
    DistributionEstimator,
    MarginalReleaseProtocol,
    as_record_matrix,
    record_indices,
    take_state_array,
)
from .wire import ReportField, WireCodableReports, register_report_schema

__all__ = ["InpPS", "InpPSReports", "InpPSAccumulator"]


@dataclass(frozen=True)
class InpPSReports(WireCodableReports):
    """One encoded batch: each user's noisy one-hot index in ``{0,1}^d``."""

    noisy_indices: np.ndarray

    @property
    def num_users(self) -> int:
        return int(self.noisy_indices.shape[0])


register_report_schema(
    "InpPS",
    InpPSReports,
    fields=(ReportField("noisy_indices", np.int64),),
)


class InpPSAccumulator(Accumulator):
    """Mergeable histogram of reported indices over ``{0,1}^d``."""

    def __init__(self, workload: MarginalWorkload, mechanism: DirectEncoding):
        super().__init__(workload)
        self._mechanism = mechanism
        self._counts = np.zeros(workload.domain.size, dtype=np.int64)

    def _ingest(self, reports: InpPSReports) -> None:
        self._counts += self._mechanism.count_reports(reports.noisy_indices)

    def _absorb(self, other: "InpPSAccumulator") -> None:
        self._counts += other._counts

    def _export_state(self):
        return {"counts": self._counts.copy()}

    def _import_state(self, state) -> None:
        self._counts = take_state_array(
            state, "counts", self._counts.shape, np.int64
        )

    def _merge_signature(self):
        return self._mechanism

    def finalize(self) -> DistributionEstimator:
        total = self._require_reports()
        distribution = self._mechanism.unbias_counts(self._counts, total)
        return DistributionEstimator(self._workload, distribution)


class InpPS(MarginalReleaseProtocol):
    """Preferential sampling applied to the full-domain one-hot index."""

    name = "InpPS"

    def mechanism(self, dimension: int) -> DirectEncoding:
        """The generalised-RR mechanism over the full domain ``{0,1}^d``."""
        return DirectEncoding.from_budget(self.budget, 1 << dimension)

    def encode_batch(self, records, rng: RngLike = None) -> InpPSReports:
        generator = ensure_rng(rng)
        records = as_record_matrix(records)
        mechanism = self.mechanism(records.shape[1])
        noisy = mechanism.perturb(record_indices(records), rng=generator)
        return InpPSReports(noisy_indices=noisy)

    def accumulator(self, domain: Domain) -> InpPSAccumulator:
        return InpPSAccumulator(
            self.workload_for(domain), self.mechanism(domain.dimension)
        )

    def communication_bits(self, dimension: int) -> int:
        """Each user sends one index from ``{0,1}^d``: ``d`` bits."""
        return dimension
