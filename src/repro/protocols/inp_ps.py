"""InpPS — preferential sampling (generalised RR) on the full input index.

Each user reports a single index in ``{0,1}^d``: their true one-hot position
with probability ``p_s = e^eps / (e^eps + 2^d - 1)`` and a uniformly random
other index otherwise.  The aggregator unbiases the histogram of reported
indices into an estimate of the full distribution and aggregates it into
marginals.

Table 2 summary: communication ``d`` bits per user, error behaviour
``2^{k/2} 2^d / (eps sqrt(N))``.  The method degrades quickly with ``d``
because the probability of reporting the true index collapses once ``2^d``
dwarfs ``e^eps`` — exactly the behaviour the paper's Figure 4 documents.
"""

from __future__ import annotations

from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..datasets.base import BinaryDataset
from ..mechanisms.direct_encoding import DirectEncoding
from .base import DistributionEstimator, MarginalReleaseProtocol

__all__ = ["InpPS"]


class InpPS(MarginalReleaseProtocol):
    """Preferential sampling applied to the full-domain one-hot index."""

    name = "InpPS"

    def mechanism(self, dimension: int) -> DirectEncoding:
        """The generalised-RR mechanism over the full domain ``{0,1}^d``."""
        return DirectEncoding.from_budget(self.budget, 1 << dimension)

    def run(self, dataset: BinaryDataset, rng: RngLike = None) -> DistributionEstimator:
        generator = ensure_rng(rng)
        workload = self.workload_for(dataset.domain)
        mechanism = self.mechanism(dataset.dimension)

        reports = mechanism.perturb(dataset.indices(), rng=generator)
        distribution = mechanism.estimate_frequencies(reports)
        return DistributionEstimator(workload, distribution)

    def communication_bits(self, dimension: int) -> int:
        """Each user sends one index from ``{0,1}^d``: ``d`` bits."""
        return dimension
