"""Name-based construction of protocols.

Experiments and benchmarks refer to protocols by the short names the paper
uses (``"InpHT"``, ``"MargPS"``, ...).  The registry maps those names to the
implementing classes and provides a single factory,
:func:`make_protocol`, that the experiment harness uses to build comparable
instances from a configuration.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..core.privacy import PrivacyBudget
from .base import MarginalReleaseProtocol
from .inp_em import InpEM
from .inp_ht import InpHT
from .inp_htcms import InpHTCMS
from .inp_olh import InpOLH
from .inp_ps import InpPS
from .inp_rr import InpRR
from .marg_ht import MargHT
from .marg_ps import MargPS
from .marg_rr import MargRR

# Imported last: the heavy-hitter protocol composes the oracle protocols
# above (see repro.heavyhitters.__init__ for how the cycle is broken).
from ..heavyhitters.protocol import HeavyHitters

__all__ = [
    "PROTOCOL_CLASSES",
    "CORE_PROTOCOL_NAMES",
    "BASELINE_PROTOCOL_NAMES",
    "DISCOVERY_PROTOCOL_NAMES",
    "available_protocols",
    "make_protocol",
]

#: All protocol classes keyed by their paper name.
PROTOCOL_CLASSES: Dict[str, Type[MarginalReleaseProtocol]] = {
    cls.name: cls
    for cls in (
        InpRR,
        InpPS,
        InpHT,
        MargRR,
        MargPS,
        MargHT,
        InpEM,
        InpOLH,
        InpHTCMS,
        HeavyHitters,
    )
}

#: The six protocols the paper contributes (Sections 4.2 and 4.3).
CORE_PROTOCOL_NAMES: List[str] = [
    "InpRR",
    "InpPS",
    "InpHT",
    "MargRR",
    "MargPS",
    "MargHT",
]

#: The comparison methods from prior work (Section 4.4 and Appendix B.2).
BASELINE_PROTOCOL_NAMES: List[str] = ["InpEM", "InpOLH", "InpHTCMS"]

#: Discovery workloads layered on the oracles (``repro.heavyhitters``).
DISCOVERY_PROTOCOL_NAMES: List[str] = ["HH"]


def available_protocols() -> List[str]:
    """Names of every registered protocol."""
    return sorted(PROTOCOL_CLASSES)


def make_protocol(
    name: str,
    budget: PrivacyBudget | float,
    max_width: int,
    **options,
) -> MarginalReleaseProtocol:
    """Instantiate a protocol by its paper name.

    ``options`` are forwarded to the protocol constructor, so callers can
    pass e.g. ``optimized_probabilities=False`` for ``InpRR`` or
    ``width=512`` for ``InpHTCMS``.  This is a thin wrapper over
    :meth:`repro.service.ProtocolSpec.build`, so unknown protocol names and
    unknown options raise :class:`ProtocolConfigurationError` naming the
    protocol and the offending keys.
    """
    from ..service.spec import ProtocolSpec

    if not isinstance(budget, PrivacyBudget):
        budget = PrivacyBudget(float(budget))
    return ProtocolSpec(
        protocol=name,
        epsilon=budget.epsilon,
        max_width=max_width,
        options=options,
    ).build()
