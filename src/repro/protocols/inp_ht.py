"""InpHT — randomized response on a sampled Hadamard coefficient of the input.

The paper's preferred protocol.  By Lemma 3.7 every marginal of width at most
``k`` is a linear combination of the Hadamard coefficients whose index has at
most ``k`` set bits, so only ``|T| = sum_{l=1..k} C(d, l)`` coefficients need
to be estimated (the constant coefficient ``Theta_0 = 1`` is known exactly).

Client: sample one coefficient index ``alpha`` from ``T`` uniformly, compute
the user's scaled coefficient value ``(-1)^{<alpha, j_i>}`` and report it
through full-budget sign randomized response together with ``alpha``
(``d + 1`` bits in total).

Aggregator: average the reports per coefficient, divide by the RR attenuation
``2p - 1``, and reconstruct any requested marginal from its ``2^k``
coefficients.

Table 2 summary: communication ``d + 1`` bits, error behaviour
``2^{k/2} sqrt(|T|) / (eps sqrt(N)) = O(2^{k/2} d^{k/2})`` — exponentially
better in ``d`` than the other input-based methods for small ``k``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.exceptions import AggregationError
from ..core.hadamard import coefficient_index_set, user_coefficient_values
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..datasets.base import BinaryDataset
from ..mechanisms.randomized_response import SignRandomizedResponse
from .base import CoefficientEstimator, MarginalReleaseProtocol

__all__ = ["InpHT"]


class InpHT(MarginalReleaseProtocol):
    """Sampled-Hadamard-coefficient release on the full input."""

    name = "InpHT"

    def mechanism(self) -> SignRandomizedResponse:
        """The full-budget sign-RR applied to the sampled coefficient."""
        return SignRandomizedResponse.from_budget(self.budget)

    def coefficient_indices(self, dimension: int) -> np.ndarray:
        """The sampled-from coefficient set ``T = {alpha : 1 <= |alpha| <= k}``."""
        return coefficient_index_set(dimension, self.max_width)

    def run(self, dataset: BinaryDataset, rng: RngLike = None) -> CoefficientEstimator:
        generator = ensure_rng(rng)
        workload = self.workload_for(dataset.domain)
        mechanism = self.mechanism()

        alphas = self.coefficient_indices(dataset.dimension)
        if alphas.size == 0:
            raise AggregationError("the coefficient set T is empty")

        indices = dataset.indices()
        n = indices.shape[0]
        # Each user samples one coefficient index uniformly from T.
        choices = generator.integers(0, alphas.size, size=n)
        sampled_alphas = alphas[choices]
        true_values = user_coefficient_values(indices, sampled_alphas)
        noisy_values = mechanism.perturb(true_values, rng=generator)

        # Aggregate: per-coefficient mean of the users who sampled it,
        # de-biased by the RR attenuation.  Coefficients nobody sampled are
        # estimated as 0 (their prior under a uniform distribution).
        sums = np.zeros(alphas.size, dtype=np.float64)
        counts = np.zeros(alphas.size, dtype=np.int64)
        np.add.at(sums, choices, noisy_values)
        np.add.at(counts, choices, 1)

        coefficients: Dict[int, float] = {}
        nonzero = counts > 0
        means = np.zeros(alphas.size, dtype=np.float64)
        means[nonzero] = sums[nonzero] / counts[nonzero]
        unbiased = mechanism.unbias_mean(means)
        for alpha, value, seen in zip(alphas, unbiased, nonzero):
            coefficients[int(alpha)] = float(value) if seen else 0.0
        return CoefficientEstimator(workload, coefficients)

    def communication_bits(self, dimension: int) -> int:
        """``d`` bits for the coefficient index plus 1 bit for its noisy value."""
        return dimension + 1
