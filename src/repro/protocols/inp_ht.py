"""InpHT — randomized response on a sampled Hadamard coefficient of the input.

The paper's preferred protocol.  By Lemma 3.7 every marginal of width at most
``k`` is a linear combination of the Hadamard coefficients whose index has at
most ``k`` set bits, so only ``|T| = sum_{l=1..k} C(d, l)`` coefficients need
to be estimated (the constant coefficient ``Theta_0 = 1`` is known exactly).

Client: sample one coefficient index ``alpha`` from ``T`` uniformly, compute
the user's scaled coefficient value ``(-1)^{<alpha, j_i>}`` and report it
through full-budget sign randomized response together with ``alpha``
(``d + 1`` bits in total).

Aggregator: average the reports per coefficient, divide by the RR attenuation
``2p - 1``, and reconstruct any requested marginal from its ``2^k``
coefficients.

Table 2 summary: communication ``d + 1`` bits, error behaviour
``2^{k/2} sqrt(|T|) / (eps sqrt(N)) = O(2^{k/2} d^{k/2})`` — exponentially
better in ``d`` than the other input-based methods for small ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.domain import Domain
from ..core.exceptions import AggregationError
from ..core.hadamard import coefficient_index_set, user_coefficient_values
from ..core.marginals import MarginalWorkload
from ..core.rng import RngLike, ensure_rng
from ..mechanisms.randomized_response import SignRandomizedResponse
from .base import (
    Accumulator,
    CoefficientEstimator,
    MarginalReleaseProtocol,
    as_record_matrix,
    record_indices,
    take_state_array,
)
from .wire import ReportField, WireCodableReports, register_report_schema

__all__ = ["InpHT", "InpHTReports", "InpHTAccumulator"]


@dataclass(frozen=True)
class InpHTReports(WireCodableReports):
    """One encoded batch: sampled coefficient positions and noisy values.

    ``choices[i]`` is user ``i``'s sampled position into the shared
    coefficient set ``T`` and ``noisy_values[i]`` the sign-RR-perturbed
    coefficient value in ``{-1, +1}``.
    """

    choices: np.ndarray
    noisy_values: np.ndarray

    @property
    def num_users(self) -> int:
        return int(self.choices.shape[0])


register_report_schema(
    "InpHT",
    InpHTReports,
    fields=(
        ReportField("choices", np.int64),
        ReportField("noisy_values", np.float64),
    ),
)


class InpHTAccumulator(Accumulator):
    """Mergeable per-coefficient sums and counts over the index set ``T``."""

    def __init__(
        self,
        workload: MarginalWorkload,
        mechanism: SignRandomizedResponse,
        alphas: np.ndarray,
    ):
        super().__init__(workload)
        self._mechanism = mechanism
        self._alphas = alphas
        self._sums = np.zeros(alphas.size, dtype=np.float64)
        self._counts = np.zeros(alphas.size, dtype=np.int64)

    def _ingest(self, reports: InpHTReports) -> None:
        choices = np.asarray(reports.choices, dtype=np.int64)
        if choices.size and (choices.min() < 0 or choices.max() >= self._alphas.size):
            raise AggregationError(
                f"coefficient choices must lie in [0, {self._alphas.size})"
            )
        self._sums += np.bincount(
            choices, weights=reports.noisy_values, minlength=self._alphas.size
        )
        self._counts += np.bincount(choices, minlength=self._alphas.size)

    def _absorb(self, other: "InpHTAccumulator") -> None:
        self._sums += other._sums
        self._counts += other._counts

    def _export_state(self):
        return {"sums": self._sums.copy(), "counts": self._counts.copy()}

    def _import_state(self, state) -> None:
        self._sums = take_state_array(state, "sums", self._sums.shape, np.float64)
        self._counts = take_state_array(
            state, "counts", self._counts.shape, np.int64
        )

    def _merge_signature(self):
        return self._mechanism

    def finalize(self) -> CoefficientEstimator:
        self._require_reports()
        # Per-coefficient mean of the users who sampled it, de-biased by the
        # RR attenuation.  Coefficients nobody sampled are estimated as 0
        # (their prior under a uniform distribution).
        seen = self._counts > 0
        unbiased = self._mechanism.unbias_sums(self._sums, self._counts)
        coefficients: Dict[int, float] = {}
        for alpha, value, sampled in zip(self._alphas, unbiased, seen):
            coefficients[int(alpha)] = float(value) if sampled else 0.0
        return CoefficientEstimator(self._workload, coefficients)


class InpHT(MarginalReleaseProtocol):
    """Sampled-Hadamard-coefficient release on the full input."""

    name = "InpHT"

    def mechanism(self) -> SignRandomizedResponse:
        """The full-budget sign-RR applied to the sampled coefficient."""
        return SignRandomizedResponse.from_budget(self.budget)

    def coefficient_indices(self, dimension: int) -> np.ndarray:
        """The sampled-from coefficient set ``T = {alpha : 1 <= |alpha| <= k}``."""
        return coefficient_index_set(dimension, self.max_width)

    def encode_batch(self, records, rng: RngLike = None) -> InpHTReports:
        generator = ensure_rng(rng)
        records = as_record_matrix(records)
        alphas = self.coefficient_indices(records.shape[1])
        if alphas.size == 0:
            raise AggregationError("the coefficient set T is empty")
        indices = record_indices(records)
        # Each user samples one coefficient index uniformly from T.
        choices = generator.integers(0, alphas.size, size=indices.shape[0])
        true_values = user_coefficient_values(indices, alphas[choices])
        noisy_values = self.mechanism().perturb(true_values, rng=generator)
        return InpHTReports(choices=choices, noisy_values=noisy_values)

    def accumulator(self, domain: Domain) -> InpHTAccumulator:
        return InpHTAccumulator(
            self.workload_for(domain),
            self.mechanism(),
            self.coefficient_indices(domain.dimension),
        )

    def communication_bits(self, dimension: int) -> int:
        """``d`` bits for the coefficient index plus 1 bit for its noisy value."""
        return dimension + 1
