"""Protocol and estimator interfaces shared by all marginal-release methods.

Every method in the paper follows the same life-cycle:

1. each user locally *perturbs* a view of their record (the client side),
2. the untrusted aggregator *aggregates* the reports into some global
   summary (a noisy full distribution, a set of Hadamard coefficients, or a
   collection of noisy marginals), and
3. any k-way marginal is *queried* on demand from that summary.

:class:`MarginalReleaseProtocol` captures steps 1–2 behind a single
``run(dataset, rng)`` call and step 3 behind the returned
:class:`MarginalEstimator`.  Three concrete estimator kinds cover the design
space:

* :class:`DistributionEstimator` — a reconstructed full distribution over
  ``{0,1}^d`` (``InpRR``, ``InpPS`` and the frequency-oracle baselines);
* :class:`CoefficientEstimator` — reconstructed low-order Hadamard
  coefficients (``InpHT``);
* :class:`PerMarginalEstimator` — directly reconstructed k-way marginal
  tables (``MargRR``, ``MargPS``, ``MargHT``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from ..core import bitops
from ..core.domain import Domain
from ..core.exceptions import (
    AggregationError,
    MarginalQueryError,
    ProtocolConfigurationError,
)
from ..core.hadamard import marginal_from_scaled_coefficients
from ..core.marginals import MarginalTable, MarginalWorkload, marginal_operator
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..datasets.base import BinaryDataset

__all__ = [
    "MarginalEstimator",
    "DistributionEstimator",
    "CoefficientEstimator",
    "PerMarginalEstimator",
    "MarginalReleaseProtocol",
]


class MarginalEstimator(abc.ABC):
    """Answers marginal queries from privately aggregated reports."""

    def __init__(self, workload: MarginalWorkload):
        self._workload = workload

    @property
    def workload(self) -> MarginalWorkload:
        """The set of marginals this estimator promises to answer."""
        return self._workload

    @property
    def domain(self) -> Domain:
        return self._workload.domain

    @abc.abstractmethod
    def query(self, beta) -> MarginalTable:
        """Estimate the marginal identified by ``beta`` (mask or names)."""

    def query_all(self, width: Optional[int] = None) -> Dict[int, MarginalTable]:
        """Estimate every marginal in the workload (optionally of one width)."""
        return {beta: self.query(beta) for beta in self._workload.marginals(width)}

    def _validate(self, beta) -> int:
        mask = self.domain.mask_of(beta)
        return self._workload.validate(mask)


class DistributionEstimator(MarginalEstimator):
    """Marginals obtained by aggregating a reconstructed full distribution."""

    def __init__(self, workload: MarginalWorkload, distribution: np.ndarray):
        super().__init__(workload)
        distribution = np.asarray(distribution, dtype=np.float64)
        if distribution.shape != (workload.domain.size,):
            raise AggregationError(
                f"reconstructed distribution must have length "
                f"{workload.domain.size}, got shape {distribution.shape}"
            )
        self._distribution = distribution

    @property
    def distribution(self) -> np.ndarray:
        """The reconstructed (possibly non-normalised / signed) distribution."""
        return self._distribution

    def query(self, beta) -> MarginalTable:
        mask = self._validate(beta)
        return marginal_operator(self._distribution, mask, self.domain)


class CoefficientEstimator(MarginalEstimator):
    """Marginals reconstructed from estimated scaled Hadamard coefficients."""

    def __init__(self, workload: MarginalWorkload, coefficients: Mapping[int, float]):
        super().__init__(workload)
        self._coefficients: Dict[int, float] = {0: 1.0}
        for alpha, value in coefficients.items():
            self._coefficients[int(alpha)] = float(value)

    @property
    def coefficients(self) -> Dict[int, float]:
        """Estimated scaled coefficients ``alpha -> Theta[alpha]`` (0 included)."""
        return dict(self._coefficients)

    def coefficient(self, alpha: int) -> float:
        try:
            return self._coefficients[int(alpha)]
        except KeyError:
            raise MarginalQueryError(
                f"coefficient {alpha:#x} was not collected by this protocol"
            ) from None

    def query(self, beta) -> MarginalTable:
        mask = self._validate(beta)
        needed = {}
        for alpha in bitops.submasks(mask):
            needed[alpha] = self.coefficient(alpha)
        values = marginal_from_scaled_coefficients(mask, needed)
        return MarginalTable(self.domain, mask, values)


class PerMarginalEstimator(MarginalEstimator):
    """Marginals estimated table-by-table (the ``Marg*`` protocols).

    ``tables`` maps each width-``k`` marginal mask to its estimated cell
    vector.  Queries of width exactly ``k`` are answered directly; narrower
    queries are answered by marginalising every stored superset table and
    averaging (each is an unbiased estimate, so the average only reduces
    variance).
    """

    def __init__(self, workload: MarginalWorkload, tables: Mapping[int, np.ndarray]):
        super().__init__(workload)
        if not tables:
            raise AggregationError("per-marginal estimator needs at least one table")
        self._tables: Dict[int, np.ndarray] = {}
        width = None
        for beta, values in tables.items():
            beta = int(beta)
            values = np.asarray(values, dtype=np.float64)
            k = bitops.popcount(beta)
            if width is None:
                width = k
            elif k != width:
                raise AggregationError(
                    "all stored tables must cover the same number of attributes"
                )
            if values.shape != (1 << k,):
                raise AggregationError(
                    f"table for marginal {beta:#x} must have {1 << k} cells, "
                    f"got shape {values.shape}"
                )
            self._tables[beta] = values
        self._table_width = int(width)

    @property
    def table_width(self) -> int:
        """Width of the directly materialised marginals."""
        return self._table_width

    @property
    def tables(self) -> Dict[int, np.ndarray]:
        return dict(self._tables)

    def query(self, beta) -> MarginalTable:
        mask = self._validate(beta)
        if mask in self._tables:
            return MarginalTable(self.domain, mask, self._tables[mask])
        width = bitops.popcount(mask)
        if width > self._table_width:
            raise MarginalQueryError(
                f"marginal of width {width} exceeds the materialised width "
                f"{self._table_width}"
            )
        supersets = [
            stored for stored in self._tables if bitops.is_subset(mask, stored)
        ]
        if not supersets:
            raise MarginalQueryError(
                f"no materialised marginal covers {self.domain.names_of(mask)}"
            )
        estimates = []
        for stored in supersets:
            table = MarginalTable(self.domain, stored, self._tables[stored])
            estimates.append(table.marginalize(mask).values)
        return MarginalTable(self.domain, mask, np.mean(estimates, axis=0))


class MarginalReleaseProtocol(abc.ABC):
    """A complete marginal-release method under epsilon-LDP.

    Parameters
    ----------
    budget:
        The per-user privacy budget; each user's single report satisfies
        ``budget.epsilon``-LDP.
    max_width:
        The workload parameter ``k``: after collection, every marginal over
        at most ``k`` attributes can be answered.
    """

    #: Short machine-readable name matching the paper (e.g. ``"InpHT"``).
    name: str = "abstract"

    def __init__(self, budget: PrivacyBudget, max_width: int):
        if not isinstance(budget, PrivacyBudget):
            budget = PrivacyBudget(float(budget))
        if max_width < 1:
            raise ProtocolConfigurationError(
                f"max marginal width must be >= 1, got {max_width}"
            )
        self._budget = budget
        self._max_width = int(max_width)

    @property
    def budget(self) -> PrivacyBudget:
        return self._budget

    @property
    def epsilon(self) -> float:
        return self._budget.epsilon

    @property
    def max_width(self) -> int:
        return self._max_width

    def workload_for(self, domain: Domain) -> MarginalWorkload:
        if self._max_width > domain.dimension:
            raise ProtocolConfigurationError(
                f"workload width {self._max_width} exceeds the domain's "
                f"{domain.dimension} attributes"
            )
        return MarginalWorkload(domain, self._max_width)

    @abc.abstractmethod
    def run(self, dataset: BinaryDataset, rng: RngLike = None) -> MarginalEstimator:
        """Simulate the whole protocol on a dataset and return the estimator."""

    @abc.abstractmethod
    def communication_bits(self, dimension: int) -> int:
        """Bits each user sends, as reported in Table 2 of the paper."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon:.3f}, "
            f"k={self.max_width})"
        )
