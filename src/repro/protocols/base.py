"""Protocol and estimator interfaces shared by all marginal-release methods.

Every method in the paper follows the same life-cycle:

1. each user locally *perturbs* a view of their record (the client side),
2. the untrusted aggregator *aggregates* the reports into some global
   summary (a noisy full distribution, a set of Hadamard coefficients, or a
   collection of noisy marginals), and
3. any k-way marginal is *queried* on demand from that summary.

:class:`MarginalReleaseProtocol` exposes that life-cycle as a streaming
pipeline:

* :meth:`~MarginalReleaseProtocol.encode_batch` — the client side, perturbing
  a whole batch of records into a protocol-specific report batch with
  vectorised NumPy operations;
* :class:`Accumulator` — the aggregator side: per-shard mergeable state fed
  through ``update(reports)``, combined associatively with ``merge(other)``;
* :meth:`Accumulator.finalize` — produces the protocol's
  :class:`MarginalEstimator`, behind which step 3 happens on demand.

``run(dataset, rng)`` remains as a one-shot convenience wrapper over the
pipeline, and :meth:`~MarginalReleaseProtocol.run_streaming` drives the same
pipeline over record batches spread across any number of shards.  Three
concrete estimator kinds cover the design space:

* :class:`DistributionEstimator` — a reconstructed full distribution over
  ``{0,1}^d`` (``InpRR``, ``InpPS`` and the frequency-oracle baselines);
* :class:`CoefficientEstimator` — reconstructed low-order Hadamard
  coefficients (``InpHT``);
* :class:`PerMarginalEstimator` — directly reconstructed k-way marginal
  tables (``MargRR``, ``MargPS``, ``MargHT``).
"""

from __future__ import annotations

import abc
import logging
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..core import bitops
from ..core.domain import Domain
from ..core.exceptions import (
    AggregationError,
    MarginalQueryError,
    ProtocolConfigurationError,
)
from ..core.hadamard import marginal_from_scaled_coefficients
from ..core.marginals import MarginalTable, MarginalWorkload, marginal_operator
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng, spawn_rngs
from ..datasets.base import BinaryDataset, record_indices

__all__ = [
    "MarginalEstimator",
    "DistributionEstimator",
    "CoefficientEstimator",
    "PerMarginalEstimator",
    "Accumulator",
    "MarginalReleaseProtocol",
    "as_record_matrix",
    "record_indices",
    "sampled_marginal_cells",
    "take_state_array",
]

_logger = logging.getLogger(__name__)


def take_state_array(
    state: Mapping[str, Any], key: str, shape, dtype
) -> np.ndarray:
    """Extract one validated array from an accumulator state dict.

    Shared by every accumulator's ``_import_state``: the field must be
    present and coerce to exactly the shape the freshly constructed
    accumulator expects, otherwise the state came from a differently
    configured protocol and loading it would corrupt the aggregation.
    """
    try:
        value = state[key]
    except KeyError:
        raise AggregationError(
            f"accumulator state is missing the field {key!r}"
        ) from None
    array = np.asarray(value, dtype=dtype)
    if array.shape != tuple(shape):
        raise AggregationError(
            f"accumulator state field {key!r} must have shape {tuple(shape)}, "
            f"got {array.shape}"
        )
    return array.copy()


def as_record_matrix(records) -> np.ndarray:
    """Coerce a :class:`BinaryDataset` or array-like into an ``(n, d)`` matrix.

    Client-side encoders accept either form so callers can stream raw record
    chunks without wrapping each one in a dataset object.
    """
    if isinstance(records, BinaryDataset):
        return records.records
    array = np.asarray(records)
    if array.ndim != 2:
        raise ProtocolConfigurationError(
            f"a record batch must be a 2-D (n, d) array, got shape {array.shape}"
        )
    return array


def sampled_marginal_cells(
    indices: np.ndarray, choices: np.ndarray, marginals: Sequence[int]
) -> np.ndarray:
    """Each user's compact cell within their sampled marginal.

    ``indices[i]`` is user ``i``'s one-hot position and ``choices[i]`` the
    position (into ``marginals``) of the k-way marginal that user sampled;
    the result is the user's cell index within that ``2^k``-cell table.
    """
    cells = np.empty(indices.shape[0], dtype=np.int64)
    for position, beta in enumerate(marginals):
        members = choices == position
        if members.any():
            cells[members] = bitops.compress_indices(indices[members] & beta, beta)
    return cells


class MarginalEstimator(abc.ABC):
    """Answers marginal queries from privately aggregated reports."""

    def __init__(self, workload: MarginalWorkload):
        self._workload = workload
        self._metadata: Dict[str, Any] = {}

    @property
    def workload(self) -> MarginalWorkload:
        """The set of marginals this estimator promises to answer."""
        return self._workload

    @property
    def metadata(self) -> Dict[str, Any]:
        """Provenance of the aggregation that produced this estimator.

        Populated by :meth:`MarginalReleaseProtocol.run_streaming` with the
        effective pipeline shape (``num_batches``, ``effective_shards``,
        executor backend, ...); empty for hand-driven accumulators.  The
        dict is live — drivers record into it after :meth:`finalize`.
        """
        return self._metadata

    @property
    def domain(self) -> Domain:
        return self._workload.domain

    @abc.abstractmethod
    def query(self, beta) -> MarginalTable:
        """Estimate the marginal identified by ``beta`` (mask or names)."""

    def query_all(self, width: Optional[int] = None) -> Dict[int, MarginalTable]:
        """Estimate every marginal in the workload (optionally of one width)."""
        return {beta: self.query(beta) for beta in self._workload.marginals(width)}

    def _validate(self, beta) -> int:
        mask = self.domain.mask_of(beta)
        return self._workload.validate(mask)


class DistributionEstimator(MarginalEstimator):
    """Marginals obtained by aggregating a reconstructed full distribution."""

    def __init__(self, workload: MarginalWorkload, distribution: np.ndarray):
        super().__init__(workload)
        distribution = np.asarray(distribution, dtype=np.float64)
        if distribution.shape != (workload.domain.size,):
            raise AggregationError(
                f"reconstructed distribution must have length "
                f"{workload.domain.size}, got shape {distribution.shape}"
            )
        self._distribution = distribution

    @property
    def distribution(self) -> np.ndarray:
        """The reconstructed (possibly non-normalised / signed) distribution."""
        return self._distribution

    def query(self, beta) -> MarginalTable:
        mask = self._validate(beta)
        return marginal_operator(self._distribution, mask, self.domain)


class CoefficientEstimator(MarginalEstimator):
    """Marginals reconstructed from estimated scaled Hadamard coefficients."""

    def __init__(self, workload: MarginalWorkload, coefficients: Mapping[int, float]):
        super().__init__(workload)
        self._coefficients: Dict[int, float] = {0: 1.0}
        for alpha, value in coefficients.items():
            self._coefficients[int(alpha)] = float(value)

    @property
    def coefficients(self) -> Dict[int, float]:
        """Estimated scaled coefficients ``alpha -> Theta[alpha]`` (0 included)."""
        return dict(self._coefficients)

    def coefficient(self, alpha: int) -> float:
        try:
            return self._coefficients[int(alpha)]
        except KeyError:
            raise MarginalQueryError(
                f"coefficient {alpha:#x} was not collected by this protocol"
            ) from None

    def query(self, beta) -> MarginalTable:
        mask = self._validate(beta)
        needed = {}
        for alpha in bitops.submasks(mask):
            needed[alpha] = self.coefficient(alpha)
        values = marginal_from_scaled_coefficients(mask, needed)
        return MarginalTable(self.domain, mask, values)


class PerMarginalEstimator(MarginalEstimator):
    """Marginals estimated table-by-table (the ``Marg*`` protocols).

    ``tables`` maps each width-``k`` marginal mask to its estimated cell
    vector.  Queries of width exactly ``k`` are answered directly; narrower
    queries are answered by marginalising every stored superset table and
    averaging (each is an unbiased estimate, so the average only reduces
    variance).
    """

    def __init__(self, workload: MarginalWorkload, tables: Mapping[int, np.ndarray]):
        super().__init__(workload)
        if not tables:
            raise AggregationError("per-marginal estimator needs at least one table")
        self._tables: Dict[int, np.ndarray] = {}
        width = None
        for beta, values in tables.items():
            beta = int(beta)
            values = np.asarray(values, dtype=np.float64)
            k = bitops.popcount(beta)
            if width is None:
                width = k
            elif k != width:
                raise AggregationError(
                    "all stored tables must cover the same number of attributes"
                )
            if values.shape != (1 << k,):
                raise AggregationError(
                    f"table for marginal {beta:#x} must have {1 << k} cells, "
                    f"got shape {values.shape}"
                )
            self._tables[beta] = values
        self._table_width = int(width)

    @property
    def table_width(self) -> int:
        """Width of the directly materialised marginals."""
        return self._table_width

    @property
    def tables(self) -> Dict[int, np.ndarray]:
        return dict(self._tables)

    def query(self, beta) -> MarginalTable:
        mask = self._validate(beta)
        if mask in self._tables:
            return MarginalTable(self.domain, mask, self._tables[mask])
        width = bitops.popcount(mask)
        if width > self._table_width:
            raise MarginalQueryError(
                f"marginal of width {width} exceeds the materialised width "
                f"{self._table_width}"
            )
        supersets = [
            stored for stored in self._tables if bitops.is_subset(mask, stored)
        ]
        if not supersets:
            raise MarginalQueryError(
                f"no materialised marginal covers {self.domain.names_of(mask)}"
            )
        estimates = []
        for stored in supersets:
            table = MarginalTable(self.domain, stored, self._tables[stored])
            estimates.append(table.marginalize(mask).values)
        return MarginalTable(self.domain, mask, np.mean(estimates, axis=0))


class Accumulator(abc.ABC):
    """Mergeable aggregation state for one protocol (the aggregator side).

    An accumulator ingests report batches produced by
    :meth:`MarginalReleaseProtocol.encode_batch` through :meth:`update`, can
    absorb the state of a peer accumulator (e.g. one per worker shard)
    through :meth:`merge`, and finalises into the protocol's
    :class:`MarginalEstimator`.  ``update`` and ``merge`` are associative and
    commutative: any shard/merge tree over the same report batches produces
    the same estimates as a single-pass aggregation.
    """

    def __init__(self, workload: MarginalWorkload):
        self._workload = workload
        self._num_reports = 0

    @property
    def workload(self) -> MarginalWorkload:
        return self._workload

    @property
    def domain(self) -> Domain:
        return self._workload.domain

    @property
    def num_reports(self) -> int:
        """Number of user reports folded in so far (including merges)."""
        return self._num_reports

    def update(self, reports) -> "Accumulator":
        """Fold one batch of client reports into this state; returns ``self``."""
        users = int(reports.num_users)
        if users < 0:
            raise AggregationError(f"report batch has negative size {users}")
        self._ingest(reports)
        self._num_reports += users
        return self

    def merge(self, other: "Accumulator") -> "Accumulator":
        """Absorb another shard's state into this one; returns ``self``.

        Both accumulators must come from identically configured protocols
        over the same workload.
        """
        if type(other) is not type(self):
            raise AggregationError(
                f"cannot merge a {type(other).__name__} into a "
                f"{type(self).__name__}"
            )
        if other._workload != self._workload:
            raise AggregationError(
                "cannot merge accumulators built over different workloads"
            )
        if other._merge_signature() != self._merge_signature():
            raise AggregationError(
                "cannot merge accumulators from differently configured "
                "protocols (mechanism parameters differ)"
            )
        self._absorb(other)
        self._num_reports += other._num_reports
        return self

    def state_dict(self) -> Dict[str, Any]:
        """Picklable snapshot of the aggregation state.

        The returned dict holds only plain values (NumPy arrays, ints) —
        the sufficient statistics plus ``"num_reports"`` — so worker
        processes can ship their shard's state back to the driver cheaply.
        The contract is asymmetric on purpose: the state carries *no*
        mechanism configuration, so it must only be restored (via
        :meth:`load_state`) into an accumulator built by the identically
        configured protocol — exactly what the process backend does.
        """
        state = self._export_state()
        state["num_reports"] = self._num_reports
        return state

    def load_state(self, state: Mapping[str, Any]) -> "Accumulator":
        """Restore a :meth:`state_dict` snapshot into this fresh accumulator.

        Refuses to overwrite an accumulator that has already seen reports;
        build a new one with ``protocol.accumulator(domain)`` instead.
        Returns ``self``.
        """
        if self._num_reports != 0:
            raise AggregationError(
                "load_state requires a fresh accumulator; this one has "
                f"already folded in {self._num_reports} reports"
            )
        data = dict(state)
        try:
            num_reports = int(data.pop("num_reports"))
        except KeyError:
            raise AggregationError(
                "accumulator state is missing the field 'num_reports'"
            ) from None
        if num_reports < 0:
            raise AggregationError(
                f"accumulator state has negative report count {num_reports}"
            )
        self._import_state(data)
        self._num_reports = num_reports
        return self

    @abc.abstractmethod
    def finalize(self) -> MarginalEstimator:
        """Produce the estimator from the accumulated reports."""

    @abc.abstractmethod
    def _ingest(self, reports) -> None:
        """Protocol-specific part of :meth:`update`."""

    @abc.abstractmethod
    def _export_state(self) -> Dict[str, Any]:
        """Protocol-specific part of :meth:`state_dict` (copies its arrays)."""

    @abc.abstractmethod
    def _import_state(self, state: Mapping[str, Any]) -> None:
        """Protocol-specific part of :meth:`load_state` (validates shapes)."""

    @abc.abstractmethod
    def _absorb(self, other: "Accumulator") -> None:
        """Protocol-specific part of :meth:`merge`."""

    @abc.abstractmethod
    def _merge_signature(self):
        """The mechanism configuration that must match for merging.

        De-biasing at :meth:`finalize` uses *this* accumulator's mechanism
        parameters, so merging state produced under different parameters
        (a different epsilon, sketch shape, hash range, ...) would silently
        bias the estimates; :meth:`merge` compares signatures to refuse it.
        """

    def _require_reports(self) -> int:
        if self._num_reports < 1:
            raise AggregationError(
                "cannot finalize an accumulator that has seen no reports"
            )
        return self._num_reports

    def __repr__(self) -> str:
        name = type(self).__name__
        protocol = name[: -len("Accumulator")] if name.endswith("Accumulator") else name
        return (
            f"{name}(protocol={protocol!r}, d={self.domain.dimension}, "
            f"k={self._workload.max_width}, num_reports={self._num_reports})"
        )


class MarginalReleaseProtocol(abc.ABC):
    """A complete marginal-release method under epsilon-LDP.

    Parameters
    ----------
    budget:
        The per-user privacy budget; each user's single report satisfies
        ``budget.epsilon``-LDP.
    max_width:
        The workload parameter ``k``: after collection, every marginal over
        at most ``k`` attributes can be answered.
    """

    #: Short machine-readable name matching the paper (e.g. ``"InpHT"``).
    name: str = "abstract"

    def __init__(self, budget: PrivacyBudget, max_width: int):
        if not isinstance(budget, PrivacyBudget):
            budget = PrivacyBudget(float(budget))
        if max_width < 1:
            raise ProtocolConfigurationError(
                f"max marginal width must be >= 1, got {max_width}"
            )
        self._budget = budget
        self._max_width = int(max_width)

    @property
    def budget(self) -> PrivacyBudget:
        return self._budget

    @property
    def epsilon(self) -> float:
        return self._budget.epsilon

    @property
    def max_width(self) -> int:
        return self._max_width

    def workload_for(self, domain: Domain) -> MarginalWorkload:
        if self._max_width > domain.dimension:
            raise ProtocolConfigurationError(
                f"workload width {self._max_width} exceeds the domain's "
                f"{domain.dimension} attributes"
            )
        return MarginalWorkload(domain, self._max_width)

    @abc.abstractmethod
    def encode_batch(self, records, rng: RngLike = None):
        """Client side: perturb a batch of records into a report batch.

        ``records`` is a :class:`BinaryDataset` or an ``(n, d)`` 0/1 array.
        The returned object is protocol-specific but always carries a
        ``num_users`` attribute; feed it to :meth:`Accumulator.update`.
        Perturbation is vectorised over the whole batch.
        """

    @abc.abstractmethod
    def accumulator(self, domain: Domain) -> Accumulator:
        """A fresh, empty aggregation state for this protocol over ``domain``."""

    def spec_options(self) -> Dict[str, Any]:
        """Constructor options beyond ``(budget, max_width)``.

        Protocols with extra knobs (``InpRR``'s probability variant,
        ``InpHTCMS``'s sketch shape, ...) override this so
        :meth:`spec` can describe the instance completely.
        """
        return {}

    def tuning_options(self) -> frozenset:
        """Names of :meth:`spec_options` that are pure performance knobs.

        These have no effect on the estimates, so spec comparisons that
        gate merging (e.g. ``AggregationSession.merge``) ignore them —
        collectors tuned for different hardware still combine.
        """
        return frozenset()

    def spec(self):
        """This instance's declarative :class:`~repro.service.ProtocolSpec`.

        The spec is JSON-round-trippable and ``spec().build()`` reconstructs
        an identically configured protocol, which is how configurations are
        agreed out-of-band between clients and an aggregation service.
        """
        from ..service.spec import ProtocolSpec

        return ProtocolSpec.from_protocol(self)

    def decode_reports(self, data):
        """Decode one wire frame of this protocol's reports (see ``to_bytes``).

        Validates the frame's magic/version/kind and every field's dtype and
        shape; a frame from a different protocol raises
        :class:`~repro.core.exceptions.WireFormatError` naming both kinds.
        """
        from .wire import decode_reports

        return decode_reports(data, expected_kind=self.name)

    def session(self, domain: Domain):
        """A fresh :class:`~repro.service.AggregationSession` over ``domain``.

        Convenience for the server side of the split deployment: the session
        wraps this protocol's accumulator with byte-level ``submit``,
        non-destructive ``snapshot`` and ``checkpoint``/``restore``.
        """
        from ..service.session import AggregationSession

        return AggregationSession(self.spec(), domain)

    def run(self, dataset: BinaryDataset, rng: RngLike = None) -> MarginalEstimator:
        """Simulate the whole protocol on a dataset and return the estimator.

        Compatibility wrapper over the streaming pipeline: the dataset is
        encoded as a single batch and aggregated by one accumulator.
        """
        return self.run_streaming(dataset, rng=rng)

    def run_streaming(
        self,
        dataset: BinaryDataset,
        rng: RngLike = None,
        batch_size: Optional[int] = None,
        shards: int = 1,
        executor=None,
    ) -> MarginalEstimator:
        """Run the protocol as a batched, shardable, parallelisable pipeline.

        The dataset is consumed in record batches of ``batch_size`` (the
        whole dataset when ``None``); each batch is encoded client-side and
        folded into one of ``shards`` accumulators round-robin, and the
        shards are merged before finalising.  Each batch perturbs with its
        own child generator spawned from ``rng``, so for a fixed seed the
        estimates depend only on ``batch_size`` — never on ``shards``, the
        execution backend or its worker count — which is what makes the
        aggregation embarrassingly parallel.  A single batch is encoded with
        the caller's generator directly, so ``run()`` is exactly the
        ``batch_size=None`` special case.

        ``executor`` selects who evaluates the shards: ``None`` (in-process
        serial, the default), a backend name (``"serial"``, ``"thread"``,
        ``"process"``) or a ready-made
        :class:`~repro.execution.Executor` instance.  A bare name builds a
        *single-worker* backend (execution semantics without parallelism);
        pass an instance — ``make_executor("process", workers=4)`` — to
        actually fan shards out.  Executors created here from a name are
        closed before returning; instances are left open for reuse.  ``shards`` beyond ``num_batches`` cannot receive any work
        and are dropped; the clamp is recorded in the returned estimator's
        :attr:`~MarginalEstimator.metadata` (``effective_shards``) and
        logged at DEBUG level.
        """
        from ..execution import Executor, ShardWork, resolve_executor

        if shards < 1:
            raise ProtocolConfigurationError(
                f"shard count must be >= 1, got {shards}"
            )
        owns_executor = not isinstance(executor, Executor)
        runner = resolve_executor(executor)
        try:
            generator = ensure_rng(rng)
            num_batches = dataset.num_batches(batch_size)
            if num_batches == 1:
                batch_rngs = [generator]
            else:
                batch_rngs = spawn_rngs(generator, num_batches)
            effective_shards = min(shards, num_batches)
            if effective_shards < shards:
                _logger.debug(
                    "%s.run_streaming: clamping %d shards to the %d "
                    "available batches",
                    self.name,
                    shards,
                    num_batches,
                )
            assignments: List[List] = [[] for _ in range(effective_shards)]
            for position, chunk in enumerate(dataset.iter_batches(batch_size)):
                assignments[position % effective_shards].append(
                    (chunk, batch_rngs[position])
                )
            works = [
                ShardWork(
                    protocol=self,
                    domain=dataset.domain,
                    batches=tuple(chunk for chunk, _ in assigned),
                    rngs=tuple(chunk_rng for _, chunk_rng in assigned),
                )
                for assigned in assignments
            ]
            accumulators = runner.run_shards(works)
            merged = accumulators[0]
            for other in accumulators[1:]:
                merged.merge(other)
            estimator = merged.finalize()
            estimator.metadata.update(
                {
                    "protocol": self.name,
                    "spec": self.spec().to_dict(),
                    "batch_size": batch_size,
                    "num_batches": num_batches,
                    "requested_shards": shards,
                    "effective_shards": effective_shards,
                    "executor": runner.name,
                    "workers": runner.workers,
                }
            )
            return estimator
        finally:
            if owns_executor:
                runner.close()

    @abc.abstractmethod
    def communication_bits(self, dimension: int) -> int:
        """Bits each user sends, as reported in Table 2 of the paper."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon:.3f}, "
            f"k={self.max_width})"
        )
