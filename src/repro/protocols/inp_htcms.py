"""InpHTCMS — marginals via the Hadamard Count-Mean Sketch frequency oracle.

The second frequency-oracle baseline of Appendix B.2 (Figure 10): Apple's
Hadamard count-mean sketch estimates the frequency of every cell of the
flattened domain, and marginals are produced by aggregating those estimates.
The sketch is tuned for heavy hitters, not for the very flat distributions
marginal reconstruction needs, so it is fast but comparatively inaccurate —
the behaviour the paper reports.
"""

from __future__ import annotations

from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..datasets.base import BinaryDataset
from ..mechanisms.sketch import HadamardCountMeanSketch
from .base import DistributionEstimator, MarginalReleaseProtocol

__all__ = ["InpHTCMS"]


class InpHTCMS(MarginalReleaseProtocol):
    """Hadamard count-mean sketch applied to the full-domain index."""

    name = "InpHTCMS"

    def __init__(
        self,
        budget: PrivacyBudget,
        max_width: int,
        num_hashes: int = 5,
        width: int = 256,
    ):
        super().__init__(budget, max_width)
        self._num_hashes = int(num_hashes)
        self._width = int(width)

    def oracle(self, dimension: int) -> HadamardCountMeanSketch:
        """The HCMS frequency oracle over ``{0,1}^d``."""
        return HadamardCountMeanSketch(
            domain_size=1 << dimension,
            budget=self.budget,
            num_hashes=self._num_hashes,
            width=self._width,
        )

    def run(self, dataset: BinaryDataset, rng: RngLike = None) -> DistributionEstimator:
        generator = ensure_rng(rng)
        workload = self.workload_for(dataset.domain)
        oracle = self.oracle(dataset.dimension)
        hash_indices, coefficient_indices, noisy = oracle.perturb(
            dataset.indices(), rng=generator
        )
        distribution = oracle.estimate_frequencies(
            hash_indices, coefficient_indices, noisy
        )
        return DistributionEstimator(workload, distribution)

    def communication_bits(self, dimension: int) -> int:
        """Hash index + coefficient index + one noisy sign bit."""
        hash_bits = max(1, (self._num_hashes - 1).bit_length())
        coefficient_bits = max(1, (self._width - 1).bit_length())
        return hash_bits + coefficient_bits + 1
