"""InpHTCMS — marginals via the Hadamard Count-Mean Sketch frequency oracle.

The second frequency-oracle baseline of Appendix B.2 (Figure 10): Apple's
Hadamard count-mean sketch estimates the frequency of every cell of the
flattened domain, and marginals are produced by aggregating those estimates.
The sketch is tuned for heavy hitters, not for the very flat distributions
marginal reconstruction needs, so it is fast but comparatively inaccurate —
the behaviour the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.domain import Domain
from ..core.marginals import MarginalWorkload
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..mechanisms.sketch import HadamardCountMeanSketch
from .base import (
    Accumulator,
    DistributionEstimator,
    MarginalReleaseProtocol,
    as_record_matrix,
    record_indices,
    take_state_array,
)
from .wire import ReportField, WireCodableReports, register_report_schema

__all__ = ["InpHTCMS", "InpHTCMSReports", "InpHTCMSAccumulator"]


@dataclass(frozen=True)
class InpHTCMSReports(WireCodableReports):
    """One encoded batch: sampled (hash, coefficient) indices + noisy signs."""

    hash_indices: np.ndarray
    coefficient_indices: np.ndarray
    noisy_signs: np.ndarray

    @property
    def num_users(self) -> int:
        return int(self.hash_indices.shape[0])


register_report_schema(
    "InpHTCMS",
    InpHTCMSReports,
    fields=(
        ReportField("hash_indices", np.int64),
        ReportField("coefficient_indices", np.int64),
        ReportField("noisy_signs", np.float64),
    ),
)


class InpHTCMSAccumulator(Accumulator):
    """Mergeable ``g x w`` sums of noisy signs (the sketch's raw state)."""

    def __init__(self, workload: MarginalWorkload, oracle: HadamardCountMeanSketch):
        super().__init__(workload)
        self._oracle = oracle
        self._sign_sums = np.zeros(
            (oracle.num_hashes, oracle.width), dtype=np.float64
        )

    def _ingest(self, reports: InpHTCMSReports) -> None:
        self._sign_sums += self._oracle.sign_sums(
            reports.hash_indices, reports.coefficient_indices, reports.noisy_signs
        )

    def _absorb(self, other: "InpHTCMSAccumulator") -> None:
        self._sign_sums += other._sign_sums

    def _export_state(self):
        return {"sign_sums": self._sign_sums.copy()}

    def _import_state(self, state) -> None:
        self._sign_sums = take_state_array(
            state, "sign_sums", self._sign_sums.shape, np.float64
        )

    def _merge_signature(self):
        return self._oracle

    def finalize(self) -> DistributionEstimator:
        total = self._require_reports()
        sketch = self._oracle.sketch_from_sums(self._sign_sums, total)
        distribution = self._oracle.frequencies_from_sketch(sketch)
        return DistributionEstimator(self._workload, distribution)


class InpHTCMS(MarginalReleaseProtocol):
    """Hadamard count-mean sketch applied to the full-domain index."""

    name = "InpHTCMS"

    def __init__(
        self,
        budget: PrivacyBudget,
        max_width: int,
        num_hashes: int = 5,
        width: int = 256,
    ):
        super().__init__(budget, max_width)
        self._num_hashes = int(num_hashes)
        self._width = int(width)

    def spec_options(self):
        return {"num_hashes": self._num_hashes, "width": self._width}

    def oracle(self, dimension: int) -> HadamardCountMeanSketch:
        """The HCMS frequency oracle over ``{0,1}^d``."""
        return HadamardCountMeanSketch(
            domain_size=1 << dimension,
            budget=self.budget,
            num_hashes=self._num_hashes,
            width=self._width,
        )

    def encode_batch(self, records, rng: RngLike = None) -> InpHTCMSReports:
        generator = ensure_rng(rng)
        records = as_record_matrix(records)
        oracle = self.oracle(records.shape[1])
        hash_indices, coefficient_indices, noisy = oracle.perturb(
            record_indices(records), rng=generator
        )
        return InpHTCMSReports(
            hash_indices=hash_indices,
            coefficient_indices=coefficient_indices,
            noisy_signs=noisy,
        )

    def accumulator(self, domain: Domain) -> InpHTCMSAccumulator:
        return InpHTCMSAccumulator(
            self.workload_for(domain), self.oracle(domain.dimension)
        )

    def communication_bits(self, dimension: int) -> int:
        """Hash index + coefficient index + one noisy sign bit."""
        hash_bits = max(1, (self._num_hashes - 1).bit_length())
        coefficient_bits = max(1, (self._width - 1).bit_length())
        return hash_bits + coefficient_bits + 1
