"""Byte-level wire codec for protocol report batches.

The streaming pipeline moves report batches between the client-side
:meth:`~repro.protocols.base.MarginalReleaseProtocol.encode_batch` and the
aggregator-side :class:`~repro.protocols.base.Accumulator` as in-memory
dataclasses.  This module gives every one of those dataclasses a portable
byte form so reports can cross process and machine boundaries without
pickle: each protocol registers a :class:`ReportSchema` describing its
report fields (name, dtype, rank), and the codec packs them into a
self-describing *frame*::

    offset  size  content
    0       4     magic  b"RPRB"
    4       2     wire-format version (little-endian u16)
    6       2     report-kind length L (little-endian u16)
    8       L     report kind, UTF-8 (the protocol name, e.g. b"InpHT")
    8 + L   8     payload length P (little-endian u64)
    16 + L  P     payload: an ``.npz`` archive of the schema's fields

Frames are length-prefixed, so any number of them can be concatenated on a
byte stream (that is what ``repro encode | repro aggregate`` pipes) and
split back apart with :func:`iter_report_frames`.  Decoding validates the
magic, the version, the kind, every field's dtype and rank, and the
cross-field row consistency before the batch reaches an accumulator;
anything off raises :class:`~repro.core.exceptions.WireFormatError` instead
of corrupting the aggregation.

The npz payload stores each array verbatim (dtype, shape and values), so an
encode → ``to_bytes`` → ``from_bytes`` → aggregate round trip is bit-for-bit
identical to handing the in-memory batch straight to the accumulator.
"""

from __future__ import annotations

import io
import struct
import zipfile
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Dict, Iterator, Tuple, Type, Union

import numpy as np

from ..core.exceptions import WireFormatError

__all__ = [
    "WIRE_FORMAT_VERSION",
    "MAX_PAYLOAD_BYTES",
    "REPORT_MAGIC",
    "FRAME_PREFIX",
    "FRAME_LENGTH",
    "ReportField",
    "ReportSchema",
    "WireCodableReports",
    "available_report_kinds",
    "register_report_schema",
    "report_schema_for",
    "encode_reports",
    "decode_reports",
    "concat_report_batches",
    "iter_report_frames",
    "split_report_frames",
]

#: Version stamp written into every frame header.  Bump on any layout change.
WIRE_FORMAT_VERSION = 1

#: Hard per-frame payload limit (1 GiB), enforced on encode and decode.  A
#: real report batch is orders of magnitude smaller; a declared length above
#: this is a corrupted/forged header, and rejecting it up front keeps a
#: streaming reader from buffering unbounded input on one flipped bit.
MAX_PAYLOAD_BYTES = 1 << 30

_MAGIC = b"RPRB"
_PREFIX = struct.Struct("<4sHH")  # magic, version, kind length
_LENGTH = struct.Struct("<Q")  # payload length

#: Public aliases of the frame header layout, shared with the collection
#: service's session framing (``repro.server.framing``) so the two frame
#: families cannot silently drift apart.
REPORT_MAGIC = _MAGIC
FRAME_PREFIX = _PREFIX
FRAME_LENGTH = _LENGTH


@dataclass(frozen=True)
class ReportField:
    """One array attribute of a report batch.

    ``per_user`` marks arrays with one row per reporting user; all such
    fields of a batch must agree on their row count, which then defines the
    batch's ``num_users``.  Sum-form fields (e.g. ``InpRR``'s per-cell
    report sums) set ``per_user=False`` and carry no row constraint.
    """

    name: str
    dtype: np.dtype
    ndim: int = 1
    per_user: bool = True

    def __post_init__(self):
        object.__setattr__(self, "dtype", np.dtype(self.dtype))


@dataclass(frozen=True)
class ReportSchema:
    """Wire description of one protocol's report-batch dataclass."""

    kind: str
    report_class: type
    fields: Tuple[ReportField, ...]
    #: Non-array integer attributes (e.g. ``InpRR``'s ``num_users``).
    scalar_fields: Tuple[str, ...] = field(default=())

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.fields) + self.scalar_fields


_SCHEMAS_BY_KIND: Dict[str, ReportSchema] = {}
_SCHEMAS_BY_CLASS: Dict[type, ReportSchema] = {}


def register_report_schema(
    kind: str,
    report_class: type,
    fields: Tuple[ReportField, ...],
    scalar_fields: Tuple[str, ...] = (),
) -> ReportSchema:
    """Register a report dataclass with the wire codec (one per protocol)."""
    schema = ReportSchema(
        kind=kind,
        report_class=report_class,
        fields=tuple(fields),
        scalar_fields=tuple(scalar_fields),
    )
    existing = _SCHEMAS_BY_KIND.get(kind)
    if existing is not None and existing.report_class is not report_class:
        raise WireFormatError(
            f"report kind {kind!r} is already registered to "
            f"{existing.report_class.__name__}"
        )
    _SCHEMAS_BY_KIND[kind] = schema
    _SCHEMAS_BY_CLASS[report_class] = schema
    return schema


def available_report_kinds() -> Tuple[str, ...]:
    """All registered report kinds (one per protocol), sorted."""
    return tuple(sorted(_SCHEMAS_BY_KIND))


def report_schema_for(key: Union[str, type]) -> ReportSchema:
    """Look up a schema by report kind, report class or report instance type."""
    if isinstance(key, str):
        try:
            return _SCHEMAS_BY_KIND[key]
        except KeyError:
            raise WireFormatError(
                f"unknown report kind {key!r}; registered kinds: "
                f"{list(available_report_kinds())}"
            ) from None
    try:
        return _SCHEMAS_BY_CLASS[key]
    except KeyError:
        raise WireFormatError(
            f"{key.__name__} is not registered with the report wire codec"
        ) from None


class WireCodableReports:
    """Mixin giving a registered report dataclass its byte form."""

    __slots__ = ()

    def to_bytes(self) -> bytes:
        """Serialize this batch into one self-describing wire frame."""
        return encode_reports(self)

    @classmethod
    def from_bytes(cls, data: Union[bytes, bytearray, memoryview]):
        """Decode one wire frame into a validated report batch of this type."""
        return decode_reports(data, expected_kind=report_schema_for(cls).kind)


def encode_reports(reports: Any) -> bytes:
    """Serialize a report batch into one wire frame (see the module header)."""
    schema = report_schema_for(type(reports))
    arrays: Dict[str, np.ndarray] = {}
    for spec in schema.fields:
        value = np.asarray(getattr(reports, spec.name))
        if value.dtype != spec.dtype:
            raise WireFormatError(
                f"{schema.kind} field {spec.name!r} must have dtype "
                f"{spec.dtype}, got {value.dtype}"
            )
        if value.ndim != spec.ndim:
            raise WireFormatError(
                f"{schema.kind} field {spec.name!r} must be {spec.ndim}-D, "
                f"got {value.ndim}-D"
            )
        arrays[spec.name] = value
    for name in schema.scalar_fields:
        arrays[name] = np.asarray(int(getattr(reports, name)), dtype=np.int64)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WireFormatError(
            f"{schema.kind} report batch serializes to {len(payload)} bytes, "
            f"above the {MAX_PAYLOAD_BYTES}-byte frame limit; encode smaller "
            f"batches"
        )
    kind = schema.kind.encode("utf-8")
    return (
        _PREFIX.pack(_MAGIC, WIRE_FORMAT_VERSION, len(kind))
        + kind
        + _LENGTH.pack(len(payload))
        + payload
    )


def decode_reports(
    data: Union[bytes, bytearray, memoryview], expected_kind: str = None
) -> Any:
    """Decode exactly one wire frame into a validated report batch.

    The buffer must hold one complete frame and nothing else; use
    :func:`iter_report_frames` for concatenated frames.  ``expected_kind``
    additionally pins the frame to one protocol's reports.

    ``bytearray``/``memoryview`` input is parsed in place (no up-front
    ``bytes`` copy) — the zero-copy server ingest path hands receive-buffer
    views straight in.
    """
    buffer = data if isinstance(data, bytes) else memoryview(data)
    reports, consumed = _decode_frame(buffer, expected_kind=expected_kind)
    if consumed != len(buffer):
        raise WireFormatError(
            f"report frame holds {consumed} bytes but the buffer has "
            f"{len(buffer)}; trailing data is not allowed (use "
            f"iter_report_frames for concatenated frames)"
        )
    return reports


def concat_report_batches(batches):
    """Concatenate decoded report batches into one equivalent batch.

    The server's micro-batcher coalesces the frames of many connections
    into a single accumulator ``update`` call; this is the schema-driven
    concatenation that makes the coalesced update bit-for-bit identical to
    submitting the batches one by one.  Per-user fields concatenate along
    the user axis; sum-form fields (``per_user=False``, exact integer
    counts held in float64) add elementwise under a strict shape check;
    scalar fields add as Python ints.  Either grouping feeds the same
    exact integer sums into the accumulator, so the estimates agree to
    the last bit.
    """
    batches = list(batches)
    if not batches:
        raise WireFormatError("cannot concatenate zero report batches")
    if len(batches) == 1:
        return batches[0]
    schema = report_schema_for(type(batches[0]))
    for other in batches[1:]:
        if type(other) is not type(batches[0]):
            raise WireFormatError(
                f"cannot concatenate {type(batches[0]).__name__} with "
                f"{type(other).__name__} report batches"
            )
    values: Dict[str, Any] = {}
    for spec in schema.fields:
        arrays = [np.asarray(getattr(batch, spec.name)) for batch in batches]
        if spec.per_user:
            try:
                values[spec.name] = np.concatenate(arrays, axis=0)
            except ValueError as error:
                raise WireFormatError(
                    f"{schema.kind} field {spec.name!r} batches do not "
                    f"concatenate: {error}"
                ) from error
        else:
            first = arrays[0]
            for array in arrays[1:]:
                if array.shape != first.shape:
                    raise WireFormatError(
                        f"{schema.kind} field {spec.name!r} batches disagree "
                        f"on shape: {first.shape} vs {array.shape}"
                    )
            total = first.copy()
            for array in arrays[1:]:
                total += array
            values[spec.name] = total
    for name in schema.scalar_fields:
        values[name] = sum(int(getattr(batch, name)) for batch in batches)
    return schema.report_class(**values)


def iter_report_frames(
    source: Union[bytes, bytearray, memoryview, BinaryIO],
    expected_kind: str = None,
) -> Iterator[Any]:
    """Yield every report batch from a byte buffer or binary stream.

    Frames must be back-to-back; a partial trailing frame raises
    :class:`~repro.core.exceptions.WireFormatError`.
    """
    for frame in split_report_frames(source):
        reports, _ = _decode_frame(frame, expected_kind=expected_kind)
        yield reports


def split_report_frames(
    source: Union[bytes, bytearray, memoryview, BinaryIO],
) -> Iterator[bytes]:
    """Yield each frame's raw bytes without decoding the payloads.

    Lets a relay (or :class:`~repro.service.AggregationSession`) split a
    concatenated stream and hand complete frames on, paying the decode cost
    only once at the consumer.  A bytes buffer is split at absolute offsets
    (O(total bytes) regardless of frame count); a binary stream is read
    incrementally, one frame in memory at a time, so an aggregator can
    consume an arbitrarily long collection without slurping it whole.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        buffer = bytes(source)
        offset = 0
        while offset < len(buffer):
            _, _, frame_end = _parse_frame_header(buffer, offset)
            yield buffer[offset:frame_end]
            offset = frame_end
        return
    while True:
        frame = _read_exact(source, _PREFIX.size)
        if not frame:
            return
        if len(frame) == _PREFIX.size:
            magic, version, kind_length = _PREFIX.unpack(frame)
            # Validate before trusting any length field from the stream —
            # reading garbage lengths could block on gigabytes of input.
            if magic != _MAGIC:
                raise WireFormatError(
                    f"buffer does not start with a repro report frame "
                    f"(magic {magic!r}, expected {_MAGIC!r})"
                )
            if version != WIRE_FORMAT_VERSION:
                raise WireFormatError(
                    f"report frame uses wire-format version {version}, but "
                    f"this library speaks version {WIRE_FORMAT_VERSION}"
                )
            header_rest = _read_exact(source, kind_length + _LENGTH.size)
            frame += header_rest
            if len(header_rest) == kind_length + _LENGTH.size:
                (payload_length,) = _LENGTH.unpack_from(header_rest, kind_length)
                if payload_length > MAX_PAYLOAD_BYTES:
                    raise WireFormatError(
                        f"report frame declares a {payload_length}-byte "
                        f"payload, above the {MAX_PAYLOAD_BYTES}-byte frame "
                        f"limit — corrupted length field?"
                    )
                frame += _read_exact(source, payload_length)
        # _parse_frame_header owns every truncation/kind check, so the
        # stream and buffer paths report identical errors.
        _parse_frame_header(frame, 0)
        yield frame


def _read_exact(stream: BinaryIO, size: int) -> bytes:
    """Read exactly ``size`` bytes unless the stream ends first."""
    chunks = []
    remaining = size
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _parse_frame_header(buffer: bytes, offset: int) -> Tuple[str, int, int]:
    """Validate the frame header at ``offset``.

    Returns ``(kind, header_end, frame_end)`` as absolute positions into
    ``buffer``.  All transport-level checks — truncation, magic, wire-format
    version, kind decodability — live here, shared by frame splitting and
    frame decoding.
    """
    available = len(buffer) - offset
    if available < _PREFIX.size:
        raise WireFormatError(
            f"report frame is truncated: need at least {_PREFIX.size} header "
            f"bytes, got {available}"
        )
    magic, version, kind_length = _PREFIX.unpack_from(buffer, offset)
    if magic != _MAGIC:
        raise WireFormatError(
            f"buffer does not start with a repro report frame "
            f"(magic {magic!r}, expected {_MAGIC!r})"
        )
    if version != WIRE_FORMAT_VERSION:
        raise WireFormatError(
            f"report frame uses wire-format version {version}, but this "
            f"library speaks version {WIRE_FORMAT_VERSION}"
        )
    header_end = offset + _PREFIX.size + kind_length + _LENGTH.size
    if len(buffer) < header_end:
        raise WireFormatError(
            f"report frame is truncated inside its header: need "
            f"{header_end - offset} bytes, got {available}"
        )
    kind_start = offset + _PREFIX.size
    try:
        kind = bytes(buffer[kind_start : kind_start + kind_length]).decode("utf-8")
    except UnicodeDecodeError as error:
        raise WireFormatError(
            f"report frame kind is not valid UTF-8: {error}"
        ) from error
    (payload_length,) = _LENGTH.unpack_from(buffer, kind_start + kind_length)
    if payload_length > MAX_PAYLOAD_BYTES:
        raise WireFormatError(
            f"report frame declares a {payload_length}-byte payload, above "
            f"the {MAX_PAYLOAD_BYTES}-byte frame limit — corrupted length "
            f"field?"
        )
    frame_end = header_end + payload_length
    if len(buffer) < frame_end:
        raise WireFormatError(
            f"report frame is truncated: payload declares {payload_length} "
            f"bytes but only {len(buffer) - header_end} follow the header"
        )
    return kind, header_end, frame_end


def _decode_frame(buffer: bytes, expected_kind: str = None) -> Tuple[Any, int]:
    """Decode the frame at the start of ``buffer``; return (reports, size)."""
    kind, header_end, frame_end = _parse_frame_header(buffer, 0)
    schema = report_schema_for(kind)
    if expected_kind is not None and kind != expected_kind:
        raise WireFormatError(
            f"report frame carries {kind!r} reports, expected "
            f"{expected_kind!r}"
        )
    payload = buffer[header_end:frame_end]
    try:
        archive = np.load(io.BytesIO(payload), allow_pickle=False)
    except (ValueError, OSError, zipfile.BadZipFile, KeyError) as error:
        raise WireFormatError(
            f"report frame payload for {kind!r} is corrupted: {error}"
        ) from error
    with archive:
        values = _validated_fields(schema, archive)
    return schema.report_class(**values), frame_end


def _validated_fields(schema: ReportSchema, archive) -> Dict[str, Any]:
    """Check an npz payload against the schema and extract its fields."""
    present = set(archive.files)
    expected = set(schema.field_names)
    if present != expected:
        missing = sorted(expected - present)
        unexpected = sorted(present - expected)
        raise WireFormatError(
            f"{schema.kind} report payload fields do not match the schema: "
            f"missing {missing}, unexpected {unexpected}"
        )
    values: Dict[str, Any] = {}
    rows = None
    rows_field = None
    for spec in schema.fields:
        try:
            array = archive[spec.name]
        except (ValueError, zipfile.BadZipFile, OSError, KeyError) as error:
            raise WireFormatError(
                f"{schema.kind} field {spec.name!r} is corrupted: {error}"
            ) from error
        if array.dtype != spec.dtype:
            raise WireFormatError(
                f"{schema.kind} field {spec.name!r} must have dtype "
                f"{spec.dtype}, got {array.dtype}"
            )
        if array.ndim != spec.ndim:
            raise WireFormatError(
                f"{schema.kind} field {spec.name!r} must be {spec.ndim}-D, "
                f"got {array.ndim}-D"
            )
        if spec.per_user:
            if rows is None:
                rows, rows_field = int(array.shape[0]), spec.name
            elif int(array.shape[0]) != rows:
                raise WireFormatError(
                    f"{schema.kind} per-user fields disagree on the batch "
                    f"size: {rows_field!r} has {rows} rows but "
                    f"{spec.name!r} has {array.shape[0]}"
                )
        values[spec.name] = array
    for name in schema.scalar_fields:
        try:
            array = archive[name]
        except (ValueError, zipfile.BadZipFile, OSError, KeyError) as error:
            raise WireFormatError(
                f"{schema.kind} field {name!r} is corrupted: {error}"
            ) from error
        if array.shape != () or array.dtype.kind not in "iu":
            raise WireFormatError(
                f"{schema.kind} field {name!r} must be an integer scalar, "
                f"got shape {array.shape} dtype {array.dtype}"
            )
        value = int(array)
        if value < 0:
            raise WireFormatError(
                f"{schema.kind} field {name!r} must be non-negative, "
                f"got {value}"
            )
        values[name] = value
    return values
