"""InpEM — budget-split randomized response with EM decoding (Fanti et al.).

This is the paper's point of comparison from prior work (Section 4.4): each
user perturbs each of their ``d`` attribute bits independently with
``eps/d``-randomized response (budget splitting), and the aggregator decodes
a requested marginal with an expectation–maximisation loop over the joint
distribution of the selected attributes.

The method has no worst-case accuracy guarantee.  The paper documents two
practical failure modes which this implementation surfaces explicitly:

* the EM loop can satisfy its convergence threshold immediately and return
  the uniform prior (counted as a *failure*, cf. Table 3);
* convergence can take thousands of iterations, far slower than the closed
  form estimators of the other protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core import bitops
from ..core.domain import Domain
from ..core.exceptions import ProtocolConfigurationError
from ..core.marginals import MarginalTable, MarginalWorkload
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..mechanisms.randomized_response import BitRandomizedResponse
from .base import (
    Accumulator,
    MarginalEstimator,
    MarginalReleaseProtocol,
    as_record_matrix,
    record_indices,
    take_state_array,
)
from .wire import ReportField, WireCodableReports, register_report_schema

__all__ = ["EMDecodingResult", "EMEstimator", "InpEM", "InpEMReports", "InpEMAccumulator"]


@dataclass(frozen=True)
class EMDecodingResult:
    """Diagnostics of one EM decode.

    Attributes
    ----------
    table:
        The decoded marginal.
    iterations:
        Number of EM iterations performed.
    converged:
        Whether the stopping threshold was reached before the iteration cap.
    failed:
        The paper's failure criterion: the loop terminated immediately
        (within one iteration) and returned (essentially) the uniform prior.
    """

    table: MarginalTable
    iterations: int
    converged: bool
    failed: bool


class EMEstimator(MarginalEstimator):
    """Answers marginal queries by running EM on the noisy pattern histogram.

    The estimator holds the ``2^d`` histogram of observed noisy records — a
    sufficient statistic for EM, since the decode only ever consumes the
    pattern fractions over the queried attributes.  Each query marginalises
    the histogram (``O(2^d)`` work) instead of re-scanning all ``N`` noisy
    records, and the per-width likelihood matrix is cached across queries.
    """

    def __init__(
        self,
        workload: MarginalWorkload,
        pattern_counts: np.ndarray,
        keep_probability: float,
        convergence_threshold: float,
        max_iterations: int,
    ):
        super().__init__(workload)
        pattern_counts = np.asarray(pattern_counts, dtype=np.int64)
        if pattern_counts.shape != (workload.domain.size,):
            raise ProtocolConfigurationError(
                f"pattern histogram must have shape ({workload.domain.size},), "
                f"got {pattern_counts.shape}"
            )
        self._pattern_counts = pattern_counts
        self._keep_probability = float(keep_probability)
        self._threshold = float(convergence_threshold)
        self._max_iterations = int(max_iterations)
        self._likelihood_cache: Dict[int, np.ndarray] = {}
        self._pattern_weights = self._pattern_counts.astype(np.float64)

    @classmethod
    def from_noisy_records(
        cls,
        workload: MarginalWorkload,
        noisy_records: np.ndarray,
        keep_probability: float,
        convergence_threshold: float,
        max_iterations: int,
    ) -> "EMEstimator":
        """Build the estimator from raw ``(N, d)`` noisy record rows."""
        noisy_records = np.asarray(noisy_records, dtype=np.int8)
        if noisy_records.ndim != 2 or noisy_records.shape[1] != workload.dimension:
            raise ProtocolConfigurationError(
                f"noisy records must have shape (N, {workload.dimension}), "
                f"got {noisy_records.shape}"
            )
        counts = np.bincount(
            record_indices(noisy_records), minlength=workload.domain.size
        )
        return cls(
            workload,
            counts,
            keep_probability=keep_probability,
            convergence_threshold=convergence_threshold,
            max_iterations=max_iterations,
        )

    @property
    def keep_probability(self) -> float:
        """Per-bit RR keep probability (at budget eps/d)."""
        return self._keep_probability

    @property
    def pattern_counts(self) -> np.ndarray:
        """The ``2^d`` histogram of observed noisy records (a copy)."""
        return self._pattern_counts.copy()

    def _likelihood(self, k: int) -> np.ndarray:
        """``P[observe pattern y | true pattern x]`` for a width-``k`` marginal.

        Depends only on ``k`` and the keep probability, so it is cached —
        full 2-way workloads reuse one ``2^k x 2^k`` matrix across all
        ``C(d, 2)`` queries.
        """
        cached = self._likelihood_cache.get(k)
        if cached is None:
            cells = 1 << k
            p = self._keep_probability
            hamming = bitops.popcount(
                np.arange(cells)[:, None] ^ np.arange(cells)[None, :]
            )
            cached = (p ** (k - hamming)) * ((1.0 - p) ** hamming)  # [y, x]
            self._likelihood_cache[k] = cached
        return cached

    def query(self, beta) -> MarginalTable:
        return self.query_with_diagnostics(beta).table

    def query_with_diagnostics(self, beta) -> EMDecodingResult:
        """Run the EM decode for one marginal and return diagnostics."""
        mask = self._validate(beta)
        k = bitops.popcount(mask)
        cells = 1 << k

        # Histogram of observed noisy patterns over the selected attributes,
        # by marginalising the full-domain histogram.  The sums are integer
        # valued, so they equal a direct per-record bincount exactly.
        compact = bitops.compress_indices(
            np.arange(self.domain.size, dtype=np.int64), mask
        )
        pattern_counts = np.bincount(
            compact, weights=self._pattern_weights, minlength=cells
        )
        pattern_fractions = pattern_counts / pattern_counts.sum()

        likelihood = self._likelihood(k)

        prior = np.full(cells, 1.0 / cells)
        iterations = 0
        converged = False
        while iterations < self._max_iterations:
            iterations += 1
            # E-step: posterior over true cells for each observed pattern.
            joint = likelihood * prior[None, :]
            denominator = joint.sum(axis=1, keepdims=True)
            denominator[denominator == 0] = 1.0
            posterior = joint / denominator
            # M-step: new prior is the pattern-weighted average posterior.
            updated = pattern_fractions @ posterior
            change = float(np.abs(updated - prior).max())
            prior = updated
            if change < self._threshold:
                converged = True
                break

        uniform_distance = float(np.abs(prior - 1.0 / cells).max())
        failed = iterations <= 1 and uniform_distance < 10 * self._threshold
        table = MarginalTable(self.domain, mask, prior)
        return EMDecodingResult(
            table=table, iterations=iterations, converged=converged, failed=failed
        )


@dataclass(frozen=True)
class InpEMReports(WireCodableReports):
    """One encoded batch: the per-attribute RR-perturbed record rows."""

    noisy_records: np.ndarray

    @property
    def num_users(self) -> int:
        return int(self.noisy_records.shape[0])


register_report_schema(
    "InpEM",
    InpEMReports,
    fields=(ReportField("noisy_records", np.int8, ndim=2),),
)


class InpEMAccumulator(Accumulator):
    """Folds noisy record batches into a ``2^d`` pattern histogram.

    The EM decode only ever consumes the histogram of observed noisy joint
    patterns, so that histogram is a *sufficient statistic*: folding each
    batch into per-pattern counts at ``update`` time keeps the state
    ``O(2^d)`` — independent of the number of users — while remaining an
    exact integer-sum merge algebra (shard/merge order is invisible
    bit-for-bit, like every other protocol's accumulator).
    """

    def __init__(
        self,
        workload: MarginalWorkload,
        keep_probability: float,
        convergence_threshold: float,
        max_iterations: int,
    ):
        super().__init__(workload)
        self._keep_probability = float(keep_probability)
        self._threshold = float(convergence_threshold)
        self._max_iterations = int(max_iterations)
        self._pattern_counts = np.zeros(workload.domain.size, dtype=np.int64)

    def _ingest(self, reports: InpEMReports) -> None:
        noisy = np.asarray(reports.noisy_records, dtype=np.int8)
        if noisy.ndim != 2 or noisy.shape[1] != self._workload.dimension:
            raise ProtocolConfigurationError(
                f"noisy records must have shape (n, {self._workload.dimension}), "
                f"got {noisy.shape}"
            )
        self._pattern_counts += np.bincount(
            record_indices(noisy), minlength=self._workload.domain.size
        )

    def _absorb(self, other: "InpEMAccumulator") -> None:
        self._pattern_counts += other._pattern_counts

    def _export_state(self):
        return {"pattern_counts": self._pattern_counts.copy()}

    def _import_state(self, state) -> None:
        self._pattern_counts = take_state_array(
            state, "pattern_counts", self._pattern_counts.shape, np.int64
        )

    def _merge_signature(self):
        return (self._keep_probability, self._threshold, self._max_iterations)

    def finalize(self) -> "EMEstimator":
        self._require_reports()
        return EMEstimator(
            self._workload,
            self._pattern_counts.copy(),
            keep_probability=self._keep_probability,
            convergence_threshold=self._threshold,
            max_iterations=self._max_iterations,
        )


class InpEM(MarginalReleaseProtocol):
    """Budget-split per-attribute RR with EM decoding (Fanti et al. baseline)."""

    name = "InpEM"

    def __init__(
        self,
        budget: PrivacyBudget,
        max_width: int = 2,
        convergence_threshold: float = 1e-5,
        max_iterations: int = 10000,
    ):
        super().__init__(budget, max_width)
        if convergence_threshold <= 0:
            raise ProtocolConfigurationError(
                f"convergence threshold must be positive, got {convergence_threshold}"
            )
        if max_iterations < 1:
            raise ProtocolConfigurationError(
                f"max iterations must be >= 1, got {max_iterations}"
            )
        self._threshold = float(convergence_threshold)
        self._max_iterations = int(max_iterations)

    @property
    def convergence_threshold(self) -> float:
        """The EM stopping threshold Omega (the paper uses 1e-5)."""
        return self._threshold

    def spec_options(self):
        return {
            "convergence_threshold": self._threshold,
            "max_iterations": self._max_iterations,
        }

    def per_attribute_mechanism(self, dimension: int) -> BitRandomizedResponse:
        """The eps/d randomized response applied to every attribute bit."""
        return BitRandomizedResponse.from_budget(self.budget.split(dimension))

    def encode_batch(self, records, rng: RngLike = None) -> InpEMReports:
        generator = ensure_rng(rng)
        records = as_record_matrix(records)
        mechanism = self.per_attribute_mechanism(records.shape[1])
        noisy = mechanism.perturb(records, rng=generator)
        return InpEMReports(noisy_records=noisy)

    def accumulator(self, domain: Domain) -> InpEMAccumulator:
        mechanism = self.per_attribute_mechanism(domain.dimension)
        return InpEMAccumulator(
            self.workload_for(domain),
            keep_probability=mechanism.keep_probability,
            convergence_threshold=self._threshold,
            max_iterations=self._max_iterations,
        )

    def communication_bits(self, dimension: int) -> int:
        """Each user sends one noisy bit per attribute."""
        return dimension
