"""Categorical-to-binary encodings (Section 6.3 of the paper).

The core protocols operate on binary attributes.  Section 6.3 extends them to
categorical attributes with cardinality ``r > 2`` by rewriting each attribute
in binary: either *compactly* with ``ceil(log2 r)`` bits (the encoding behind
Corollary 6.1) or with full *one-hot* indicator bits.  This module implements
both directions of those encodings and the bookkeeping needed to translate a
categorical marginal query into a query over the encoded binary domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..core.domain import Domain
from ..core.exceptions import EncodingError
from ..core import bitops
from .base import BinaryDataset

__all__ = [
    "CategoricalDomain",
    "BinaryEncodedDataset",
    "compact_binary_dimension",
    "encode_compact",
    "decode_compact",
    "encode_onehot",
]


@dataclass(frozen=True)
class CategoricalDomain:
    """Named categorical attributes with their cardinalities."""

    attributes: Tuple[str, ...]
    cardinalities: Tuple[int, ...]

    def __init__(self, attributes: Sequence[str], cardinalities: Sequence[int]):
        names = tuple(str(name) for name in attributes)
        cards = tuple(int(card) for card in cardinalities)
        if not names:
            raise EncodingError("a categorical domain needs at least one attribute")
        if len(names) != len(cards):
            raise EncodingError(
                f"{len(names)} attribute names but {len(cards)} cardinalities"
            )
        if len(set(names)) != len(names):
            raise EncodingError(f"attribute names must be unique, got {names}")
        if any(card < 2 for card in cards):
            raise EncodingError(f"every cardinality must be >= 2, got {cards}")
        object.__setattr__(self, "attributes", names)
        object.__setattr__(self, "cardinalities", cards)

    @property
    def dimension(self) -> int:
        return len(self.attributes)

    def bits_per_attribute(self) -> List[int]:
        """``ceil(log2 r_i)`` for each attribute (the compact encoding width)."""
        return [max(1, math.ceil(math.log2(card))) for card in self.cardinalities]

    def index_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise EncodingError(
                f"unknown attribute {attribute!r}; domain has {self.attributes}"
            ) from None


def compact_binary_dimension(domain: CategoricalDomain) -> int:
    """The effective binary dimension ``d_2 = sum_i ceil(log2 r_i)``."""
    return sum(domain.bits_per_attribute())


def _validate_records(records: np.ndarray, domain: CategoricalDomain) -> np.ndarray:
    records = np.asarray(records)
    if records.ndim != 2 or records.shape[1] != domain.dimension:
        raise EncodingError(
            f"records must have shape (N, {domain.dimension}), got {records.shape}"
        )
    if records.shape[0] == 0:
        raise EncodingError("need at least one record")
    records = records.astype(np.int64)
    for column, cardinality in enumerate(domain.cardinalities):
        col = records[:, column]
        if col.min() < 0 or col.max() >= cardinality:
            raise EncodingError(
                f"attribute {domain.attributes[column]!r} has values outside "
                f"[0, {cardinality})"
            )
    return records


@dataclass(frozen=True)
class BinaryEncodedDataset:
    """A categorical dataset together with its compact binary encoding.

    Besides the encoded :class:`BinaryDataset` this object remembers which
    binary attributes belong to which categorical attribute, so that a
    categorical marginal query ("the 2-way marginal over (colour, size)") can
    be translated to the corresponding mask over the binary domain (whose
    width is the ``k_2`` of Corollary 6.1).
    """

    categorical_domain: CategoricalDomain
    binary_dataset: BinaryDataset
    bit_groups: Tuple[Tuple[int, ...], ...]

    def binary_mask_for(self, attributes: Sequence[str]) -> int:
        """Mask over the binary domain covering the named categorical attributes."""
        if not attributes:
            raise EncodingError("need at least one attribute for a marginal")
        positions: List[int] = []
        for name in attributes:
            index = self.categorical_domain.index_of(name)
            positions.extend(self.bit_groups[index])
        return bitops.mask_from_positions(positions)

    def categorical_marginal(self, attributes: Sequence[str], binary_values: np.ndarray) -> np.ndarray:
        """Fold a binary marginal (over :meth:`binary_mask_for`) back to categories.

        ``binary_values`` must be the compact cell vector of the binary
        marginal; the result is an array of shape ``(r_{a1}, r_{a2}, ...)``
        whose entries sum to (approximately) the same total.  Cells of the
        binary encoding that do not correspond to a valid category (because
        ``r`` is not a power of two) are dropped.
        """
        indices = [self.categorical_domain.index_of(name) for name in attributes]
        bits = [len(self.bit_groups[i]) for i in indices]
        cards = [self.categorical_domain.cardinalities[i] for i in indices]
        expected = 1 << sum(bits)
        binary_values = np.asarray(binary_values, dtype=np.float64)
        if binary_values.shape != (expected,):
            raise EncodingError(
                f"binary marginal must have {expected} cells, got {binary_values.shape}"
            )
        result = np.zeros(cards, dtype=np.float64)
        for compact in range(expected):
            remaining = compact
            coords = []
            valid = True
            for width, card in zip(bits, cards):
                value = remaining & ((1 << width) - 1)
                remaining >>= width
                if value >= card:
                    valid = False
                    break
                coords.append(value)
            if valid:
                result[tuple(coords)] += binary_values[compact]
        return result


def encode_compact(records: np.ndarray, domain: CategoricalDomain) -> BinaryEncodedDataset:
    """Compactly encode categorical records with ``ceil(log2 r)`` bits each."""
    records = _validate_records(records, domain)
    widths = domain.bits_per_attribute()
    names: List[str] = []
    columns: List[np.ndarray] = []
    bit_groups: List[Tuple[int, ...]] = []
    next_bit = 0
    for index, (attribute, width) in enumerate(zip(domain.attributes, widths)):
        group = []
        for bit in range(width):
            names.append(f"{attribute}_b{bit}")
            columns.append(((records[:, index] >> bit) & 1).astype(np.int8))
            group.append(next_bit)
            next_bit += 1
        bit_groups.append(tuple(group))
    binary = BinaryDataset(Domain(names), np.stack(columns, axis=1))
    return BinaryEncodedDataset(domain, binary, tuple(bit_groups))


def decode_compact(encoded: BinaryEncodedDataset) -> np.ndarray:
    """Recover the categorical records from a compact encoding."""
    binary = encoded.binary_dataset.records.astype(np.int64)
    n = binary.shape[0]
    result = np.zeros((n, encoded.categorical_domain.dimension), dtype=np.int64)
    for index, group in enumerate(encoded.bit_groups):
        for bit, column in enumerate(group):
            result[:, index] |= binary[:, column] << bit
    return result


def encode_onehot(records: np.ndarray, domain: CategoricalDomain) -> BinaryEncodedDataset:
    """One-hot encode categorical records (one indicator bit per category)."""
    records = _validate_records(records, domain)
    names: List[str] = []
    columns: List[np.ndarray] = []
    bit_groups: List[Tuple[int, ...]] = []
    next_bit = 0
    for index, (attribute, cardinality) in enumerate(
        zip(domain.attributes, domain.cardinalities)
    ):
        group = []
        for value in range(cardinality):
            names.append(f"{attribute}_is{value}")
            columns.append((records[:, index] == value).astype(np.int8))
            group.append(next_bit)
            next_bit += 1
        bit_groups.append(tuple(group))
    binary = BinaryDataset(Domain(names), np.stack(columns, axis=1))
    return BinaryEncodedDataset(domain, binary, tuple(bit_groups))
