"""Dataset container shared by generators, protocols and analyses.

A :class:`BinaryDataset` is simply ``N`` records over a :class:`~repro.core.Domain`
of ``d`` binary attributes, stored both as an ``(N, d)`` 0/1 matrix (handy for
per-attribute perturbation and correlation analysis) and as the length-``N``
vector of one-hot positions in ``{0,1}^d`` (handy for the marginal and
Hadamard machinery).  The two views are kept consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..core import bitops
from ..core.domain import Domain
from ..core.exceptions import DatasetError
from ..core.marginals import (
    MarginalTable,
    full_distribution_from_indices,
    marginal_from_indices,
)
from ..core.rng import RngLike, ensure_rng

__all__ = ["BinaryDataset", "record_indices"]


def record_indices(records: np.ndarray) -> np.ndarray:
    """Per-row one-hot positions in ``{0,1}^d`` of an ``(n, d)`` 0/1 matrix.

    The single source of truth for the record -> index packing, shared by
    :meth:`BinaryDataset.indices` and the protocols' batch encoders.
    """
    weights = 1 << np.arange(records.shape[1], dtype=np.int64)
    return records.astype(np.int64) @ weights


@dataclass(frozen=True)
class BinaryDataset:
    """A population of binary records.

    Attributes
    ----------
    domain:
        Names and ordering of the binary attributes.
    records:
        ``(N, d)`` array of 0/1 values; row ``i`` is user ``i``'s record.
    """

    domain: Domain
    records: np.ndarray

    def __post_init__(self):
        records = np.asarray(self.records)
        if records.ndim != 2:
            raise DatasetError(
                f"records must be a 2-D array, got shape {records.shape}"
            )
        if records.shape[0] == 0:
            raise DatasetError("a dataset needs at least one record")
        if records.shape[1] != self.domain.dimension:
            raise DatasetError(
                f"records have {records.shape[1]} columns but the domain has "
                f"{self.domain.dimension} attributes"
            )
        if not np.isin(records, (0, 1)).all():
            raise DatasetError("records must contain only 0/1 values")
        object.__setattr__(self, "records", records.astype(np.int8))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(
        cls, records: np.ndarray, attribute_names: Optional[Sequence[str]] = None
    ) -> "BinaryDataset":
        """Build a dataset from an ``(N, d)`` 0/1 matrix."""
        records = np.asarray(records)
        if records.ndim != 2:
            raise DatasetError(
                f"records must be a 2-D array, got shape {records.shape}"
            )
        if attribute_names is None:
            domain = Domain.binary(records.shape[1])
        else:
            domain = Domain(attribute_names)
        return cls(domain, records)

    @classmethod
    def from_indices(
        cls, indices: np.ndarray, domain: Domain
    ) -> "BinaryDataset":
        """Build a dataset from per-user one-hot positions in ``{0,1}^d``."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise DatasetError(f"indices must be 1-D, got shape {indices.shape}")
        if indices.size == 0:
            raise DatasetError("a dataset needs at least one record")
        if indices.min() < 0 or indices.max() >= domain.size:
            raise DatasetError(
                f"indices must lie in [0, {domain.size}), got range "
                f"[{indices.min()}, {indices.max()}]"
            )
        columns = [((indices >> j) & 1) for j in range(domain.dimension)]
        records = np.stack(columns, axis=1).astype(np.int8)
        return cls(domain, records)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of records (users) ``N``."""
        return int(self.records.shape[0])

    @property
    def dimension(self) -> int:
        """Number of binary attributes ``d``."""
        return self.domain.dimension

    @property
    def attribute_names(self) -> List[str]:
        return list(self.domain.attributes)

    def indices(self) -> np.ndarray:
        """Per-user one-hot positions ``j_i`` in ``{0,1}^d``."""
        return record_indices(self.records)

    def full_distribution(self) -> np.ndarray:
        """The exact normalised histogram over ``{0,1}^d``."""
        return full_distribution_from_indices(self.indices(), self.domain.size)

    def marginal(self, beta) -> MarginalTable:
        """The exact (non-private) marginal over the attributes in ``beta``."""
        mask = self.domain.mask_of(beta)
        return marginal_from_indices(self.indices(), mask, self.domain)

    def attribute_column(self, attribute: str) -> np.ndarray:
        """The 0/1 column of a named attribute."""
        return self.records[:, self.domain.index_of(attribute)].astype(np.int64)

    # ------------------------------------------------------------------ #
    # Chunked iteration (the streaming pipeline's record source)
    # ------------------------------------------------------------------ #
    def num_batches(self, batch_size: Optional[int] = None) -> int:
        """Number of chunks :meth:`iter_batches` will yield."""
        if batch_size is None:
            return 1
        if batch_size < 1:
            raise DatasetError(f"batch size must be >= 1, got {batch_size}")
        return -(-self.size // batch_size)

    def iter_batches(self, batch_size: Optional[int] = None):
        """Yield contiguous ``(<=batch_size, d)`` record chunks, in order.

        Chunks are views into the record matrix (no copies), so protocols
        can stream arbitrarily large populations in constant memory.  With
        ``batch_size=None`` the whole record matrix is yielded as one chunk.
        """
        self.num_batches(batch_size)  # validate batch_size
        if batch_size is None:
            yield self.records
            return
        for start in range(0, self.size, batch_size):
            yield self.records[start : start + batch_size]

    # ------------------------------------------------------------------ #
    # Resampling
    # ------------------------------------------------------------------ #
    def sample(self, n: int, rng: RngLike = None, replace: bool = True) -> "BinaryDataset":
        """Sample ``n`` records (with replacement by default, as in the paper)."""
        if n <= 0:
            raise DatasetError(f"sample size must be positive, got {n}")
        if not replace and n > self.size:
            raise DatasetError(
                f"cannot sample {n} records without replacement from {self.size}"
            )
        generator = ensure_rng(rng)
        rows = generator.choice(self.size, size=n, replace=replace)
        return BinaryDataset(self.domain, self.records[rows])

    def project(self, attributes: Sequence[str]) -> "BinaryDataset":
        """Restrict to a subset of named attributes (in the given order)."""
        if not attributes:
            raise DatasetError("projection needs at least one attribute")
        columns = [self.domain.index_of(name) for name in attributes]
        return BinaryDataset(Domain(attributes), self.records[:, columns])

    def duplicate_attributes(self, copies: int) -> "BinaryDataset":
        """Grow the dimensionality by duplicating columns round-robin.

        The paper's Figure 6 reaches larger ``d`` "by duplicating columns" of
        the taxi data; this reproduces that construction.  Duplicated columns
        get suffixed names (``CC_dup1`` etc.).
        """
        if copies <= 0:
            raise DatasetError(f"copies must be positive, got {copies}")
        names = list(self.domain.attributes)
        blocks = [self.records]
        for copy_number in range(1, copies + 1):
            names.extend(f"{name}_dup{copy_number}" for name in self.domain.attributes)
            blocks.append(self.records)
        return BinaryDataset(Domain(names), np.concatenate(blocks, axis=1))

    def widen_to(self, d: int) -> "BinaryDataset":
        """Duplicate columns until the dataset has exactly ``d`` attributes."""
        if d < self.dimension:
            raise DatasetError(
                f"cannot widen from {self.dimension} down to {d} attributes"
            )
        if d == self.dimension:
            return self
        names = list(self.domain.attributes)
        columns = [self.records[:, j] for j in range(self.dimension)]
        copy_number = 1
        while len(names) < d:
            source = (len(names) - self.dimension) % self.dimension
            names.append(f"{self.domain.attributes[source]}_dup{copy_number}")
            columns.append(self.records[:, source])
            copy_number += 1
        return BinaryDataset(Domain(names), np.stack(columns, axis=1))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryDataset(N={self.size}, d={self.dimension})"
