"""Synthetic stand-in for the paper's MovieLens genre-preference dataset.

The paper derives, for each MovieLens user, a binary vector over movie genres
where bit ``j`` is set when the user has rated one of the top-1000 movies of
genre ``j``.  Its key documented property is that "most attribute pairs are
positively correlated": active raters touch many genres at once.

Offline we synthesise that structure with a latent *activity* variable: each
user draws an activity level, and the probability of having touched any given
genre increases with activity (more for popular genres such as Drama/Comedy,
less for niche ones).  This yields a population where every pair of genres is
positively correlated, with popular genres more prevalent — matching the
description the experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.domain import Domain
from ..core.exceptions import DatasetError
from ..core.rng import RngLike, ensure_rng
from .base import BinaryDataset

__all__ = ["MOVIE_GENRES", "MovieLensDataGenerator", "make_movielens_dataset"]

#: The 17 MovieLens genre labels the paper mentions.
MOVIE_GENRES: Tuple[str, ...] = (
    "Action",
    "Adventure",
    "Animation",
    "Children",
    "Comedy",
    "Crime",
    "Documentary",
    "Drama",
    "Fantasy",
    "FilmNoir",
    "Horror",
    "Musical",
    "Mystery",
    "Romance",
    "SciFi",
    "Thriller",
    "Western",
)

#: Relative popularity of each genre (roughly: mainstream genres are watched
#: by many users, niche ones by few).  Values are base probabilities at an
#: average activity level.
_GENRE_POPULARITY: Tuple[float, ...] = (
    0.62, 0.58, 0.38, 0.35, 0.70, 0.52, 0.22, 0.78, 0.40,
    0.12, 0.30, 0.20, 0.42, 0.55, 0.57, 0.66, 0.15,
)


@dataclass(frozen=True)
class MovieLensDataGenerator:
    """Latent-activity generator for MovieLens-like genre preference vectors.

    Parameters
    ----------
    num_genres:
        How many of the 17 genres to include (the paper uses up to 16/17 and
        ``d = 10`` for the Bayesian-modelling experiment).
    activity_strength:
        How strongly the shared activity level couples the genres; larger
        values give stronger (still positive) pairwise correlations.
    """

    num_genres: int = 16
    activity_strength: float = 0.8

    def __post_init__(self):
        if not 1 <= self.num_genres <= len(MOVIE_GENRES):
            raise DatasetError(
                f"num_genres must lie in [1, {len(MOVIE_GENRES)}], "
                f"got {self.num_genres}"
            )
        if self.activity_strength < 0:
            raise DatasetError(
                f"activity_strength must be non-negative, got {self.activity_strength}"
            )

    @property
    def domain(self) -> Domain:
        return Domain(MOVIE_GENRES[: self.num_genres])

    def generate(self, n: int, rng: RngLike = None) -> BinaryDataset:
        """Generate ``n`` synthetic users' genre-preference vectors."""
        if n <= 0:
            raise DatasetError(f"population size must be positive, got {n}")
        generator = ensure_rng(rng)
        popularity = np.asarray(_GENRE_POPULARITY[: self.num_genres])

        # Per-user activity in [0, 1]: a Beta(2, 2.5) shape gives a realistic
        # mix of casual and power users.
        activity = generator.beta(2.0, 2.5, size=n)

        # P[genre j | activity a] interpolates between a low floor and a high
        # ceiling, anchored at the genre's popularity; the shared dependence
        # on `activity` makes every pair positively correlated.
        centred = activity - activity.mean()
        logits = (
            np.log(popularity / (1 - popularity))[None, :]
            + self.activity_strength * 6.0 * centred[:, None]
        )
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        records = (generator.random(probabilities.shape) < probabilities).astype(np.int8)
        return BinaryDataset(self.domain, records)


def make_movielens_dataset(n: int, d: int = 16, rng: RngLike = None) -> BinaryDataset:
    """Convenience wrapper: MovieLens-like data over the first ``d`` genres.

    For ``d`` larger than the number of genres the dataset is widened by
    duplicating columns, mirroring the paper's approach to scaling ``d``.
    """
    generator = ensure_rng(rng)
    base_genres = min(d, len(MOVIE_GENRES))
    dataset = MovieLensDataGenerator(num_genres=base_genres).generate(n, rng=generator)
    if d > base_genres:
        dataset = dataset.widen_to(d)
    return dataset
