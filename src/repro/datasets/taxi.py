"""Synthetic stand-in for the paper's NYC taxi trip dataset.

The paper derives 8 binary attributes from NYC yellow-cab trip records
(Table 1) and documents, via a Pearson-correlation heat map (Figure 3), which
pairs are strongly associated:

* strongly positively correlated: ``(Night_pick, Night_drop)``,
  ``(Toll, Far)`` and ``(CC, Tip)``;
* close to independent: ``(M_drop, CC)``, ``(Far, Night_pick)`` and
  ``(Toll, Night_pick)``;
* most journeys are short trips within Manhattan, so ``M_pick`` / ``M_drop``
  are both common and positively associated (the example 2-way marginal of
  Figure 2 has mass 0.55 on the Y/Y cell).

The raw TLC trip records cannot be shipped offline, so
:class:`TaxiDataGenerator` synthesises records from a small latent-class
model calibrated to reproduce this structure.  Every experiment in the paper
consumes only the empirical distribution over ``{0,1}^8``, so matching the
marginal/correlation structure is sufficient to exercise the same code paths
and produce the same qualitative comparisons between protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..core.rng import RngLike, ensure_rng
from .base import BinaryDataset
from .synthetic import latent_class_dataset

__all__ = ["TAXI_ATTRIBUTES", "TaxiDataGenerator", "make_taxi_dataset"]

#: Attribute names and meanings from Table 1 of the paper.
TAXI_ATTRIBUTES: Tuple[str, ...] = (
    "CC",          # paid by credit card
    "Toll",        # paid a toll
    "Far",         # journey distance >= 10 miles
    "Night_pick",  # pickup time >= 8 PM
    "Night_drop",  # drop-off time <= 3 AM
    "M_pick",      # origin within Manhattan
    "M_drop",      # destination within Manhattan
    "Tip",         # tip >= 25% of fare
)

#: Strongly correlated pairs the paper's association test expects to reject
#: independence for.
DEPENDENT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("Night_pick", "Night_drop"),
    ("Toll", "Far"),
    ("CC", "Tip"),
)

#: Pairs the paper's association test expects to accept as independent.
INDEPENDENT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("M_drop", "CC"),
    ("Far", "Night_pick"),
    ("Toll", "Night_pick"),
)


@dataclass(frozen=True)
class TaxiDataGenerator:
    """Latent-class generator for taxi-like trip records.

    The latent classes describe trip archetypes; mixing them produces the
    documented correlation pattern:

    * a *night* factor drives ``Night_pick`` and ``Night_drop`` together;
    * a *long-trip* factor drives ``Toll`` and ``Far`` together (and pushes
      the trip endpoints out of Manhattan);
    * a *card-payer* factor drives ``CC`` and ``Tip`` together;
    * the night and long-trip factors are drawn independently of each other,
      which keeps ``(Far, Night_pick)`` and ``(Toll, Night_pick)`` close to
      independent, and card payment is independent of destination borough,
      keeping ``(M_drop, CC)`` weak.
    """

    #: Probability that a trip happens at night.
    night_rate: float = 0.30
    #: Probability that a trip is a long (out-of-Manhattan, toll-paying) one.
    long_trip_rate: float = 0.18
    #: Probability that the rider is a card payer (who usually tips well).
    card_rate: float = 0.55

    def _latent_model(self) -> Tuple[np.ndarray, np.ndarray]:
        """Enumerate the 2x2x2 latent classes and their attribute conditionals."""
        class_probs: List[float] = []
        conditionals: List[List[float]] = []
        for night in (0, 1):
            for long_trip in (0, 1):
                for card in (0, 1):
                    weight = (
                        (self.night_rate if night else 1 - self.night_rate)
                        * (self.long_trip_rate if long_trip else 1 - self.long_trip_rate)
                        * (self.card_rate if card else 1 - self.card_rate)
                    )
                    class_probs.append(weight)
                    conditionals.append(
                        self._conditional_row(night, long_trip, card)
                    )
        return np.asarray(class_probs), np.asarray(conditionals)

    @staticmethod
    def _conditional_row(night: int, long_trip: int, card: int) -> List[float]:
        """``P[attribute = 1 | latent class]`` in :data:`TAXI_ATTRIBUTES` order."""
        cc = 0.92 if card else 0.18
        toll = 0.80 if long_trip else 0.06
        far = 0.85 if long_trip else 0.05
        night_pick = 0.90 if night else 0.08
        night_drop = 0.82 if night else 0.10
        m_pick = 0.45 if long_trip else 0.88
        m_drop = 0.40 if long_trip else 0.85
        tip = 0.75 if card else 0.12
        return [cc, toll, far, night_pick, night_drop, m_pick, m_drop, tip]

    def generate(self, n: int, rng: RngLike = None) -> BinaryDataset:
        """Generate ``n`` synthetic trips over the 8 taxi attributes."""
        class_probs, conditionals = self._latent_model()
        return latent_class_dataset(
            n,
            class_probabilities=class_probs,
            conditional_probabilities=conditionals,
            attribute_names=TAXI_ATTRIBUTES,
            rng=ensure_rng(rng),
        )


def make_taxi_dataset(n: int, d: int | None = None, rng: RngLike = None) -> BinaryDataset:
    """Convenience wrapper: taxi-like data, optionally widened to ``d > 8``.

    The paper's Figure 6 scales the taxi data to larger dimensionalities by
    duplicating columns; ``d`` above 8 reproduces that construction.
    """
    dataset = TaxiDataGenerator().generate(n, rng=rng)
    if d is not None and d != dataset.dimension:
        if d < dataset.dimension:
            dataset = dataset.project(list(TAXI_ATTRIBUTES[:d]))
        else:
            dataset = dataset.widen_to(d)
    return dataset
