"""Datasets: the container type, generic generators and the paper's two
(synthetically reproduced) evaluation datasets."""

from .base import BinaryDataset
from .encoding import (
    BinaryEncodedDataset,
    CategoricalDomain,
    compact_binary_dimension,
    decode_compact,
    encode_compact,
    encode_onehot,
)
from .movielens import MOVIE_GENRES, MovieLensDataGenerator, make_movielens_dataset
from .synthetic import (
    independent_dataset,
    latent_class_dataset,
    skewed_dataset,
    uniform_dataset,
)
from .taxi import (
    DEPENDENT_PAIRS,
    INDEPENDENT_PAIRS,
    TAXI_ATTRIBUTES,
    TaxiDataGenerator,
    make_taxi_dataset,
)

__all__ = [
    "BinaryDataset",
    "uniform_dataset",
    "independent_dataset",
    "skewed_dataset",
    "latent_class_dataset",
    "TaxiDataGenerator",
    "make_taxi_dataset",
    "TAXI_ATTRIBUTES",
    "DEPENDENT_PAIRS",
    "INDEPENDENT_PAIRS",
    "MovieLensDataGenerator",
    "make_movielens_dataset",
    "MOVIE_GENRES",
    "CategoricalDomain",
    "BinaryEncodedDataset",
    "encode_compact",
    "decode_compact",
    "encode_onehot",
    "compact_binary_dimension",
]
