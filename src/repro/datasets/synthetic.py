"""Generic synthetic binary-data generators.

These generators exercise the full pipeline on controlled distributions:

* :func:`uniform_dataset` — independent fair coins (every marginal uniform);
* :func:`independent_dataset` — independent attributes with chosen biases;
* :func:`skewed_dataset` — a lightly/heavily skewed distribution over the
  full domain (a Zipf-like histogram over ``{0,1}^d``), used by the paper's
  frequency-oracle comparison (Figure 10);
* :func:`latent_class_dataset` — a mixture of product distributions, the
  standard way to plant controllable pairwise correlations; this is the
  machinery the taxi- and MovieLens-like generators are built on.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.domain import Domain
from ..core.exceptions import DatasetError
from ..core.rng import RngLike, ensure_rng
from .base import BinaryDataset

__all__ = [
    "uniform_dataset",
    "independent_dataset",
    "skewed_dataset",
    "latent_class_dataset",
]


def uniform_dataset(n: int, d: int, rng: RngLike = None) -> BinaryDataset:
    """``n`` records of ``d`` independent fair binary attributes."""
    return independent_dataset(n, [0.5] * d, rng=rng)


def independent_dataset(
    n: int, probabilities: Sequence[float], rng: RngLike = None,
    attribute_names: Optional[Sequence[str]] = None,
) -> BinaryDataset:
    """Independent binary attributes with per-attribute ``P[attr = 1]``."""
    if n <= 0:
        raise DatasetError(f"population size must be positive, got {n}")
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 1 or probs.size == 0:
        raise DatasetError("probabilities must be a non-empty 1-D sequence")
    if ((probs < 0) | (probs > 1)).any():
        raise DatasetError("attribute probabilities must lie in [0, 1]")
    generator = ensure_rng(rng)
    records = (generator.random((n, probs.size)) < probs).astype(np.int8)
    if attribute_names is None:
        return BinaryDataset.from_records(records)
    return BinaryDataset(Domain(attribute_names), records)


def skewed_dataset(
    n: int, d: int, skew: float = 1.1, rng: RngLike = None
) -> BinaryDataset:
    """A Zipf-like distribution over the full domain ``{0,1}^d``.

    Cell probabilities are proportional to ``rank^{-skew}`` with the rank
    order randomly permuted, giving the "lightly skewed" synthetic data used
    for the frequency-oracle comparison.  Larger ``skew`` concentrates more
    mass on a few heavy cells.
    """
    if n <= 0:
        raise DatasetError(f"population size must be positive, got {n}")
    if d <= 0:
        raise DatasetError(f"dimension must be positive, got {d}")
    if skew < 0:
        raise DatasetError(f"skew must be non-negative, got {skew}")
    generator = ensure_rng(rng)
    size = 1 << d
    weights = np.arange(1, size + 1, dtype=np.float64) ** (-skew)
    generator.shuffle(weights)
    probabilities = weights / weights.sum()
    indices = generator.choice(size, size=n, p=probabilities)
    return BinaryDataset.from_indices(indices, Domain.binary(d))


def latent_class_dataset(
    n: int,
    class_probabilities: Sequence[float],
    conditional_probabilities: np.ndarray,
    attribute_names: Optional[Sequence[str]] = None,
    rng: RngLike = None,
) -> BinaryDataset:
    """Mixture-of-products generator.

    Each record first draws a latent class ``c`` from ``class_probabilities``
    and then sets attribute ``j`` to 1 independently with probability
    ``conditional_probabilities[c, j]``.  Attributes that respond to the same
    latent classes become positively correlated; attributes that respond to
    different classes become negatively correlated.  This is the simplest
    mechanism that lets us plant the qualitative correlation structure the
    paper documents for its real datasets.
    """
    if n <= 0:
        raise DatasetError(f"population size must be positive, got {n}")
    class_probs = np.asarray(class_probabilities, dtype=np.float64)
    conditionals = np.asarray(conditional_probabilities, dtype=np.float64)
    if class_probs.ndim != 1 or class_probs.size == 0:
        raise DatasetError("class probabilities must be a non-empty 1-D sequence")
    if not np.isclose(class_probs.sum(), 1.0):
        raise DatasetError(
            f"class probabilities must sum to 1, got {class_probs.sum():.4f}"
        )
    if (class_probs < 0).any():
        raise DatasetError("class probabilities must be non-negative")
    if conditionals.ndim != 2 or conditionals.shape[0] != class_probs.size:
        raise DatasetError(
            "conditional probabilities must have shape (num_classes, d), got "
            f"{conditionals.shape}"
        )
    if ((conditionals < 0) | (conditionals > 1)).any():
        raise DatasetError("conditional probabilities must lie in [0, 1]")

    generator = ensure_rng(rng)
    classes = generator.choice(class_probs.size, size=n, p=class_probs)
    thresholds = conditionals[classes]
    records = (generator.random(thresholds.shape) < thresholds).astype(np.int8)
    if attribute_names is None:
        return BinaryDataset.from_records(records)
    return BinaryDataset(Domain(attribute_names), records)
