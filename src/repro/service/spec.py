"""Declarative, JSON-round-trippable protocol configurations.

A :class:`ProtocolSpec` is the out-of-band contract of the collection
service: the server publishes one, every client builds the identical
protocol from it (``spec.build()``), and any configuration disagreement is
caught as a *spec mismatch with a readable diff* instead of a deep
merge-signature error inside an accumulator.  The spec is a plain
dataclass — name, epsilon, workload width, per-protocol options — that
round-trips through ``to_dict``/``from_dict`` and ``to_json``/``from_json``
unchanged, so it can live in config files, HTTP headers or checkpoints.
"""

from __future__ import annotations

import inspect
import json
import operator
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from ..core.exceptions import ProtocolConfigurationError
from ..core.privacy import PrivacyBudget

__all__ = ["SPEC_FORMAT_VERSION", "ProtocolSpec"]

#: Version stamp carried by every serialized spec.  Bump on layout changes.
SPEC_FORMAT_VERSION = 1

_DICT_KEYS = frozenset({"format_version", "protocol", "epsilon", "max_width", "options"})


@dataclass(frozen=True)
class ProtocolSpec:
    """A complete, serializable description of one protocol configuration.

    Attributes
    ----------
    protocol:
        The paper name of the protocol (``"InpHT"``, ``"MargPS"``, ...).
    epsilon:
        The per-user privacy budget.
    max_width:
        The workload parameter ``k``.
    options:
        Extra constructor options (e.g. ``{"width": 512}`` for ``InpHTCMS``).

    The spec validates its own shape on construction; whether ``protocol``
    names a registered implementation (and whether ``options`` are accepted
    by it) is checked by :meth:`build`, so specs for unknown protocols can
    still be parsed, compared and diffed.
    """

    protocol: str
    epsilon: float
    max_width: int
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.protocol, str) or not self.protocol:
            raise ProtocolConfigurationError(
                f"spec protocol must be a non-empty string, got {self.protocol!r}"
            )
        try:
            epsilon = float(self.epsilon)
        except (TypeError, ValueError):
            raise ProtocolConfigurationError(
                f"spec epsilon must be a number, got {self.epsilon!r}"
            ) from None
        # PrivacyBudget owns the numeric validation (positive, finite).
        budget = PrivacyBudget(epsilon)
        object.__setattr__(self, "epsilon", budget.epsilon)
        if isinstance(self.max_width, bool):
            raise ProtocolConfigurationError(
                f"spec max_width must be an integer, got {self.max_width!r}"
            )
        try:
            max_width = operator.index(self.max_width)
        except TypeError:
            raise ProtocolConfigurationError(
                f"spec max_width must be an integer, got {self.max_width!r}"
            ) from None
        object.__setattr__(self, "max_width", max_width)
        if self.max_width < 1:
            raise ProtocolConfigurationError(
                f"spec max_width must be >= 1, got {self.max_width}"
            )
        if not isinstance(self.options, Mapping):
            raise ProtocolConfigurationError(
                f"spec options must be a mapping, got {type(self.options).__name__}"
            )
        options = dict(self.options)
        for key in options:
            if not isinstance(key, str):
                raise ProtocolConfigurationError(
                    f"spec option names must be strings, got {key!r}"
                )
        object.__setattr__(self, "options", options)

    @classmethod
    def from_protocol(cls, protocol) -> "ProtocolSpec":
        """The fully explicit spec of a live protocol instance.

        ``from_protocol(p).build()`` reconstructs a protocol configured
        identically to ``p``.  All of the protocol's options are spelled
        out, including ones left at their defaults.
        """
        return cls(
            protocol=protocol.name,
            epsilon=protocol.epsilon,
            max_width=protocol.max_width,
            options=protocol.spec_options(),
        )

    def build(self):
        """Instantiate the described protocol.

        Unknown protocol names and unknown constructor options raise
        :class:`~repro.core.exceptions.ProtocolConfigurationError` naming
        the protocol and the offending keys.
        """
        from ..protocols.registry import PROTOCOL_CLASSES, available_protocols

        try:
            protocol_class = PROTOCOL_CLASSES[self.protocol]
        except KeyError:
            raise ProtocolConfigurationError(
                f"unknown protocol {self.protocol!r}; available: "
                f"{available_protocols()}"
            ) from None
        accepted = self.accepted_options(protocol_class)
        unknown = sorted(set(self.options) - set(accepted))
        if unknown:
            raise ProtocolConfigurationError(
                f"protocol {self.protocol!r} does not accept the "
                f"option(s) {unknown}; valid options: {sorted(accepted)}"
            )
        budget = PrivacyBudget(self.epsilon)
        try:
            return protocol_class(budget, self.max_width, **self.options)
        except (TypeError, ValueError) as error:
            # Specs are often parsed from untrusted JSON; option values the
            # constructor cannot coerce must surface as configuration
            # errors, not raw tracebacks.
            raise ProtocolConfigurationError(
                f"protocol {self.protocol!r} rejected its options "
                f"{self.options!r}: {error}"
            ) from error

    def canonical(self) -> "ProtocolSpec":
        """The fully explicit equivalent of this spec.

        Options left at their defaults are spelled out (via
        :meth:`from_protocol` on the built instance), so two specs that
        build identically configured protocols have equal canonical forms —
        the comparison :meth:`AggregationSession.merge` relies on.
        """
        return ProtocolSpec.from_protocol(self.build())

    @staticmethod
    def accepted_options(protocol_class) -> List[str]:
        """Constructor keywords beyond the shared ``(budget, max_width)``.

        Public because it defines the ``options`` half of the machine-
        readable protocol listing (``repro list --json``) that external
        tooling validates configs against.
        """
        parameters = inspect.signature(protocol_class.__init__).parameters
        return [
            name
            for name, parameter in parameters.items()
            if name not in ("self", "budget", "max_width")
            and parameter.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        ]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-value form, stable under ``from_dict`` round trips."""
        return {
            "format_version": SPEC_FORMAT_VERSION,
            "protocol": self.protocol,
            "epsilon": self.epsilon,
            "max_width": self.max_width,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ProtocolSpec":
        """Parse a :meth:`to_dict` payload, rejecting malformed shapes."""
        if not isinstance(payload, Mapping):
            raise ProtocolConfigurationError(
                f"a protocol spec must be a mapping, got {type(payload).__name__}"
            )
        version = payload.get("format_version")
        if version != SPEC_FORMAT_VERSION:
            raise ProtocolConfigurationError(
                f"unsupported protocol-spec format version {version!r}; "
                f"this library speaks version {SPEC_FORMAT_VERSION}"
            )
        unexpected = sorted(set(payload) - _DICT_KEYS)
        if unexpected:
            raise ProtocolConfigurationError(
                f"protocol spec has unexpected field(s) {unexpected}; "
                f"expected {sorted(_DICT_KEYS)}"
            )
        missing = sorted(_DICT_KEYS - set(payload))
        if missing:
            raise ProtocolConfigurationError(
                f"protocol spec is missing field(s) {missing}"
            )
        max_width = payload["max_width"]
        if isinstance(max_width, float) and max_width.is_integer():
            max_width = int(max_width)
        return cls(
            protocol=payload["protocol"],
            epsilon=payload["epsilon"],
            max_width=max_width,
            options=payload["options"],
        )

    def to_json(self, indent: int = None) -> str:
        """Serialize to JSON (keys sorted, so equal specs serialize equally)."""
        try:
            return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        except (TypeError, ValueError) as error:
            raise ProtocolConfigurationError(
                f"protocol spec options are not JSON-serializable: {error}"
            ) from error

    @classmethod
    def from_json(cls, text: str) -> "ProtocolSpec":
        """Parse a :meth:`to_json` string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ProtocolConfigurationError(
                f"protocol spec is not valid JSON: {error}"
            ) from error
        return cls.from_dict(payload)

    def diff(self, other: "ProtocolSpec", ignore_options=frozenset()) -> List[str]:
        """Readable, per-field differences against another spec.

        Empty when the specs agree; otherwise one line per disagreement,
        options compared key by key.  This is the message body of every
        spec-mismatch error in the service layer.  ``ignore_options`` names
        option keys excluded from the comparison — the protocols'
        :meth:`~repro.protocols.base.MarginalReleaseProtocol.tuning_options`,
        pure performance knobs with no effect on the estimates.
        """
        if not isinstance(other, ProtocolSpec):
            raise ProtocolConfigurationError(
                f"can only diff against another ProtocolSpec, "
                f"got {type(other).__name__}"
            )
        lines: List[str] = []
        if self.protocol != other.protocol:
            lines.append(f"protocol: {self.protocol!r} != {other.protocol!r}")
        if self.epsilon != other.epsilon:
            lines.append(f"epsilon: {self.epsilon!r} != {other.epsilon!r}")
        if self.max_width != other.max_width:
            lines.append(f"max_width: {self.max_width} != {other.max_width}")
        for key in sorted(set(self.options) | set(other.options)):
            if key in ignore_options:
                continue
            if key not in self.options:
                lines.append(f"option {key!r}: absent != {other.options[key]!r}")
            elif key not in other.options:
                lines.append(f"option {key!r}: {self.options[key]!r} != absent")
            elif self.options[key] != other.options[key]:
                lines.append(
                    f"option {key!r}: {self.options[key]!r} != "
                    f"{other.options[key]!r}"
                )
        return lines

    def describe(self) -> str:
        """One-line human-readable summary (``InpHT(eps=1.099, k=2)``)."""
        details = [f"eps={self.epsilon:.4g}", f"k={self.max_width}"]
        details.extend(f"{key}={value!r}" for key, value in sorted(self.options.items()))
        return f"{self.protocol}({', '.join(details)})"
