"""The collection-service API: spec → wire → session.

This package is the deployment-shaped face of the library, mirroring how
production LDP collectors (Apple's HCMS deployment, RAPPOR-style pipelines)
are actually wired:

* :class:`ProtocolSpec` — a declarative, JSON-round-trippable protocol
  configuration that client and server agree on out-of-band
  (``spec.build()`` instantiates the protocol on either side);
* the **report wire codec** — every protocol's report batch serializes to a
  validated, versioned byte frame (``reports.to_bytes()`` /
  ``Reports.from_bytes()`` / ``protocol.decode_reports(buf)``), so reports
  cross process and machine boundaries without pickle;
* :class:`AggregationSession` — the long-lived server object: byte-level
  ``submit``, non-destructive mid-stream ``snapshot``, and
  ``checkpoint``/``restore`` so an aggregation survives process restarts
  and resumes bit-for-bit.

The simulation entry points (``run``/``run_streaming``, the sweep harness,
the CLI) are re-plumbed over the same layer, so the simulated and deployed
paths produce identical estimates by construction.
"""

from ..protocols.wire import (
    WIRE_FORMAT_VERSION,
    ReportField,
    ReportSchema,
    WireCodableReports,
    available_report_kinds,
    decode_reports,
    encode_reports,
    iter_report_frames,
    register_report_schema,
    report_schema_for,
    split_report_frames,
)
from .session import CHECKPOINT_FORMAT_VERSION, AggregationSession
from .spec import SPEC_FORMAT_VERSION, ProtocolSpec

__all__ = [
    # spec
    "ProtocolSpec",
    "SPEC_FORMAT_VERSION",
    # wire codec
    "WIRE_FORMAT_VERSION",
    "ReportField",
    "ReportSchema",
    "WireCodableReports",
    "available_report_kinds",
    "register_report_schema",
    "report_schema_for",
    "encode_reports",
    "decode_reports",
    "iter_report_frames",
    "split_report_frames",
    # session
    "AggregationSession",
    "CHECKPOINT_FORMAT_VERSION",
]
