"""Long-lived server-side aggregation sessions.

An :class:`AggregationSession` is the durable aggregator of the split
deployment: it is built from a :class:`~repro.service.ProtocolSpec` (the
out-of-band contract with the clients), ingests report batches either as
in-memory objects or as wire frames (:meth:`submit`), can be queried
mid-stream without consuming its state (:meth:`snapshot`), and survives
process restarts through :meth:`checkpoint`/:meth:`restore` — the restored
session resumes the aggregation bit-for-bit.

The checkpoint file is a single ``.npz`` archive: a JSON header (format
version, the spec, the domain's attribute names, session counters) next to
the accumulator's :meth:`~repro.protocols.base.Accumulator.state_dict`
arrays.  Nothing in it is pickled, so checkpoints are safe to load from
untrusted storage — a malformed file raises
:class:`~repro.core.exceptions.WireFormatError` instead of executing code.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from ..core.domain import Domain
from ..core.exceptions import (
    AggregationError,
    ProtocolConfigurationError,
    WireFormatError,
)
from ..observability import trace
from .spec import ProtocolSpec

__all__ = ["CHECKPOINT_FORMAT_VERSION", "AggregationSession"]

#: Version stamp carried by every checkpoint file.  Bump on layout changes.
#: Version 2 added the embedded SHA-256 integrity digest; version-1 files
#: (no digest) are still restored as legacy checkpoints.
CHECKPOINT_FORMAT_VERSION = 2

_SUPPORTED_CHECKPOINT_VERSIONS = (1, 2)

_HEADER_KEY = "header"
_STATE_PREFIX = "state__"

PathLike = Union[str, Path]


class AggregationSession:
    """A checkpointable aggregation over one protocol spec and domain.

    Parameters
    ----------
    spec:
        The collection contract — a :class:`ProtocolSpec`, or a live
        protocol instance (converted via
        :meth:`ProtocolSpec.from_protocol`).
    domain:
        The attribute domain the clients report over.
    """

    def __init__(self, spec, domain: Domain):
        if not isinstance(spec, ProtocolSpec):
            if not hasattr(spec, "spec_options"):
                raise ProtocolConfigurationError(
                    "an AggregationSession needs a ProtocolSpec or a protocol "
                    f"instance, got {type(spec).__name__}"
                )
            spec = ProtocolSpec.from_protocol(spec)
        if not isinstance(domain, Domain):
            raise ProtocolConfigurationError(
                f"an AggregationSession needs a Domain, got {type(domain).__name__}"
            )
        self._spec = spec
        self._domain = domain
        self._protocol = spec.build()
        self._accumulator = self._protocol.accumulator(domain)
        self._report_batches = 0
        self._wire_batches = 0
        self._wire_bytes = 0
        self._wire_reports = 0
        #: Application metadata carried by the checkpoint this session was
        #: restored from (``{}`` for a fresh session).  The topology tier
        #: stores collector identity and acknowledged-group tokens here.
        self.checkpoint_extra: Dict[str, Any] = {}

    @property
    def spec(self) -> ProtocolSpec:
        return self._spec

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def protocol(self):
        """The protocol instance built from the spec."""
        return self._protocol

    @property
    def num_reports(self) -> int:
        """User reports folded in so far (in-memory and wire submissions)."""
        return self._accumulator.num_reports

    @property
    def metadata(self) -> Dict[str, Any]:
        """Provenance counters of this session (a copy).

        ``wire_bytes_total`` sums the serialized size of every frame
        submitted through :meth:`submit` as bytes and ``wire_reports``
        counts the users those frames carried, which is how the service
        tracks real per-user communication against the paper's Table 2
        (``wire_bytes_per_report`` amortises the frame header over the
        batch).
        """
        return {
            "protocol": self._spec.protocol,
            "report_batches": self._report_batches,
            "wire_batches": self._wire_batches,
            "wire_reports": self._wire_reports,
            "wire_bytes_total": self._wire_bytes,
            "wire_bytes_per_report": (
                self._wire_bytes / self._wire_reports
                if self._wire_reports
                else None
            ),
        }

    def submit(self, reports) -> "AggregationSession":
        """Fold one report batch into the session; returns ``self``.

        ``reports`` is either the in-memory batch object produced by
        :meth:`~repro.protocols.base.MarginalReleaseProtocol.encode_batch`
        or its wire form (``bytes``) produced by ``to_bytes()``.  Wire
        frames are validated (magic, version, kind, field dtypes/shapes)
        before they touch the accumulator.
        """
        with trace.span("session.submit"):
            if isinstance(reports, (bytes, bytearray, memoryview)):
                frame = bytes(reports)
                decoded = self._protocol.decode_reports(frame)
                self._accumulator.update(decoded)
                self._wire_batches += 1
                self._wire_bytes += len(frame)
                self._wire_reports += int(decoded.num_users)
            else:
                self._accumulator.update(reports)
            self._report_batches += 1
        return self

    def submit_decoded(self, batches, *, wire_bytes: int = None) -> int:
        """Fold several already-decoded wire batches in as one update.

        The server's micro-batcher decodes frames from many connections
        off the wire, coalesces them here, and pays the accumulator
        ``update`` cost once.  The batches are concatenated with
        :func:`~repro.protocols.wire.concat_report_batches` — exact by the
        integer-sum argument documented there — so the session state is
        bit-for-bit what ``len(batches)`` individual :meth:`submit` calls
        would have produced.  Counters advance as if each batch had been
        submitted as a wire frame (``wire_bytes`` is the total serialized
        size of the coalesced frames, when known).  Returns the number of
        user reports folded in.
        """
        from ..protocols.wire import concat_report_batches

        batches = list(batches)
        if not batches:
            return 0
        with trace.span("session.submit_decoded") as span:
            combined = concat_report_batches(batches)
            users = int(combined.num_users)
            span.annotate(batches=len(batches), users=users)
            self._accumulator.update(combined)
            self._report_batches += len(batches)
            self._wire_batches += len(batches)
            self._wire_reports += users
            if wire_bytes is not None:
                self._wire_bytes += int(wire_bytes)
        return users

    def snapshot(self):
        """Current estimates without consuming or mutating session state.

        The accumulator's state is copied into a fresh accumulator and that
        copy is finalized, so ``snapshot`` can be called any number of
        times, mid-stream, and further :meth:`submit` calls keep working —
        repeated-finalize-safe by construction.
        """
        fresh = self._protocol.accumulator(self._domain)
        fresh.load_state(self._accumulator.state_dict())
        estimator = fresh.finalize()
        estimator.metadata.update(
            {
                "protocol": self._spec.protocol,
                "spec": self._spec.to_dict(),
                "session": self.metadata,
            }
        )
        return estimator

    def finalize(
        self,
        *,
        allow_partial: bool = False,
        expected_reports: Optional[int] = None,
    ):
        """Snapshot with coverage accounting against an expected count.

        With ``expected_reports`` set (the client side's acknowledged
        total), the estimator's metadata carries a
        :class:`~repro.resilience.CoverageReport` stating exactly how many
        reports arrived versus were expected and the error-bound inflation
        of any shortfall.  Strict mode (the default) raises
        :class:`~repro.core.exceptions.PartialCoverageError` instead of
        silently finalizing over fewer reports than were acknowledged;
        ``allow_partial=True`` finalizes anyway, report attached.
        """
        from ..resilience.coverage import (
            STATUS_LOST,
            STATUS_OK,
            CollectorCoverage,
            CoverageReport,
        )

        received = self.num_reports
        short = (
            expected_reports is not None and received < expected_reports
        )
        coverage = CoverageReport(
            collectors=[
                CollectorCoverage(
                    collector_id="session",
                    expected=expected_reports,
                    received=received,
                    status=STATUS_LOST if short else STATUS_OK,
                    detail=(
                        "fewer reports arrived than were acknowledged"
                        if short
                        else ""
                    ),
                )
            ]
        )
        if not allow_partial:
            coverage.raise_if_partial("finalize")
        estimator = self.snapshot()
        estimator.metadata["coverage"] = coverage.to_dict()
        return estimator

    def merge(self, other: "AggregationSession") -> "AggregationSession":
        """Absorb a peer session (e.g. another collector shard).

        Both sessions must describe the same collection — specs are
        compared in canonical form (defaults spelled out, pure performance
        knobs ignored) over the same domain; a mismatch raises
        :class:`AggregationError` carrying the readable spec diff.
        """
        if not isinstance(other, AggregationSession):
            raise AggregationError(
                f"can only merge another AggregationSession, "
                f"got {type(other).__name__}"
            )
        mismatch = ProtocolSpec.from_protocol(self._protocol).diff(
            ProtocolSpec.from_protocol(other._protocol),
            ignore_options=self._protocol.tuning_options(),
        )
        if mismatch:
            raise AggregationError(
                "cannot merge sessions built from different specs:\n  "
                + "\n  ".join(mismatch)
            )
        if other._domain != self._domain:
            raise AggregationError(
                f"cannot merge sessions over different domains: "
                f"{self._domain.attributes} != {other._domain.attributes}"
            )
        with trace.span("session.merge"):
            self._accumulator.merge(other._accumulator)
            self._report_batches += other._report_batches
            self._wire_batches += other._wire_batches
            self._wire_reports += other._wire_reports
            self._wire_bytes += other._wire_bytes
        return self

    def checkpoint_bytes(self, *, extra: Optional[Dict[str, Any]] = None) -> bytes:
        """The checkpoint archive as in-memory bytes (no file involved).

        Byte-for-byte the content :meth:`checkpoint` would have written,
        ready to ship over a wire (the topology tier's ``STATE`` frames) and
        to hand to :meth:`restore_bytes` on the other side.  ``extra`` is an
        optional JSON-serializable metadata object stored in the header and
        surfaced as :attr:`checkpoint_extra` after restore.
        """
        state = self._accumulator.state_dict()
        header = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "spec": self._spec.to_dict(),
            "attributes": list(self._domain.attributes),
            "session": {
                "report_batches": self._report_batches,
                "wire_batches": self._wire_batches,
                "wire_reports": self._wire_reports,
                "wire_bytes_total": self._wire_bytes,
            },
        }
        if extra is not None:
            if not isinstance(extra, dict):
                raise ProtocolConfigurationError(
                    f"checkpoint extra metadata must be a dict, "
                    f"got {type(extra).__name__}"
                )
            try:
                json.dumps(extra)
            except (TypeError, ValueError) as error:
                raise ProtocolConfigurationError(
                    f"checkpoint extra metadata is not JSON-serializable: "
                    f"{error}"
                ) from error
            header["extra"] = extra
        state_arrays = {
            key: np.asarray(value) for key, value in state.items()
        }
        # Stamp the header with a SHA-256 over the header itself plus every
        # state array (name, dtype, shape, bytes): np.savez stores members
        # uncompressed, so at-rest corruption that dodges the zip CRC is
        # still caught on restore and the file quarantined.
        from ..resilience.integrity import embed_integrity

        header = embed_integrity(header, state_arrays)
        arrays = {
            _STATE_PREFIX + key: value for key, value in state_arrays.items()
        }
        buffer = io.BytesIO()
        np.savez(
            buffer,
            **{_HEADER_KEY: np.array(json.dumps(header))},
            **arrays,
        )
        return buffer.getvalue()

    def checkpoint(
        self, path: PathLike, *, extra: Optional[Dict[str, Any]] = None
    ) -> Path:
        """Write the session (spec + domain + accumulator state) to ``path``.

        The file is self-contained: :meth:`restore` rebuilds an equivalent
        session in a fresh process and the resumed aggregation finalizes to
        estimates bit-for-bit identical to an uninterrupted run.  The write
        is atomic (temp file + ``os.replace``), so an interrupted
        checkpoint leaves the previous one intact.  ``extra`` is optional
        JSON metadata stored in the header (see :meth:`checkpoint_bytes`).
        """
        path = Path(path)
        with trace.span("session.checkpoint") as span:
            data = self.checkpoint_bytes(extra=extra)
            span.annotate(bytes=len(data))
            self._write_atomic(path, data)
        return path

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so a crash (or full disk) mid-write can never
        # destroy the previous checkpoint: the new bytes land in a sibling
        # temp file and only an atomic os.replace makes them visible.
        handle = tempfile.NamedTemporaryFile(
            mode="wb",
            dir=path.parent,
            prefix=path.name + ".",
            suffix=".tmp",
            delete=False,
        )
        temp_path = Path(handle.name)
        try:
            with handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            # NamedTemporaryFile creates 0600; give the checkpoint the same
            # umask-governed mode a plain open() would have produced, so
            # other-user readers (backup jobs, merge_checkpoints) keep
            # working across the atomic-write change.
            umask = os.umask(0)
            os.umask(umask)
            os.chmod(temp_path, 0o666 & ~umask)
            os.replace(temp_path, path)
        except BaseException:
            try:
                temp_path.unlink()
            except OSError:
                pass
            raise

    @classmethod
    def restore(cls, path: PathLike) -> "AggregationSession":
        """Rebuild a checkpointed session; the aggregation resumes exactly."""
        path = Path(path)
        with trace.span("session.restore"):
            return cls._restore_path(path)

    @classmethod
    def _restore_path(cls, path: Path) -> "AggregationSession":
        try:
            if path.is_file() and path.stat().st_size == 0:
                raise WireFormatError(
                    f"session checkpoint {path} is empty (zero bytes) — the "
                    f"write was interrupted before any data landed; restore "
                    f"from an earlier checkpoint or discard the file"
                )
            archive = np.load(path, allow_pickle=False)
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            raise WireFormatError(
                f"cannot read session checkpoint {path}: {error}"
            ) from error
        return cls._restore_archive(archive, str(path))

    @classmethod
    def restore_bytes(cls, data: bytes) -> "AggregationSession":
        """Rebuild a session from :meth:`checkpoint_bytes` output."""
        try:
            archive = np.load(io.BytesIO(bytes(data)), allow_pickle=False)
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            raise WireFormatError(
                f"cannot read session checkpoint <bytes>: {error}"
            ) from error
        return cls._restore_archive(archive, "<bytes>")

    @classmethod
    def _restore_archive(cls, archive, path: str) -> "AggregationSession":
        try:
            with archive:
                if _HEADER_KEY not in archive.files:
                    raise WireFormatError(
                        f"{path} is not a session checkpoint (no header entry)"
                    )
                try:
                    header = json.loads(str(archive[_HEADER_KEY][()]))
                except (json.JSONDecodeError, ValueError) as error:
                    raise WireFormatError(
                        f"session checkpoint {path} has a corrupted header: "
                        f"{error}"
                    ) from error
                version = header.get("format_version")
                if version not in _SUPPORTED_CHECKPOINT_VERSIONS:
                    raise WireFormatError(
                        f"session checkpoint {path} uses format version "
                        f"{version!r}; this library speaks version(s) "
                        f"{_SUPPORTED_CHECKPOINT_VERSIONS}"
                    )
                for field in ("spec", "attributes", "session"):
                    if field not in header:
                        raise WireFormatError(
                            f"session checkpoint {path} is missing the header "
                            f"field {field!r}"
                        )
                if not isinstance(header["session"], dict):
                    raise WireFormatError(
                        f"session checkpoint {path} has a corrupted 'session' "
                        f"header field (expected an object, got "
                        f"{type(header['session']).__name__})"
                    )
                try:
                    spec = ProtocolSpec.from_dict(header["spec"])
                    domain = Domain(header["attributes"])
                except (TypeError, ValueError) as error:
                    raise WireFormatError(
                        f"session checkpoint {path} has a corrupted header: "
                        f"{error}"
                    ) from error
                state = {
                    name[len(_STATE_PREFIX):]: archive[name]
                    for name in archive.files
                    if name.startswith(_STATE_PREFIX)
                }
        except zipfile.BadZipFile as error:
            # np.savez stores members uncompressed but zip still CRCs them,
            # so a flipped bit often surfaces here, on the member read —
            # not at np.load time.
            raise WireFormatError(
                f"session checkpoint {path} is corrupted: {error}"
            ) from error
        if "num_reports" not in state:
            raise WireFormatError(
                f"session checkpoint {path} carries no accumulator state"
            )
        extra = header.get("extra", {})
        if not isinstance(extra, dict):
            raise WireFormatError(
                f"session checkpoint {path} has a corrupted 'extra' header "
                f"field (expected an object, got {type(extra).__name__})"
            )
        # Integrity comes last so structural problems keep their specific
        # messages; a version-2 checkpoint must carry a digest and match it,
        # a version-1 legacy file simply has none to check.
        from ..resilience.integrity import verify_integrity

        verify_integrity(header, state, source=path, require=version >= 2)
        session = cls(spec, domain)
        session._accumulator.load_state(state)
        counters = header["session"]
        session._report_batches = int(counters.get("report_batches", 0))
        session._wire_batches = int(counters.get("wire_batches", 0))
        session._wire_reports = int(counters.get("wire_reports", 0))
        session._wire_bytes = int(counters.get("wire_bytes_total", 0))
        session.checkpoint_extra = extra
        return session

    def __repr__(self) -> str:
        return (
            f"AggregationSession(spec={self._spec.describe()}, "
            f"d={self._domain.dimension}, num_reports={self.num_reports})"
        )
