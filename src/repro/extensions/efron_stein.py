"""Efron–Stein orthogonal decomposition for categorical marginals.

Section 6.3 of the paper conjectures that the Hadamard-based approach
extends to non-binary attributes through the Efron–Stein decomposition: an
orthonormal tensor-product basis over a product of categorical domains in
which (a) the constant function is a basis element, and (b) any k-way
marginal is determined by the coefficients whose *support* (the set of
attributes on which the basis function is non-constant) lies inside the
marginal's attribute set — exactly the property Lemma 3.7 gives the Hadamard
basis for binary data.

This module implements that extension:

* :class:`AttributeBasis` — an orthonormal basis of ``R^r`` for one
  attribute, with the constant vector as its 0-th element (a Helmert-style
  construction);
* :class:`EfronSteinDecomposition` — the tensor-product basis over a
  :class:`~repro.datasets.encoding.CategoricalDomain`, with forward
  coefficients, marginal reconstruction, and the coefficient index sets
  needed for k-way workloads;
* :class:`InpES` — the ``InpHT`` analogue for categorical data: each user
  samples one low-order basis function, evaluates it on their record, and
  releases the (bounded) value through the standard one-bit mechanism.

For binary attributes (every cardinality 2) the decomposition coincides with
the Hadamard transform up to sign conventions, and ``InpES`` behaves like
``InpHT``; the unit tests check both facts.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import EncodingError, MarginalQueryError, ProtocolConfigurationError
from ..core.privacy import PrivacyBudget
from ..core.rng import RngLike, ensure_rng
from ..datasets.encoding import CategoricalDomain

__all__ = [
    "AttributeBasis",
    "EfronSteinDecomposition",
    "EfronSteinEstimator",
    "InpES",
]


@dataclass(frozen=True)
class AttributeBasis:
    """An orthonormal basis of ``R^r`` whose 0-th vector is constant.

    The rows of ``matrix`` are the basis vectors; row 0 is
    ``1/sqrt(r) * (1, ..., 1)`` and the remaining rows are the Helmert
    contrasts, so for any distribution ``p`` over the ``r`` categories the
    0-th coefficient is ``1/sqrt(r)`` times the total mass and the others
    measure deviations from uniformity.
    """

    cardinality: int
    matrix: np.ndarray

    @classmethod
    def helmert(cls, cardinality: int) -> "AttributeBasis":
        """The Helmert orthonormal basis for an ``r``-category attribute."""
        if cardinality < 2:
            raise EncodingError(f"cardinality must be >= 2, got {cardinality}")
        r = cardinality
        matrix = np.zeros((r, r), dtype=np.float64)
        matrix[0] = 1.0 / math.sqrt(r)
        for row in range(1, r):
            # Row `row` contrasts category `row` against categories 0..row-1.
            matrix[row, :row] = 1.0
            matrix[row, row] = -row
            matrix[row] /= math.sqrt(row * (row + 1))
        return cls(cardinality=r, matrix=matrix)

    def __post_init__(self):
        matrix = np.asarray(self.matrix, dtype=np.float64)
        if matrix.shape != (self.cardinality, self.cardinality):
            raise EncodingError(
                f"basis matrix must be {self.cardinality}x{self.cardinality}, "
                f"got {matrix.shape}"
            )
        object.__setattr__(self, "matrix", matrix)

    @property
    def max_absolute_value(self) -> float:
        """Largest |entry| of any non-constant basis vector (bounds user values)."""
        if self.cardinality == 1:
            return 0.0
        return float(np.abs(self.matrix[1:]).max())

    def is_orthonormal(self, tolerance: float = 1e-9) -> bool:
        gram = self.matrix @ self.matrix.T
        return bool(np.allclose(gram, np.eye(self.cardinality), atol=tolerance))


#: A coefficient of the tensor-product basis: one basis-vector index per
#: attribute (0 = the constant vector).  The *support* of the coefficient is
#: the set of attributes with a non-zero index.
CoefficientIndex = Tuple[int, ...]


class EfronSteinDecomposition:
    """The tensor-product (Efron–Stein) basis over a categorical domain."""

    def __init__(self, domain: CategoricalDomain):
        self._domain = domain
        self._bases = [AttributeBasis.helmert(card) for card in domain.cardinalities]

    @property
    def domain(self) -> CategoricalDomain:
        return self._domain

    @property
    def attribute_bases(self) -> List[AttributeBasis]:
        return list(self._bases)

    # ------------------------------------------------------------------ #
    # Coefficient index sets
    # ------------------------------------------------------------------ #
    def coefficient_indices(self, max_support: int) -> List[CoefficientIndex]:
        """All coefficients with non-constant part on at most ``max_support``
        attributes, excluding the all-constant coefficient (which is known)."""
        if not 1 <= max_support <= self._domain.dimension:
            raise MarginalQueryError(
                f"support width {max_support} outside [1, {self._domain.dimension}]"
            )
        indices: List[CoefficientIndex] = []
        attributes = range(self._domain.dimension)
        for support_size in range(1, max_support + 1):
            for support in itertools.combinations(attributes, support_size):
                ranges = [
                    range(1, self._domain.cardinalities[attribute])
                    for attribute in support
                ]
                for combination in itertools.product(*ranges):
                    index = [0] * self._domain.dimension
                    for attribute, basis_row in zip(support, combination):
                        index[attribute] = basis_row
                    indices.append(tuple(index))
        return indices

    def coefficients_for_marginal(
        self, attributes: Sequence[str]
    ) -> List[CoefficientIndex]:
        """Coefficients (including the constant one) a marginal depends on."""
        positions = [self._domain.index_of(name) for name in attributes]
        if not positions:
            raise MarginalQueryError("a marginal needs at least one attribute")
        ranges = []
        for attribute in range(self._domain.dimension):
            if attribute in positions:
                ranges.append(range(self._domain.cardinalities[attribute]))
            else:
                ranges.append(range(1))
        return [tuple(index) for index in itertools.product(*ranges)]

    # ------------------------------------------------------------------ #
    # Forward transform and evaluation
    # ------------------------------------------------------------------ #
    def basis_values(
        self, index: CoefficientIndex, records: np.ndarray
    ) -> np.ndarray:
        """Evaluate one (scaled) basis function on categorical records.

        The returned value for user ``i`` is
        ``prod_j sqrt(r_j) * basis_j[index_j, record_ij]`` — the scaling by
        ``sqrt(r_j)`` makes the constant factor contribute 1 (mirroring the
        scaled Hadamard coefficients), so a distribution's coefficient is the
        population mean of these per-user values.
        """
        records = np.asarray(records, dtype=np.int64)
        values = np.ones(records.shape[0], dtype=np.float64)
        for attribute, basis_row in enumerate(index):
            basis = self._bases[attribute]
            scale = math.sqrt(basis.cardinality)
            values *= scale * basis.matrix[basis_row][records[:, attribute]]
        return values

    def value_bound(self, index: CoefficientIndex) -> float:
        """An upper bound on |basis value| over all records (for the 1-bit mechanism)."""
        bound = 1.0
        for attribute, basis_row in enumerate(index):
            if basis_row == 0:
                continue
            basis = self._bases[attribute]
            bound *= math.sqrt(basis.cardinality) * float(
                np.abs(basis.matrix[basis_row]).max()
            )
        return bound

    def coefficients_of(self, records: np.ndarray, max_support: int) -> Dict[CoefficientIndex, float]:
        """Exact (non-private) low-order coefficients of the empirical distribution."""
        result: Dict[CoefficientIndex, float] = {
            tuple([0] * self._domain.dimension): 1.0
        }
        for index in self.coefficient_indices(max_support):
            result[index] = float(self.basis_values(index, records).mean())
        return result

    # ------------------------------------------------------------------ #
    # Marginal reconstruction
    # ------------------------------------------------------------------ #
    def marginal_from_coefficients(
        self,
        attributes: Sequence[str],
        coefficients: Mapping[CoefficientIndex, float],
    ) -> np.ndarray:
        """Reconstruct a categorical marginal from its coefficients.

        Returns an array of shape ``(r_{a1}, ..., r_{ak})`` estimating the
        joint distribution of the named attributes.
        """
        positions = [self._domain.index_of(name) for name in attributes]
        cards = [self._domain.cardinalities[p] for p in positions]
        result = np.zeros(cards, dtype=np.float64)
        for index in self.coefficients_for_marginal(attributes):
            if index not in coefficients:
                raise MarginalQueryError(
                    f"missing Efron-Stein coefficient {index} for marginal "
                    f"{list(attributes)}"
                )
            weight = float(coefficients[index])
            # The contribution of this basis function to each marginal cell is
            # the product over the marginal's attributes of
            # basis_j[index_j, cell_j] / sqrt(r_j) (the constant attributes
            # integrate out to exactly 1 under the scaling used above).
            factors = []
            for position, cardinality in zip(positions, cards):
                basis = self._bases[position]
                factors.append(basis.matrix[index[position]] * math.sqrt(cardinality))
            outer = factors[0]
            for factor in factors[1:]:
                outer = np.multiply.outer(outer, factor)
            cell_count = float(np.prod(cards))
            result += weight * outer / cell_count
        return result


class EfronSteinEstimator:
    """Answers categorical marginal queries from estimated ES coefficients."""

    def __init__(
        self,
        decomposition: EfronSteinDecomposition,
        coefficients: Mapping[CoefficientIndex, float],
        max_width: int,
    ):
        self._decomposition = decomposition
        self._coefficients = dict(coefficients)
        constant = tuple([0] * decomposition.domain.dimension)
        self._coefficients.setdefault(constant, 1.0)
        self._max_width = int(max_width)

    @property
    def coefficients(self) -> Dict[CoefficientIndex, float]:
        return dict(self._coefficients)

    @property
    def max_width(self) -> int:
        return self._max_width

    def query(self, attributes: Sequence[str]) -> np.ndarray:
        """Estimate the joint distribution of the named categorical attributes."""
        if not 1 <= len(attributes) <= self._max_width:
            raise MarginalQueryError(
                f"marginal width {len(attributes)} outside [1, {self._max_width}]"
            )
        return self._decomposition.marginal_from_coefficients(
            attributes, self._coefficients
        )


class InpES:
    """Sampled Efron–Stein coefficient release for categorical data.

    The categorical analogue of ``InpHT``: each user samples one basis
    function with support of size at most ``max_width``, evaluates it on
    their record (a value bounded by the basis-dependent constant ``B``), and
    releases it through the standard epsilon-LDP one-bit mechanism
    (stochastic rounding to ``{-B, +B}`` followed by randomized response).
    The aggregator averages and de-biases per coefficient and reconstructs
    any requested categorical marginal.
    """

    name = "InpES"

    def __init__(self, budget: PrivacyBudget, max_width: int = 2):
        if not isinstance(budget, PrivacyBudget):
            budget = PrivacyBudget(float(budget))
        if max_width < 1:
            raise ProtocolConfigurationError(
                f"max marginal width must be >= 1, got {max_width}"
            )
        self._budget = budget
        self._max_width = int(max_width)

    @property
    def budget(self) -> PrivacyBudget:
        return self._budget

    @property
    def max_width(self) -> int:
        return self._max_width

    def run(
        self,
        records: np.ndarray,
        domain: CategoricalDomain,
        rng: RngLike = None,
    ) -> EfronSteinEstimator:
        """Simulate the protocol over categorical ``records`` (shape ``(N, d)``)."""
        generator = ensure_rng(rng)
        records = np.asarray(records, dtype=np.int64)
        if records.ndim != 2 or records.shape[1] != domain.dimension:
            raise ProtocolConfigurationError(
                f"records must have shape (N, {domain.dimension}), got {records.shape}"
            )
        if records.shape[0] == 0:
            raise ProtocolConfigurationError("need at least one record")
        if self._max_width > domain.dimension:
            raise ProtocolConfigurationError(
                f"workload width {self._max_width} exceeds the domain's "
                f"{domain.dimension} attributes"
            )

        decomposition = EfronSteinDecomposition(domain)
        indices = decomposition.coefficient_indices(self._max_width)
        n = records.shape[0]
        keep = self._budget.rr_keep_probability()
        attenuation = 2.0 * keep - 1.0

        choices = generator.integers(0, len(indices), size=n)
        sums = np.zeros(len(indices), dtype=np.float64)
        counts = np.zeros(len(indices), dtype=np.int64)
        uniforms_round = generator.random(n)
        uniforms_flip = generator.random(n)

        # Evaluate, round and flip coefficient-by-coefficient (vectorised over
        # the users who sampled that coefficient).
        for position, index in enumerate(indices):
            members = np.flatnonzero(choices == position)
            if members.size == 0:
                continue
            bound = decomposition.value_bound(index)
            values = decomposition.basis_values(index, records[members])
            # Stochastic rounding to {-B, +B}: E[bit * B] = value.
            p_positive = 0.5 * (1.0 + values / bound)
            bits = np.where(uniforms_round[members] < p_positive, 1.0, -1.0)
            # Randomized response on the sign bit.
            flipped = np.where(uniforms_flip[members] < keep, bits, -bits)
            sums[position] = float((flipped * bound).sum())
            counts[position] = members.size

        coefficients: Dict[CoefficientIndex, float] = {}
        for position, index in enumerate(indices):
            if counts[position] == 0:
                coefficients[index] = 0.0
            else:
                coefficients[index] = float(
                    sums[position] / counts[position] / attenuation
                )
        return EfronSteinEstimator(decomposition, coefficients, self._max_width)

    def communication_bits(self, domain: CategoricalDomain) -> int:
        """Bits to name the sampled coefficient plus one bit for its value."""
        decomposition = EfronSteinDecomposition(domain)
        count = len(decomposition.coefficient_indices(self._max_width))
        return max(1, (count - 1).bit_length()) + 1
