"""Extensions beyond the paper's core protocols.

Currently: the Efron–Stein orthogonal decomposition and the ``InpES``
protocol, realising the categorical-data extension the paper sketches in
Section 6.3 ("Orthogonal Decomposition").
"""

from .efron_stein import (
    AttributeBasis,
    EfronSteinDecomposition,
    EfronSteinEstimator,
    InpES,
)

__all__ = [
    "AttributeBasis",
    "EfronSteinDecomposition",
    "EfronSteinEstimator",
    "InpES",
]
