"""Privacy budget accounting for local differential privacy.

The protocols in this library consume an epsilon budget in one of two ways:

* **sampling** — each user reveals a single randomly chosen piece of
  information at full epsilon (the paper's preferred pattern), or
* **splitting** — the budget is divided across ``m`` simultaneous releases,
  each run at ``epsilon / m`` (sequential composition; used by the Fanti et
  al. EM baseline and by the "budget splitting" ablation).

:class:`PrivacyBudget` wraps a validated epsilon and centralises the standard
probability settings of the randomized-response family so the conversions
(``e^eps / (1 + e^eps)`` and friends) live in exactly one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .exceptions import PrivacyBudgetError

__all__ = [
    "PrivacyBudget",
    "rr_keep_probability",
    "grr_keep_probability",
    "oue_probabilities",
]


def rr_keep_probability(epsilon: float) -> float:
    """Symmetric randomized-response keep probability ``e^eps / (1 + e^eps)``.

    A single bit reported with this probability (and flipped otherwise)
    satisfies epsilon-LDP.
    """
    if epsilon <= 0:
        raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
    return math.exp(epsilon) / (1.0 + math.exp(epsilon))


def grr_keep_probability(epsilon: float, domain_size: int) -> float:
    """Generalised randomized response (a.k.a. preferential sampling / direct
    encoding) probability of reporting the true category.

    The true value is reported with probability ``e^eps / (e^eps + m - 1)``
    and each of the ``m - 1`` other values with the remaining mass divided
    evenly, which meets epsilon-LDP (Fact 3.1 of the paper).
    """
    if epsilon <= 0:
        raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
    if domain_size < 2:
        raise PrivacyBudgetError(f"domain size must be >= 2, got {domain_size}")
    exp_eps = math.exp(epsilon)
    return exp_eps / (exp_eps + domain_size - 1)


def oue_probabilities(epsilon: float) -> tuple:
    """Wang et al.'s optimised unary-encoding probabilities ``(p, q)``.

    ``p`` is the probability of keeping a 1-bit set, ``q`` the probability of
    flipping a 0-bit to 1.  With ``p = 1/2`` and ``q = 1 / (e^eps + 1)`` the
    per-bit ratio is ``p(1-q) / (q(1-p)) = e^eps``, so perturbing the whole
    sparse unary vector meets epsilon-LDP while minimising estimator variance.
    """
    if epsilon <= 0:
        raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
    return 0.5, 1.0 / (math.exp(epsilon) + 1.0)


@dataclass(frozen=True)
class PrivacyBudget:
    """A validated epsilon-LDP budget.

    Attributes
    ----------
    epsilon:
        The local differential privacy parameter.  Must be a positive finite
        float; typical deployed values are well below 4.
    """

    epsilon: float

    def __post_init__(self):
        eps = float(self.epsilon)
        if not math.isfinite(eps) or eps <= 0:
            raise PrivacyBudgetError(
                f"epsilon must be a positive finite number, got {self.epsilon!r}"
            )
        object.__setattr__(self, "epsilon", eps)

    @classmethod
    def from_exp(cls, exp_epsilon: float) -> "PrivacyBudget":
        """Build a budget from ``e^epsilon`` (the paper often sets ``e^eps = 3``)."""
        if exp_epsilon <= 1.0:
            raise PrivacyBudgetError(
                f"e^epsilon must exceed 1, got {exp_epsilon}"
            )
        return cls(math.log(exp_epsilon))

    @property
    def exp_epsilon(self) -> float:
        """``e^epsilon``."""
        return math.exp(self.epsilon)

    def split(self, parts: int) -> "PrivacyBudget":
        """Sequential-composition split of the budget into ``parts`` releases.

        Each of the ``parts`` simultaneous releases may be run with the
        returned budget and their composition satisfies the original epsilon.
        """
        if parts <= 0:
            raise PrivacyBudgetError(f"cannot split a budget into {parts} parts")
        return PrivacyBudget(self.epsilon / parts)

    def halve(self) -> "PrivacyBudget":
        """Convenience for the epsilon/2 per-bit budget used by parallel RR."""
        return self.split(2)

    def rr_keep_probability(self) -> float:
        """Symmetric randomized-response keep probability at this budget."""
        return rr_keep_probability(self.epsilon)

    def grr_keep_probability(self, domain_size: int) -> float:
        """Generalised RR keep probability over ``domain_size`` categories."""
        return grr_keep_probability(self.epsilon, domain_size)

    def oue_probabilities(self) -> tuple:
        """Optimised unary-encoding ``(p, q)`` at this budget."""
        return oue_probabilities(self.epsilon)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrivacyBudget(epsilon={self.epsilon:.4f})"
