"""Core substrate: bit algebra, Hadamard transforms, domains, marginals.

Everything in :mod:`repro.core` is deterministic, protocol-agnostic machinery
that the LDP protocols (:mod:`repro.protocols`) and analyses
(:mod:`repro.analysis`) are built on.
"""

from .domain import Domain
from .exceptions import (
    AggregationError,
    ConvergenceError,
    DatasetError,
    DomainError,
    EncodingError,
    MarginalQueryError,
    PrivacyBudgetError,
    ProtocolConfigurationError,
    ReproError,
)
from .marginals import (
    MarginalTable,
    MarginalWorkload,
    full_distribution_from_indices,
    marginal_from_indices,
    marginal_operator,
    marginalize,
    max_absolute_error,
    total_variation_distance,
)
from .privacy import PrivacyBudget
from .rng import ensure_rng, spawn_rngs

__all__ = [
    "Domain",
    "PrivacyBudget",
    "MarginalTable",
    "MarginalWorkload",
    "marginal_operator",
    "marginal_from_indices",
    "marginalize",
    "full_distribution_from_indices",
    "total_variation_distance",
    "max_absolute_error",
    "ensure_rng",
    "spawn_rngs",
    "ReproError",
    "DomainError",
    "PrivacyBudgetError",
    "MarginalQueryError",
    "ProtocolConfigurationError",
    "AggregationError",
    "DatasetError",
    "EncodingError",
    "ConvergenceError",
]
