"""Bit-vector algebra over the Boolean hypercube ``{0,1}^d``.

The paper indexes everything — user records, marginal identifiers ``beta``,
marginal cells ``gamma`` and Hadamard coefficients ``alpha`` — by elements of
``{0,1}^d`` represented here as Python/numpy integers whose binary expansion
gives the attribute pattern.  Bit ``j`` (value ``1 << j``) corresponds to
attribute ``j``.

This module provides the small but heavily used algebra on those masks:

* ``popcount`` — the weight ``|beta|`` of a mask (number of attributes);
* the subset relation ``alpha ⪯ beta`` (written ``is_subset``);
* enumeration of submasks of a mask and of all masks of a given weight;
* compression/expansion between the ``d``-bit index space of the full domain
  and the ``k``-bit index space of a marginal over the attributes in ``beta``;
* parity inner products ``<i, j>`` used by the Hadamard transform.

Everything is vectorised so that a whole population of ``N`` user indices can
be processed with a handful of numpy operations.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from .backends import (
    HAS_BITWISE_COUNT,
    _popcount_swar,
    resolve_backend,
)

__all__ = [
    "popcount",
    "popcount_reference",
    "parity",
    "parity_reference",
    "inner_product_sign",
    "is_subset",
    "submasks",
    "strict_submasks",
    "masks_of_weight",
    "masks_up_to_weight",
    "bit_positions",
    "mask_from_positions",
    "compress_index",
    "expand_index",
    "compress_indices",
    "expand_indices",
    "iterate_assignments",
]


def popcount(values):
    """Number of set bits of ``values`` (scalar int or integer array).

    Array inputs go through the selected kernel backend
    (:func:`repro.core.backends.resolve_backend`): the numpy backend uses
    ``np.bitwise_count`` where available and a SWAR fold over 64-bit words
    otherwise; the threaded backend chunks large arrays over a thread pool
    (:func:`popcount_reference` keeps the original one-bit-per-pass loop
    for conformance testing).  Plain Python ints defer to
    ``int.bit_count``.
    """
    if np.isscalar(values) and not isinstance(values, np.generic):
        return int(values).bit_count()
    arr = np.asarray(values)
    if arr.dtype == object:
        return np.vectorize(lambda v: int(v).bit_count(), otypes=[np.int64])(arr)
    words = arr.astype(np.uint64)
    count = resolve_backend().popcount(words)
    return count if count.shape else int(count)


def popcount_reference(values):
    """Reference popcount: shift-and-mask, one bit per full-array pass.

    This is the pre-optimisation implementation, retained as the ground
    truth the vectorised :func:`popcount` is proven against (and the
    baseline ``benchmarks/bench_kernels.py`` times the fast path over).
    """
    if np.isscalar(values) and not isinstance(values, np.generic):
        return int(values).bit_count()
    arr = np.asarray(values)
    if arr.dtype == object:
        return np.vectorize(lambda v: int(v).bit_count(), otypes=[np.int64])(arr)
    arr = arr.astype(np.uint64, copy=True)
    count = np.zeros(arr.shape, dtype=np.int64)
    while np.any(arr):
        count += (arr & np.uint64(1)).astype(np.int64)
        arr >>= np.uint64(1)
    return count if count.shape else int(count)


def parity(values):
    """Parity (0/1) of the number of set bits in ``values``.

    Arrays are folded with six XOR shifts (no popcount needed) by the
    selected kernel backend; scalars use ``int.bit_count``.
    """
    if np.isscalar(values) and not isinstance(values, np.generic):
        return int(values).bit_count() & 1
    arr = np.asarray(values)
    if arr.dtype == object:
        return popcount(arr) & 1
    result = resolve_backend().parity(arr.astype(np.uint64))
    return result if result.shape else int(result)


def parity_reference(values):
    """Reference parity via :func:`popcount_reference`, for conformance."""
    return popcount_reference(values) & 1


def inner_product_sign(i, j):
    """The Hadamard sign ``(-1)^{<i, j>}`` where ``<i,j> = popcount(i & j)``.

    Accepts scalars or arrays (broadcasting like numpy); returns ``+1``/``-1``
    as ``int`` or ``int8`` array.
    """
    if np.isscalar(i) and np.isscalar(j):
        return 1 - 2 * (popcount(int(i) & int(j)) & 1)
    i_arr = np.asarray(i, dtype=np.int64)
    j_arr = np.asarray(j, dtype=np.int64)
    par = parity(i_arr & j_arr)
    return (1 - 2 * par).astype(np.int8)


def is_subset(alpha, beta) -> bool:
    """Whether ``alpha ⪯ beta``: every set bit of ``alpha`` is set in ``beta``."""
    if np.isscalar(alpha) and np.isscalar(beta):
        return (int(alpha) & int(beta)) == int(alpha)
    alpha_arr = np.asarray(alpha, dtype=np.int64)
    beta_arr = np.asarray(beta, dtype=np.int64)
    return (alpha_arr & beta_arr) == alpha_arr


def submasks(beta: int) -> Iterator[int]:
    """Yield every submask of ``beta`` (including 0 and ``beta`` itself).

    Uses the classic ``sub = (sub - 1) & beta`` enumeration, which visits the
    ``2^{|beta|}`` submasks in decreasing numeric order before yielding 0.
    """
    beta = int(beta)
    sub = beta
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & beta


def strict_submasks(beta: int) -> Iterator[int]:
    """Yield every submask of ``beta`` except ``beta`` itself."""
    for sub in submasks(beta):
        if sub != beta:
            yield sub


def masks_of_weight(d: int, k: int) -> List[int]:
    """All masks in ``{0,1}^d`` with exactly ``k`` set bits, ascending.

    This is the set of identifiers of the ``C(d, k)`` distinct k-way
    marginals over ``d`` attributes.
    """
    if k < 0 or k > d:
        return []
    if k == 0:
        return [0]
    masks: List[int] = []
    # Gosper's hack: iterate over k-subsets of a d-bit universe in order.
    mask = (1 << k) - 1
    limit = 1 << d
    while mask < limit:
        masks.append(mask)
        c = mask & -mask
        r = mask + c
        mask = (((r ^ mask) >> 2) // c) | r
    return masks


def masks_up_to_weight(d: int, k: int, include_zero: bool = False) -> List[int]:
    """All masks in ``{0,1}^d`` with weight between 1 (or 0) and ``k``.

    With ``include_zero=False`` this is the paper's coefficient set
    ``T = {alpha : 1 <= |alpha| <= k}`` of size ``sum_{l=1..k} C(d, l)``.
    """
    masks: List[int] = [0] if include_zero else []
    for weight in range(1, min(k, d) + 1):
        masks.extend(masks_of_weight(d, weight))
    return masks


def bit_positions(mask: int) -> List[int]:
    """The sorted list of positions of set bits in ``mask``."""
    mask = int(mask)
    positions: List[int] = []
    pos = 0
    while mask:
        if mask & 1:
            positions.append(pos)
        mask >>= 1
        pos += 1
    return positions


def mask_from_positions(positions: Sequence[int]) -> int:
    """Build a mask from an iterable of bit positions."""
    mask = 0
    for pos in positions:
        if pos < 0:
            raise ValueError(f"bit position must be non-negative, got {pos}")
        mask |= 1 << int(pos)
    return mask


def compress_index(index: int, beta: int) -> int:
    """Project a d-bit ``index`` onto the attributes of ``beta``.

    The result is a ``|beta|``-bit integer whose bit ``r`` equals the bit of
    ``index`` at the position of the ``r``-th set bit of ``beta`` (from least
    significant).  In the paper's notation this maps the cell
    ``gamma = index AND beta`` of a marginal to its position in the compact
    ``2^k`` representation of that marginal.
    """
    index = int(index)
    beta = int(beta)
    result = 0
    out_bit = 0
    pos = 0
    while beta >> pos:
        if (beta >> pos) & 1:
            if (index >> pos) & 1:
                result |= 1 << out_bit
            out_bit += 1
        pos += 1
    return result


def expand_index(compact: int, beta: int) -> int:
    """Inverse of :func:`compress_index`: scatter a ``|beta|``-bit value back
    onto the bit positions of ``beta`` inside ``{0,1}^d``."""
    compact = int(compact)
    beta = int(beta)
    result = 0
    in_bit = 0
    pos = 0
    while beta >> pos:
        if (beta >> pos) & 1:
            if (compact >> in_bit) & 1:
                result |= 1 << pos
            in_bit += 1
        pos += 1
    return result


def compress_indices(indices, beta: int) -> np.ndarray:
    """Vectorised :func:`compress_index` over an integer array."""
    indices = np.asarray(indices, dtype=np.int64)
    beta = int(beta)
    result = np.zeros(indices.shape, dtype=np.int64)
    out_bit = 0
    pos = 0
    while beta >> pos:
        if (beta >> pos) & 1:
            result |= ((indices >> pos) & 1) << out_bit
            out_bit += 1
        pos += 1
    return result


def expand_indices(compacts, beta: int) -> np.ndarray:
    """Vectorised :func:`expand_index` over an integer array."""
    compacts = np.asarray(compacts, dtype=np.int64)
    beta = int(beta)
    result = np.zeros(compacts.shape, dtype=np.int64)
    in_bit = 0
    pos = 0
    while beta >> pos:
        if (beta >> pos) & 1:
            result |= ((compacts >> in_bit) & 1) << pos
            in_bit += 1
        pos += 1
    return result


def iterate_assignments(beta: int) -> Iterator[int]:
    """Yield the ``2^{|beta|}`` cells ``gamma ⪯ beta`` of marginal ``beta``.

    Cells are produced in the order of their compact index, i.e. the ``r``-th
    yielded value is ``expand_index(r, beta)``.
    """
    k = popcount(beta)
    for compact in range(1 << k):
        yield expand_index(compact, beta)
