"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration problems from runtime ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class DomainError(ReproError):
    """A domain description is invalid (e.g. zero attributes, bad names)."""


class PrivacyBudgetError(ReproError):
    """An epsilon value or budget split is invalid (non-positive, NaN...)."""


class MarginalQueryError(ReproError):
    """A marginal query is malformed or outside the supported workload."""


class ProtocolConfigurationError(ReproError):
    """A protocol was configured with inconsistent parameters."""


class AggregationError(ReproError):
    """Aggregation failed, e.g. reports are missing or have the wrong shape."""


class WireFormatError(ReproError):
    """A serialized report frame or checkpoint cannot be decoded.

    Raised for truncated/corrupted buffers, wire-format version mismatches,
    unknown report kinds and payloads whose fields fail dtype/shape
    validation."""


class CheckpointIntegrityError(WireFormatError):
    """A checkpoint's embedded SHA-256 digest does not match its content.

    The file parsed, but its state arrays (or header) were altered after
    the write — a torn disk, a bit flip, or tampering.  The resilience
    layer quarantines such files to ``*.corrupt`` instead of folding bad
    state into an aggregation."""


class SpoolError(ReproError):
    """A client report spool cannot be read or appended.

    Raised when the append-only frame log is corrupted beyond its torn
    tail (mid-log damage) or an append/commit cannot be made durable."""


class CircuitOpenError(ReproError):
    """A circuit breaker is open: the target is failing too fast to retry.

    Raised instead of attempting a delivery while the per-target breaker
    is in its cooldown window; carries the address so callers can consult
    a failover oracle or wait for the half-open probe."""

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class PartialCoverageError(ReproError):
    """A finalize would silently drop acknowledged reports.

    Raised by strict-mode finalize paths when collectors are lost or the
    received report count falls short of what was expected; carries the
    :class:`~repro.resilience.CoverageReport` describing the gap."""

    def __init__(self, message: str, coverage=None):
        super().__init__(message)
        self.coverage = coverage


class ExecutionError(ReproError):
    """A parallel execution backend failed or was driven incorrectly."""


class CollectionServiceError(ReproError):
    """A network collection exchange failed (rejection, protocol violation).

    Raised on the client side of the collection service when the server
    rejects the spec handshake, answers out of protocol, or disappears
    mid-session."""


class DatasetError(ReproError):
    """A dataset is malformed (wrong dtype, wrong width, empty...)."""


class EncodingError(ReproError):
    """Categorical-to-binary encoding failed or was given bad cardinalities."""


class ConvergenceError(ReproError):
    """An iterative estimator (e.g. EM decoding) failed to converge."""
