"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration problems from runtime ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class DomainError(ReproError):
    """A domain description is invalid (e.g. zero attributes, bad names)."""


class PrivacyBudgetError(ReproError):
    """An epsilon value or budget split is invalid (non-positive, NaN...)."""


class MarginalQueryError(ReproError):
    """A marginal query is malformed or outside the supported workload."""


class ProtocolConfigurationError(ReproError):
    """A protocol was configured with inconsistent parameters."""


class AggregationError(ReproError):
    """Aggregation failed, e.g. reports are missing or have the wrong shape."""


class WireFormatError(ReproError):
    """A serialized report frame or checkpoint cannot be decoded.

    Raised for truncated/corrupted buffers, wire-format version mismatches,
    unknown report kinds and payloads whose fields fail dtype/shape
    validation."""


class ExecutionError(ReproError):
    """A parallel execution backend failed or was driven incorrectly."""


class CollectionServiceError(ReproError):
    """A network collection exchange failed (rejection, protocol violation).

    Raised on the client side of the collection service when the server
    rejects the spec handshake, answers out of protocol, or disappears
    mid-session."""


class DatasetError(ReproError):
    """A dataset is malformed (wrong dtype, wrong width, empty...)."""


class EncodingError(ReproError):
    """Categorical-to-binary encoding failed or was given bad cardinalities."""


class ConvergenceError(ReproError):
    """An iterative estimator (e.g. EM decoding) failed to converge."""
