"""Description of the (binary) attribute domain.

A :class:`Domain` names the ``d`` binary attributes of a dataset and provides
the translation between attribute names and the bit masks used throughout the
library.  All protocols, datasets and analyses share one ``Domain`` object so
that "the marginal over ``(CC, Tip)``" and "the marginal ``beta = 0b...``"
always refer to the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from . import bitops
from .exceptions import DomainError, MarginalQueryError

__all__ = ["Domain"]

_MAX_ATTRIBUTES = 30


@dataclass(frozen=True)
class Domain:
    """An ordered collection of named binary attributes.

    Parameters
    ----------
    attributes:
        Attribute names; position ``j`` in this tuple corresponds to bit ``j``
        (value ``1 << j``) in every mask.
    """

    attributes: Tuple[str, ...]

    def __init__(self, attributes: Sequence[str]):
        names = tuple(str(name) for name in attributes)
        if not names:
            raise DomainError("a domain needs at least one attribute")
        if len(names) > _MAX_ATTRIBUTES:
            raise DomainError(
                f"domains above {_MAX_ATTRIBUTES} binary attributes are not "
                f"supported (got {len(names)}); the full contingency table "
                "would not fit in memory"
            )
        if len(set(names)) != len(names):
            raise DomainError(f"attribute names must be unique, got {names}")
        object.__setattr__(self, "attributes", names)

    @classmethod
    def binary(cls, d: int, prefix: str = "attr") -> "Domain":
        """A domain of ``d`` anonymous binary attributes ``attr0..attr{d-1}``."""
        if d <= 0:
            raise DomainError(f"dimension must be positive, got {d}")
        return cls([f"{prefix}{j}" for j in range(d)])

    @property
    def dimension(self) -> int:
        """Number of binary attributes ``d``."""
        return len(self.attributes)

    @property
    def size(self) -> int:
        """Size of the full contingency table, ``2^d``."""
        return 1 << self.dimension

    @property
    def full_mask(self) -> int:
        """The mask selecting every attribute (the d-way marginal)."""
        return self.size - 1

    def index_of(self, attribute: str) -> int:
        """Bit position of a named attribute."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise DomainError(
                f"unknown attribute {attribute!r}; domain has {self.attributes}"
            ) from None

    def mask_of(self, attributes: Iterable[str] | str | int) -> int:
        """Translate attribute names (or a ready-made mask) into a mask.

        Accepts a single name, an iterable of names, or an integer mask which
        is validated and passed through.
        """
        if isinstance(attributes, (int,)):
            mask = int(attributes)
            if mask < 0 or mask >= self.size:
                raise MarginalQueryError(
                    f"mask {mask} outside the domain of dimension {self.dimension}"
                )
            return mask
        if isinstance(attributes, str):
            attributes = [attributes]
        return bitops.mask_from_positions(self.index_of(name) for name in attributes)

    def names_of(self, mask: int) -> List[str]:
        """Attribute names selected by ``mask``, in bit order."""
        mask = self.mask_of(mask)
        return [self.attributes[pos] for pos in bitops.bit_positions(mask)]

    def validate_marginal(self, beta: int, max_width: int | None = None) -> int:
        """Check that ``beta`` identifies a non-trivial marginal of this domain."""
        beta = self.mask_of(beta)
        if beta == 0:
            raise MarginalQueryError("the empty marginal (beta=0) is trivial")
        width = bitops.popcount(beta)
        if max_width is not None and width > max_width:
            raise MarginalQueryError(
                f"marginal {self.names_of(beta)} has width {width}, but the "
                f"protocol only supports up to {max_width}-way marginals"
            )
        return beta

    def all_marginals(self, k: int) -> List[int]:
        """Masks of all ``C(d, k)`` k-way marginals."""
        if k <= 0 or k > self.dimension:
            raise MarginalQueryError(
                f"marginal width k={k} outside [1, d={self.dimension}]"
            )
        return bitops.masks_of_weight(self.dimension, k)

    def full_kway_workload(self, k: int) -> List[int]:
        """Masks of the *full* set of k-way marginals: every width 1..k."""
        if k <= 0 or k > self.dimension:
            raise MarginalQueryError(
                f"marginal width k={k} outside [1, d={self.dimension}]"
            )
        return bitops.masks_up_to_weight(self.dimension, k)

    def __len__(self) -> int:
        return self.dimension

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Domain(d={self.dimension}, attributes={list(self.attributes)})"
