"""Pluggable kernel backends for the library's bit-level hot loops.

The decode-side cost of the reproduction concentrates in a handful of
array kernels: the OLH support-count scan (``O(N * 2^d)``, the ``InpOLH``
bottleneck) and the popcount/parity folds behind the Hadamard machinery.
This module makes those kernels *swappable*: every implementation is a
:class:`KernelBackend` registered by name, and callers pick one through
:func:`resolve_backend` — explicit argument first, then the
``REPRO_KERNEL_BACKEND`` environment variable, then the process-wide
default (:func:`set_default_backend`), then an automatic choice.

Three backends ship:

* ``numpy`` — the reference-conformant blocked numpy implementation (the
  exact kernels proven against their references by the property suite).
* ``threaded`` — the same numpy kernels fanned out over a thread pool.
  numpy releases the GIL inside its ufunc loops, so user-partitioned
  support counting and chunked popcount/parity scale with cores while
  staying bit-for-bit identical (integer partial sums add exactly).
* ``numba`` — an optional JIT backend (``pip install .[fast]``) that
  compiles the support-count scan with ``prange`` over domain elements.
  When numba is absent the backend reports itself unavailable and
  selection falls back to ``numpy`` with a logged warning.

Every backend computes *identical* integer support counts — backend
choice is a pure performance knob and is treated exactly like
``decode_batch_size`` by the protocol layer (excluded from equality and
merge-signature comparisons).

This module is self-contained on purpose (numpy + exceptions only): it
*owns* the splitmix64 avalanche and the SWAR popcount so that both
``repro.core.bitops`` and ``repro.mechanisms.local_hashing`` can import
from here without circular imports.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

import numpy as np

from ..observability import get_registry, trace
from .exceptions import ProtocolConfigurationError

__all__ = [
    "BACKEND_ENV_VAR",
    "HAS_BITWISE_COUNT",
    "HAS_NUMBA",
    "KernelBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "NumbaBackend",
    "available_backends",
    "registered_backends",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "fold_buckets",
]

_logger = logging.getLogger(__name__)

#: Environment variable consulted by :func:`resolve_backend` when no
#: explicit backend name is passed.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Whether this numpy ships the hardware-popcount ufunc (numpy >= 2.0).
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

try:  # pragma: no cover - exercised only in the optional-deps CI job
    import numba  # type: ignore

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - the default environment
    numba = None
    HAS_NUMBA = False


# --------------------------------------------------------------------- #
# shared scalar kernels (single definitions; everything imports these)

#: The (value, seed) pair is mixed as ``value + seed * _SEED_MIX`` before
#: the avalanche, so decode loops can hoist the per-seed term out of their
#: domain scans.
_SEED_MIX = np.uint64(0x9E3779B97F4A7C15)


def _avalanche(mixed: np.ndarray) -> np.ndarray:
    """The seed-independent splitmix64 finaliser (in-place on ``mixed``).

    The single definition of the OLH hash's bit mixing, shared by the
    client-side encoder and every backend's support-count scan — the two
    must agree exactly or support counts degrade to noise.
    """
    with np.errstate(over="ignore"):
        mixed ^= mixed >> np.uint64(30)
        mixed *= np.uint64(0xBF58476D1CE4E5B9)
        mixed ^= mixed >> np.uint64(27)
        mixed *= np.uint64(0x94D049BB133111EB)
        mixed ^= mixed >> np.uint64(31)
    return mixed


def fold_buckets(mixed: np.ndarray, num_buckets: int) -> np.ndarray:
    """Reduce avalanched ``uint64`` words onto ``[0, num_buckets)`` in place.

    For a power-of-two bucket count (the common case: the variance-optimal
    ``g = floor(e^eps) + 1`` is 4 for the paper's ``eps = ln 3``) the
    modulo is a bit mask, which avoids the slow vectorised 64-bit integer
    division.  ``x & (g - 1) == x % g`` exactly for unsigned ``x``, so the
    fast path is bit-identical, and both the client-side hash and every
    backend fold through this one helper so they cannot drift apart.
    """
    buckets = int(num_buckets)
    if buckets & (buckets - 1) == 0:
        mixed &= np.uint64(buckets - 1)
    else:
        mixed %= np.uint64(buckets)
    return mixed


# SWAR (SIMD-within-a-register) popcount constants for 64-bit words.
_SWAR_M1 = np.uint64(0x5555555555555555)
_SWAR_M2 = np.uint64(0x3333333333333333)
_SWAR_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_SWAR_H01 = np.uint64(0x0101010101010101)


def _popcount_swar(words: np.ndarray) -> np.ndarray:
    """Branch-free popcount of a ``uint64`` array in five vector passes.

    The classic parallel bit-count: fold adjacent 1-, 2- and 4-bit fields
    into byte-wise counts, then sum the eight bytes with one overflowing
    multiply.  Used when :data:`HAS_BITWISE_COUNT` is false.
    """
    x = words.astype(np.uint64, copy=True)
    x -= (x >> np.uint64(1)) & _SWAR_M1
    x = (x & _SWAR_M2) + ((x >> np.uint64(2)) & _SWAR_M2)
    x = (x + (x >> np.uint64(4))) & _SWAR_M4
    with np.errstate(over="ignore"):
        x *= _SWAR_H01
    return (x >> np.uint64(56)).astype(np.int64)


#: Target element count of one (user block x domain block) intermediate of
#: the blocked support-count scan.
_DECODE_BLOCK_ELEMENTS = 1 << 20


# --------------------------------------------------------------------- #
# backends


class KernelBackend:
    """One implementation of the library's array hot-loop kernels.

    All methods receive pre-validated inputs (the public entry points in
    ``bitops``/``local_hashing`` own coercion and shape checks) and must
    return results bit-for-bit identical to :class:`NumpyBackend`.
    """

    #: Registry key; also what ``REPRO_KERNEL_BACKEND`` selects.
    name: str = "abstract"

    @property
    def available(self) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    def popcount(self, words: np.ndarray) -> np.ndarray:
        """Set-bit count of a ``uint64`` array, as ``int64``."""
        raise NotImplementedError

    def parity(self, words: np.ndarray) -> np.ndarray:
        """Set-bit parity (0/1) of a ``uint64`` array, as ``int64``."""
        raise NotImplementedError

    def support_counts(
        self,
        seeds: np.ndarray,
        noisy_buckets: np.ndarray,
        domain_size: int,
        num_buckets: int,
        batch_size: int,
    ) -> np.ndarray:
        """OLH per-element support counts as an ``int64`` array.

        ``support[x]`` is the number of users whose noisy bucket equals
        their hash of ``x`` — an exact integer count, so any partition of
        the users (blocks, threads, processes) sums to the same result.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class NumpyBackend(KernelBackend):
    """The reference-conformant blocked numpy kernels (the default)."""

    name = "numpy"

    def popcount(self, words: np.ndarray) -> np.ndarray:
        if HAS_BITWISE_COUNT:
            return np.bitwise_count(words).astype(np.int64)
        return _popcount_swar(words)

    def parity(self, words: np.ndarray) -> np.ndarray:
        x = words
        for shift in (32, 16, 8, 4, 2, 1):
            x = x ^ (x >> np.uint64(shift))
        return (x & np.uint64(1)).astype(np.int64)

    def support_counts(
        self, seeds, noisy_buckets, domain_size, num_buckets, batch_size
    ) -> np.ndarray:
        with trace.span("kernel.support_counts") as span:
            span.annotate(backend=self.name, users=int(seeds.shape[0]))
            with np.errstate(over="ignore"):
                offsets = seeds.astype(np.uint64) * _SEED_MIX
            targets = noisy_buckets.astype(np.uint64)
            return self._scan(
                offsets, targets, domain_size, num_buckets, batch_size
            )

    @staticmethod
    def _scan(offsets, targets, domain_size, num_buckets, batch_size):
        """The cache-blocked scan over (domain blocks x user blocks).

        Runs entirely in ``uint64`` (no signed round-trip copy of the hash
        matrix), with the per-seed mixing offset hoisted out of the domain
        loop and matches accumulated into a lean ``int64`` counter.  Also
        the per-thread work unit of :class:`ThreadedBackend`.
        """
        num_users = offsets.shape[0]
        user_block = max(1, _DECODE_BLOCK_ELEMENTS // batch_size)
        support = np.zeros(domain_size, dtype=np.int64)
        for dstart in range(0, domain_size, batch_size):
            dstop = min(dstart + batch_size, domain_size)
            candidates = np.arange(dstart, dstop, dtype=np.uint64)[None, :]
            for ustart in range(0, num_users, user_block):
                ustop = min(ustart + user_block, num_users)
                with np.errstate(over="ignore"):
                    mixed = _avalanche(candidates + offsets[ustart:ustop, None])
                    fold_buckets(mixed, num_buckets)
                matches = mixed == targets[ustart:ustop, None]
                support[dstart:dstop] += np.count_nonzero(matches, axis=0)
        return support


class ThreadedBackend(KernelBackend):
    """The numpy kernels fanned out over a shared thread pool.

    Support counts partition the *users* across workers: each thread runs
    the full-domain blocked scan over its user slice and the ``int64``
    partials are summed — exact, because integer addition is associative
    and commutative.  popcount/parity chunk the input array the same way.
    Small inputs (below :attr:`min_work_elements` total work) skip the
    pool entirely; thread fan-out costs more than it saves there.
    """

    name = "threaded"

    #: Minimum total work (elements touched) before threads pay off.
    min_work_elements = 1 << 21

    def __init__(self, max_workers: Optional[int] = None):
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._numpy = NumpyBackend()

    @property
    def workers(self) -> int:
        return self._max_workers or min(8, os.cpu_count() or 1)

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-kernel"
            )
        return self._pool

    def _slices(self, total: int) -> Tuple[slice, ...]:
        workers = min(self.workers, total)
        step = -(-total // workers)
        return tuple(
            slice(start, min(start + step, total))
            for start in range(0, total, step)
        )

    def popcount(self, words: np.ndarray) -> np.ndarray:
        if words.size < self.min_work_elements or words.ndim != 1:
            return self._numpy.popcount(words)
        parts = self._executor().map(
            lambda part: self._numpy.popcount(part),
            [words[chunk] for chunk in self._slices(words.shape[0])],
        )
        return np.concatenate(list(parts))

    def parity(self, words: np.ndarray) -> np.ndarray:
        if words.size < self.min_work_elements or words.ndim != 1:
            return self._numpy.parity(words)
        parts = self._executor().map(
            lambda part: self._numpy.parity(part),
            [words[chunk] for chunk in self._slices(words.shape[0])],
        )
        return np.concatenate(list(parts))

    def support_counts(
        self, seeds, noisy_buckets, domain_size, num_buckets, batch_size
    ) -> np.ndarray:
        num_users = seeds.shape[0]
        if num_users * domain_size < self.min_work_elements or num_users < 2:
            return self._numpy.support_counts(
                seeds, noisy_buckets, domain_size, num_buckets, batch_size
            )
        with trace.span("kernel.support_counts") as span:
            span.annotate(backend=self.name, users=int(num_users))
            with np.errstate(over="ignore"):
                offsets = seeds.astype(np.uint64) * _SEED_MIX
            targets = noisy_buckets.astype(np.uint64)
            partials = self._executor().map(
                lambda chunk: NumpyBackend._scan(
                    offsets[chunk],
                    targets[chunk],
                    domain_size,
                    num_buckets,
                    batch_size,
                ),
                self._slices(num_users),
            )
            support = np.zeros(domain_size, dtype=np.int64)
            for partial in partials:
                support += partial
            return support


class NumbaBackend(KernelBackend):
    """Optional numba-JIT support-count scan, ``prange`` over the domain.

    Each parallel iteration owns one domain element's counter, so no
    cross-thread reduction is needed and the counts are exact.  popcount
    and parity reuse the numpy kernels (they are already memory-bound).
    Unavailable (and skipped by :func:`resolve_backend` with a warning)
    unless numba is installed — ``pip install .[fast]``.
    """

    name = "numba"

    def __init__(self):
        self._kernel = None
        self._numpy = NumpyBackend()

    @property
    def available(self) -> bool:
        return HAS_NUMBA

    def popcount(self, words: np.ndarray) -> np.ndarray:
        return self._numpy.popcount(words)

    def parity(self, words: np.ndarray) -> np.ndarray:
        return self._numpy.parity(words)

    def _compiled(self):  # pragma: no cover - optional-deps CI job only
        if self._kernel is None:
            if not HAS_NUMBA:
                raise ProtocolConfigurationError(
                    "the numba kernel backend needs numba installed "
                    "(pip install .[fast])"
                )

            @numba.njit(parallel=True, nogil=True, cache=False)
            def scan(offsets, targets, domain_size, buckets, mask, use_mask):
                support = np.zeros(domain_size, dtype=np.int64)
                for d in numba.prange(domain_size):
                    element = np.uint64(d)
                    count = 0
                    for u in range(offsets.shape[0]):
                        x = element + offsets[u]
                        x ^= x >> np.uint64(30)
                        x *= np.uint64(0xBF58476D1CE4E5B9)
                        x ^= x >> np.uint64(27)
                        x *= np.uint64(0x94D049BB133111EB)
                        x ^= x >> np.uint64(31)
                        if use_mask:
                            x &= mask
                        else:
                            x %= buckets
                        if x == targets[u]:
                            count += 1
                    support[d] = count
                return support

            self._kernel = scan
        return self._kernel

    def support_counts(
        self, seeds, noisy_buckets, domain_size, num_buckets, batch_size
    ) -> np.ndarray:  # pragma: no cover - optional-deps CI job only
        with np.errstate(over="ignore"):
            offsets = seeds.astype(np.uint64) * _SEED_MIX
        targets = noisy_buckets.astype(np.uint64)
        buckets = int(num_buckets)
        use_mask = buckets & (buckets - 1) == 0
        return self._compiled()(
            offsets,
            targets,
            domain_size,
            np.uint64(buckets),
            np.uint64(buckets - 1),
            use_mask,
        )


# --------------------------------------------------------------------- #
# registry and selection

_BACKENDS: Dict[str, KernelBackend] = {}
_DEFAULT_OVERRIDE: Optional[str] = None
_WARNED: set = set()

_DISPATCH_COUNTER = None


def _count_dispatch(backend_name: str) -> None:
    """One resolved kernel dispatch, labelled by the backend that won."""
    global _DISPATCH_COUNTER
    if _DISPATCH_COUNTER is None:
        _DISPATCH_COUNTER = get_registry().counter(
            "repro_kernel_dispatch_total",
            "Kernel-backend resolutions, by winning backend.",
            labels=("backend",),
        )
    _DISPATCH_COUNTER.labels(backend=backend_name).inc()


def _register(backend: KernelBackend) -> KernelBackend:
    _BACKENDS[backend.name] = backend
    return backend


_register(NumpyBackend())
_register(ThreadedBackend())
_register(NumbaBackend())


def registered_backends() -> Tuple[str, ...]:
    """Every registered backend name, available or not (sorted)."""
    return tuple(sorted(_BACKENDS))


def available_backends() -> Tuple[str, ...]:
    """The backend names that can run in this environment (sorted)."""
    return tuple(
        sorted(name for name, backend in _BACKENDS.items() if backend.available)
    )


def get_backend(name: str) -> KernelBackend:
    """The backend registered under ``name`` (must exist and be available)."""
    backend = _BACKENDS.get(name)
    if backend is None:
        raise ProtocolConfigurationError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{list(registered_backends())}"
        )
    if not backend.available:
        raise ProtocolConfigurationError(
            f"kernel backend {name!r} is not available in this environment "
            f"(pip install .[fast]); available: {list(available_backends())}"
        )
    return backend


def _auto_backend() -> KernelBackend:
    if (os.cpu_count() or 1) > 1:
        return _BACKENDS["threaded"]
    return _BACKENDS["numpy"]


def _warn_once(name: str, message: str) -> None:
    if name not in _WARNED:
        _WARNED.add(name)
        _logger.warning(message)


def resolve_backend(name: str = "") -> KernelBackend:
    """Pick the kernel backend for one call.

    Selection order: the explicit ``name`` argument (a protocol's
    ``kernel_backend`` tuning option), then the ``REPRO_KERNEL_BACKEND``
    environment variable, then the process-wide default installed by
    :func:`set_default_backend`, then automatic (``threaded`` on
    multi-core hosts, ``numpy`` otherwise).  ``"auto"`` at any level
    selects the automatic choice; an unknown or unavailable name logs a
    warning (once per name) and falls through to the next level instead
    of failing — backend choice must never break an aggregation.
    """
    candidates = (
        (name, "requested"),
        (os.environ.get(BACKEND_ENV_VAR, ""), f"${BACKEND_ENV_VAR}"),
        (_DEFAULT_OVERRIDE or "", "default"),
    )
    for candidate, source in candidates:
        if not candidate:
            continue
        if candidate == "auto":
            backend = _auto_backend()
            _count_dispatch(backend.name)
            return backend
        backend = _BACKENDS.get(candidate)
        if backend is None:
            _warn_once(
                candidate,
                f"unknown kernel backend {candidate!r} ({source}); known "
                f"backends: {list(registered_backends())} — falling back",
            )
            continue
        if not backend.available:
            _warn_once(
                candidate,
                f"kernel backend {candidate!r} ({source}) is not available "
                f"in this environment (pip install .[fast]) — falling back",
            )
            continue
        _count_dispatch(backend.name)
        return backend
    backend = _auto_backend()
    _count_dispatch(backend.name)
    return backend


def set_default_backend(name: Optional[str]) -> None:
    """Install a process-wide default backend (``None``/``""`` clears it).

    The name must be registered (``"auto"`` is allowed); availability is
    still checked at :func:`resolve_backend` time so an env-specific
    default degrades gracefully instead of failing at configuration time.
    """
    global _DEFAULT_OVERRIDE
    if not name:
        _DEFAULT_OVERRIDE = None
        return
    if name != "auto" and name not in _BACKENDS:
        raise ProtocolConfigurationError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{list(registered_backends())}"
        )
    _DEFAULT_OVERRIDE = name


@contextmanager
def use_backend(name: str):
    """Temporarily install ``name`` as the process-wide default backend."""
    global _DEFAULT_OVERRIDE
    previous = _DEFAULT_OVERRIDE
    set_default_backend(name)
    try:
        yield resolve_backend()
    finally:
        _DEFAULT_OVERRIDE = previous
