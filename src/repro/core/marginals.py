"""Marginal tables and the marginal operator ``C_beta``.

The paper treats the population as a normalised histogram ``t`` over
``{0,1}^d`` and defines the marginal operator (Definition 3.2)

    C_beta(t)[gamma] = sum_{eta : eta AND beta = gamma} t[eta]     for gamma ⪯ beta

This module provides that operator (both from the dense histogram and
directly from per-user indices), a :class:`MarginalTable` value type holding
one reconstructed marginal, the workload abstraction for "the full set of
k-way marginals", and the error metrics used throughout the evaluation
(total variation distance, maximum absolute cell error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from . import bitops
from .domain import Domain
from .exceptions import MarginalQueryError

__all__ = [
    "MarginalTable",
    "marginal_operator",
    "marginal_from_indices",
    "marginalize",
    "full_distribution_from_indices",
    "total_variation_distance",
    "max_absolute_error",
    "MarginalWorkload",
]


@dataclass(frozen=True)
class MarginalTable:
    """One marginal table over the attributes selected by ``beta``.

    Attributes
    ----------
    domain:
        The domain the marginal lives in.
    beta:
        Mask of the ``k`` attributes the marginal covers.
    values:
        Length ``2^k`` array of (estimated or exact) frequencies, indexed by
        the compact cell index (bit ``r`` of the index is the value of the
        ``r``-th selected attribute).
    """

    domain: Domain
    beta: int
    values: np.ndarray

    def __post_init__(self):
        beta = self.domain.validate_marginal(self.beta)
        values = np.asarray(self.values, dtype=np.float64)
        expected = 1 << bitops.popcount(beta)
        if values.shape != (expected,):
            raise MarginalQueryError(
                f"marginal over {self.domain.names_of(beta)} needs {expected} "
                f"cells, got array of shape {values.shape}"
            )
        object.__setattr__(self, "beta", beta)
        object.__setattr__(self, "values", values)

    @property
    def width(self) -> int:
        """Number of attributes ``k`` in the marginal."""
        return bitops.popcount(self.beta)

    @property
    def attribute_names(self) -> List[str]:
        """Names of the attributes the marginal covers."""
        return self.domain.names_of(self.beta)

    def cell(self, assignment: Mapping[str, int]) -> float:
        """Value of the cell for a named assignment, e.g. ``{"CC": 1, "Tip": 0}``."""
        names = self.attribute_names
        if set(assignment) != set(names):
            raise MarginalQueryError(
                f"assignment must cover exactly {names}, got {sorted(assignment)}"
            )
        compact = 0
        for position, name in enumerate(names):
            bit = int(assignment[name])
            if bit not in (0, 1):
                raise MarginalQueryError(
                    f"attribute {name!r} must be 0 or 1, got {assignment[name]!r}"
                )
            compact |= bit << position
        return float(self.values[compact])

    def normalized(self) -> "MarginalTable":
        """Project onto the probability simplex (clip at 0, renormalise).

        The unbiased LDP estimators can produce slightly negative cells or a
        total different from 1; analyses that need a proper distribution
        (e.g. mutual information) use this projection.
        """
        clipped = np.clip(self.values, 0.0, None)
        total = clipped.sum()
        if total <= 0:
            clipped = np.full_like(clipped, 1.0 / clipped.size)
        else:
            clipped = clipped / total
        return MarginalTable(self.domain, self.beta, clipped)

    def counts(self, population: int) -> np.ndarray:
        """Scale frequencies to expected counts for a population of given size."""
        if population <= 0:
            raise MarginalQueryError(f"population must be positive, got {population}")
        return self.values * float(population)

    def marginalize(self, sub_beta: int) -> "MarginalTable":
        """Aggregate this marginal down to a sub-marginal ``sub_beta ⪯ beta``."""
        sub_beta = self.domain.mask_of(sub_beta)
        if not bitops.is_subset(sub_beta, self.beta):
            raise MarginalQueryError(
                f"{self.domain.names_of(sub_beta)} is not a subset of "
                f"{self.attribute_names}"
            )
        if sub_beta == 0:
            raise MarginalQueryError("cannot marginalise to the empty marginal")
        k = self.width
        sub_values = np.zeros(1 << bitops.popcount(sub_beta), dtype=np.float64)
        for compact in range(1 << k):
            full_index = bitops.expand_index(compact, self.beta)
            sub_compact = bitops.compress_index(full_index & sub_beta, sub_beta)
            sub_values[sub_compact] += self.values[compact]
        return MarginalTable(self.domain, sub_beta, sub_values)

    def total_variation_distance(self, other: "MarginalTable") -> float:
        """Total variation distance to another marginal over the same ``beta``."""
        if other.beta != self.beta:
            raise MarginalQueryError(
                "cannot compare marginals over different attribute sets"
            )
        return total_variation_distance(self.values, other.values)

    def to_dict(self) -> Dict[Tuple[int, ...], float]:
        """Mapping from attribute-value tuples (in attribute order) to cell values."""
        k = self.width
        result: Dict[Tuple[int, ...], float] = {}
        for compact in range(1 << k):
            key = tuple((compact >> r) & 1 for r in range(k))
            result[key] = float(self.values[compact])
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MarginalTable({'/'.join(self.attribute_names)}, "
            f"values={np.round(self.values, 4).tolist()})"
        )


def full_distribution_from_indices(indices: np.ndarray, size: int) -> np.ndarray:
    """Normalised histogram over ``{0,1}^d`` from per-user one-hot positions."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        raise MarginalQueryError("cannot build a distribution from zero users")
    if indices.min() < 0 or indices.max() >= size:
        raise MarginalQueryError(
            f"user indices must lie in [0, {size}), got range "
            f"[{indices.min()}, {indices.max()}]"
        )
    counts = np.bincount(indices, minlength=size).astype(np.float64)
    return counts / indices.size


def marginal_operator(distribution: np.ndarray, beta: int, domain: Domain) -> MarginalTable:
    """Apply the marginal operator ``C_beta`` to a dense distribution."""
    beta = domain.validate_marginal(beta)
    distribution = np.asarray(distribution, dtype=np.float64)
    if distribution.shape != (domain.size,):
        raise MarginalQueryError(
            f"distribution must have length {domain.size}, got {distribution.shape}"
        )
    cells = bitops.compress_indices(np.arange(domain.size) & beta, beta)
    values = np.bincount(cells, weights=distribution, minlength=1 << bitops.popcount(beta))
    return MarginalTable(domain, beta, values)


def marginal_from_indices(indices: np.ndarray, beta: int, domain: Domain) -> MarginalTable:
    """Exact (non-private) marginal computed directly from user indices."""
    beta = domain.validate_marginal(beta)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        raise MarginalQueryError("cannot compute a marginal of zero users")
    cells = bitops.compress_indices(indices & beta, beta)
    k = bitops.popcount(beta)
    counts = np.bincount(cells, minlength=1 << k).astype(np.float64)
    return MarginalTable(domain, beta, counts / indices.size)


def marginalize(table: MarginalTable, sub_beta: int) -> MarginalTable:
    """Module-level alias of :meth:`MarginalTable.marginalize`."""
    return table.marginalize(sub_beta)


def total_variation_distance(first: np.ndarray, second: np.ndarray) -> float:
    """Total variation distance ``0.5 * ||p - q||_1`` between two cell vectors."""
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise MarginalQueryError(
            f"cannot compare vectors of shapes {first.shape} and {second.shape}"
        )
    return 0.5 * float(np.abs(first - second).sum())


def max_absolute_error(first: np.ndarray, second: np.ndarray) -> float:
    """Largest absolute per-cell error between two cell vectors."""
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise MarginalQueryError(
            f"cannot compare vectors of shapes {first.shape} and {second.shape}"
        )
    return float(np.abs(first - second).max())


@dataclass(frozen=True)
class MarginalWorkload:
    """The set of marginals an aggregator promises to answer.

    The paper's data-collection model gathers enough information to answer
    *every* marginal of width at most ``k`` ("the full set of k-way
    marginals"); this class enumerates that workload and validates queries
    against it.
    """

    domain: Domain
    max_width: int

    def __post_init__(self):
        if self.max_width <= 0 or self.max_width > self.domain.dimension:
            raise MarginalQueryError(
                f"workload width {self.max_width} outside "
                f"[1, {self.domain.dimension}]"
            )

    @property
    def dimension(self) -> int:
        return self.domain.dimension

    def marginals(self, width: int | None = None) -> List[int]:
        """Masks in the workload; optionally restricted to one exact width."""
        if width is None:
            return self.domain.full_kway_workload(self.max_width)
        if width <= 0 or width > self.max_width:
            raise MarginalQueryError(
                f"width {width} outside the workload's range [1, {self.max_width}]"
            )
        return self.domain.all_marginals(width)

    def __contains__(self, beta: int) -> bool:
        try:
            beta = self.domain.mask_of(beta)
        except MarginalQueryError:
            return False
        width = bitops.popcount(beta)
        return 1 <= width <= self.max_width

    def validate(self, beta: int) -> int:
        """Validate a query mask against the workload and return it."""
        beta = self.domain.validate_marginal(beta, max_width=self.max_width)
        return beta

    def __len__(self) -> int:
        return len(self.marginals())
