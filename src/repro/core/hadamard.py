"""Hadamard (Walsh--Fourier) transform substrate.

The discrete Fourier transform over the Boolean hypercube is the engine
behind the paper's strongest protocols (``InpHT`` and ``MargHT``).  For a
vector ``t`` indexed by ``{0,1}^d`` the (orthonormal) Hadamard transform is

    theta[alpha] = 2^{-d/2} * sum_eta (-1)^{<alpha, eta>} t[eta]

Throughout the library we prefer the *scaled* coefficients

    Theta[alpha] = 2^{d/2} * theta[alpha] = sum_eta (-1)^{<alpha, eta>} t[eta]

because for a normalised distribution ``t`` (``sum t = 1``) every scaled
coefficient lies in ``[-1, 1]`` and ``Theta[0] == 1``, and for a single user's
one-hot input the coefficient is exactly ``(-1)^{<alpha, j>}`` — the single
``{-1,+1}`` bit each user perturbs under randomized response.

Lemma 3.7 of the paper (due to Barak et al.) states that any k-way marginal
``beta`` is a linear combination of only the coefficients ``alpha ⪯ beta``.
In scaled form, for each cell ``gamma ⪯ beta``:

    C_beta(t)[gamma] = 2^{-k} * sum_{alpha ⪯ beta} (-1)^{<alpha, gamma>} Theta[alpha]

which is itself a (scaled) inverse Hadamard transform of size ``2^k``.  This
module implements the fast transform, per-coefficient evaluation, and the
marginal reconstruction formula.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

import numpy as np

from . import bitops
from .exceptions import MarginalQueryError

__all__ = [
    "fwht",
    "fwht_reference",
    "fwht_rows",
    "fwht_inverse",
    "scaled_coefficients",
    "distribution_from_scaled_coefficients",
    "single_scaled_coefficient",
    "coefficient_index_set",
    "coefficients_for_marginal",
    "marginal_from_scaled_coefficients",
    "user_coefficient_values",
]


def fwht(vector: np.ndarray) -> np.ndarray:
    """Fast Walsh-Hadamard transform (unnormalised).

    Returns ``H @ vector`` where ``H[i, j] = (-1)^{<i, j>}``, computed in
    ``O(n log n)`` for ``n = 2^d``.  The input is not modified.

    Each of the ``log2 n`` butterfly stages runs as one reshaped whole-array
    numpy operation (no Python loop over blocks); every output element is the
    same single add/subtract of the same operands as the blockwise reference
    (:func:`fwht_reference`), so the two are bit-for-bit identical.
    """
    vec = np.array(vector, dtype=np.float64, copy=True)
    n = vec.shape[0]
    if n == 0 or (n & (n - 1)) != 0:
        raise ValueError(f"fwht requires a power-of-two length, got {n}")
    h = 1
    while h < n:
        blocks = vec.reshape(-1, 2, h)
        top = blocks[:, 0, :] + blocks[:, 1, :]
        bottom = blocks[:, 0, :] - blocks[:, 1, :]
        blocks[:, 0, :] = top
        blocks[:, 1, :] = bottom
        h *= 2
    return vec


def fwht_reference(vector: np.ndarray) -> np.ndarray:
    """Reference transform: Python loop over butterfly blocks per stage.

    The pre-optimisation implementation, retained as the ground truth
    :func:`fwht`/:func:`fwht_rows` are proven against and the baseline the
    kernel benchmarks time the fast path over.
    """
    vec = np.array(vector, dtype=np.float64, copy=True)
    n = vec.shape[0]
    if n == 0 or (n & (n - 1)) != 0:
        raise ValueError(f"fwht requires a power-of-two length, got {n}")
    h = 1
    while h < n:
        for start in range(0, n, h * 2):
            left = vec[start : start + h].copy()
            right = vec[start + h : start + 2 * h].copy()
            vec[start : start + h] = left + right
            vec[start + h : start + 2 * h] = left - right
        h *= 2
    return vec


def fwht_rows(matrix: np.ndarray) -> np.ndarray:
    """Apply :func:`fwht` to every row of a 2-D array in one batched pass.

    Equivalent to ``np.stack([fwht(row) for row in matrix])`` — bit-for-bit,
    since each element undergoes the identical butterfly arithmetic — but the
    ``log2 n`` stages each run as a single numpy operation over the whole
    matrix.  Used by the HCMS sketch inversion (``g`` rows) and the MargHT
    finalisation (``C(d, k)`` rows).
    """
    mat = np.array(matrix, dtype=np.float64, copy=True)
    if mat.ndim != 2:
        raise ValueError(f"fwht_rows requires a 2-D array, got shape {mat.shape}")
    rows, n = mat.shape
    if n == 0 or (n & (n - 1)) != 0:
        raise ValueError(f"fwht_rows requires a power-of-two row length, got {n}")
    h = 1
    while h < n:
        blocks = mat.reshape(rows, -1, 2, h)
        top = blocks[:, :, 0, :] + blocks[:, :, 1, :]
        bottom = blocks[:, :, 0, :] - blocks[:, :, 1, :]
        blocks[:, :, 0, :] = top
        blocks[:, :, 1, :] = bottom
        h *= 2
    return mat


def fwht_inverse(vector: np.ndarray) -> np.ndarray:
    """Inverse of :func:`fwht`: ``H^{-1} = H / n`` for the +/-1 matrix."""
    vec = np.asarray(vector, dtype=np.float64)
    n = vec.shape[0]
    return fwht(vec) / n


def scaled_coefficients(distribution: np.ndarray) -> np.ndarray:
    """All scaled coefficients ``Theta[alpha] = sum_eta (-1)^{<alpha,eta>} t[eta]``.

    For a probability distribution the output satisfies ``Theta[0] == 1`` and
    ``|Theta[alpha]| <= 1`` for all ``alpha``.
    """
    return fwht(distribution)


def distribution_from_scaled_coefficients(coefficients: np.ndarray) -> np.ndarray:
    """Invert :func:`scaled_coefficients` to recover the distribution."""
    return fwht_inverse(coefficients)


def single_scaled_coefficient(distribution: np.ndarray, alpha: int) -> float:
    """Evaluate one scaled coefficient without the full transform.

    Useful in tests and when only a handful of coefficients are needed.
    """
    n = distribution.shape[0]
    signs = bitops.inner_product_sign(np.arange(n), int(alpha)).astype(np.float64)
    return float(np.dot(signs, distribution))


def coefficient_index_set(d: int, k: int, include_zero: bool = False) -> np.ndarray:
    """The index set ``H_k``/``T`` of coefficients needed for k-way marginals.

    Returns the masks ``alpha`` with ``1 <= |alpha| <= k`` (plus 0 when
    ``include_zero``), as an ``int64`` array in ascending weight order.  This
    is the set each ``InpHT`` user samples from; its size is
    ``sum_{l=1..k} C(d, l)``.
    """
    if k < 0 or k > d:
        raise MarginalQueryError(f"marginal width k={k} outside [0, d={d}]")
    masks = bitops.masks_up_to_weight(d, k, include_zero=include_zero)
    return np.asarray(masks, dtype=np.int64)


def coefficients_for_marginal(beta: int) -> np.ndarray:
    """All coefficient indices ``alpha ⪯ beta`` (including 0), sorted ascending."""
    subs = sorted(bitops.submasks(int(beta)))
    return np.asarray(subs, dtype=np.int64)


def marginal_from_scaled_coefficients(
    beta: int, coefficients: Mapping[int, float] | np.ndarray
) -> np.ndarray:
    """Reconstruct the marginal ``C_beta`` from scaled Hadamard coefficients.

    Parameters
    ----------
    beta:
        Mask identifying the marginal's attributes (``k = |beta|``).
    coefficients:
        Either a mapping ``alpha -> Theta[alpha]`` defined at least on every
        ``alpha ⪯ beta``, or a dense array of scaled coefficients indexed by
        the full domain ``{0,1}^d``.

    Returns
    -------
    numpy.ndarray
        The marginal as a length ``2^k`` array indexed by the compact cell
        index (see :func:`repro.core.bitops.compress_index`).
    """
    beta = int(beta)
    k = bitops.popcount(beta)
    size = 1 << k

    # Gather the 2^k coefficients alpha ⪯ beta into compact order, where the
    # compact index of alpha is its compression onto beta's bit positions.
    compact_coeffs = np.zeros(size, dtype=np.float64)
    for alpha in bitops.submasks(beta):
        compact = bitops.compress_index(alpha, beta)
        if isinstance(coefficients, Mapping):
            if alpha not in coefficients:
                raise MarginalQueryError(
                    f"missing Hadamard coefficient {alpha:#x} for marginal {beta:#x}"
                )
            compact_coeffs[compact] = float(coefficients[alpha])
        else:
            compact_coeffs[compact] = float(np.asarray(coefficients)[alpha])

    # Because <alpha, gamma> over the full domain equals the inner product of
    # their compressions onto beta, the reconstruction is a size-2^k inverse
    # transform of the compacted coefficient vector.
    return fwht(compact_coeffs) / size


def user_coefficient_values(user_indices: np.ndarray, alphas: np.ndarray) -> np.ndarray:
    """Per-user scaled coefficient values ``(-1)^{<alpha_i, j_i>}``.

    ``user_indices[i]`` is user ``i``'s one-hot position ``j_i`` and
    ``alphas[i]`` the coefficient that user sampled; the result is the
    ``{-1,+1}`` value that user would report before perturbation.
    """
    user_indices = np.asarray(user_indices, dtype=np.int64)
    alphas = np.asarray(alphas, dtype=np.int64)
    return bitops.inner_product_sign(user_indices, alphas).astype(np.float64)
