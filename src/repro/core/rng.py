"""Randomness helpers.

All stochastic code in the library takes an explicit ``numpy.random.Generator``
so experiments are reproducible and tests can be deterministic.  This module
centralises the (tiny) policy around that: creating generators from seeds,
accepting either a seed or a generator, and spawning independent child
streams for repeated experiment runs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``None``, a seed, a seed sequence or a generator into a generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent generators derived from ``rng``.

    Used by the experiment harness to give each repetition its own stream so
    repetitions are independent but the whole sweep stays reproducible from a
    single seed.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
