"""Post-processing of released marginals.

The unbiased LDP estimators can return cell values that are slightly negative
or that do not sum exactly to one.  Because post-processing cannot weaken a
differential-privacy guarantee, an analyst is free to project the released
tables back onto the probability simplex before using them.  Two projections
are provided:

* :func:`clip_and_normalize` — the simple clip-at-zero-and-rescale used in
  the paper's downstream analyses (also available as
  ``MarginalTable.normalized``);
* :func:`project_to_simplex` — the Euclidean (least-squares) projection onto
  the simplex, which perturbs the estimate as little as possible in L2 and is
  never farther from the true marginal than the raw estimate is in L2.

:class:`SimplexProjectedEstimator` wraps any protocol estimator so that every
query is projected automatically, which is convenient when feeding released
marginals into code that expects proper distributions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .core.exceptions import MarginalQueryError
from .core.marginals import MarginalTable
from .protocols.base import MarginalEstimator

__all__ = [
    "clip_and_normalize",
    "project_to_simplex",
    "SimplexProjectedEstimator",
]


def clip_and_normalize(values: np.ndarray) -> np.ndarray:
    """Clip negatives to zero and rescale to total mass one."""
    values = np.asarray(values, dtype=np.float64)
    clipped = np.clip(values, 0.0, None)
    total = clipped.sum()
    if total <= 0:
        return np.full_like(clipped, 1.0 / clipped.size)
    return clipped / total


def project_to_simplex(values: np.ndarray) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex.

    Implements the standard sort-and-threshold algorithm (Held et al. 1974):
    find the largest ``k`` such that ``sorted[k] + (1 - cumsum[k]) / (k+1) > 0``
    and subtract the corresponding threshold from every coordinate, clipping
    at zero.  The result is the closest probability vector in L2.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise MarginalQueryError(
            f"simplex projection needs a non-empty 1-D vector, got shape {values.shape}"
        )
    if not np.isfinite(values).all():
        raise MarginalQueryError("cannot project a vector with NaN or infinite cells")
    descending = np.sort(values)[::-1]
    cumulative = np.cumsum(descending)
    ranks = np.arange(1, values.size + 1)
    thresholds = (cumulative - 1.0) / ranks
    support = np.nonzero(descending > thresholds)[0]
    # The support is never empty: the largest coordinate always qualifies.
    threshold = thresholds[support[-1]]
    return np.clip(values - threshold, 0.0, None)


class SimplexProjectedEstimator(MarginalEstimator):
    """Wrap an estimator so every queried table lies on the simplex.

    Parameters
    ----------
    estimator:
        Any protocol estimator.
    method:
        ``"euclidean"`` (default) for the least-squares projection or
        ``"clip"`` for clip-and-rescale.
    """

    def __init__(self, estimator: MarginalEstimator, method: str = "euclidean"):
        super().__init__(estimator.workload)
        if method not in ("euclidean", "clip"):
            raise MarginalQueryError(
                f"unknown projection method {method!r}; use 'euclidean' or 'clip'"
            )
        self._estimator = estimator
        self._method = method

    @property
    def wrapped(self) -> MarginalEstimator:
        return self._estimator

    @property
    def method(self) -> str:
        return self._method

    def query(self, beta) -> MarginalTable:
        raw = self._estimator.query(beta)
        if self._method == "euclidean":
            projected = project_to_simplex(raw.values)
        else:
            projected = clip_and_normalize(raw.values)
        return MarginalTable(raw.domain, raw.beta, projected)
